"""Experiments F7-F10 — the worked example of Figs. 7-10.

Times the individual stages of the paper's walkthrough (fusion of the
un-contracted Fig. 7 network, Algorithm 2's patterns tree, Appendix-B
matching) and regenerates the Fig. 9 tree and Fig. 10 component pattern
base as text artifacts, golden-checked against the paper.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.datagen.cases import (
    FIG10_EXPECTED_PATTERNS,
    fig7_source_graphs,
    fig8_tpiin,
)
from repro.fusion.pipeline import fuse
from repro.mining.detector import detect
from repro.mining.matching import match_component_patterns
from repro.mining.patterns import build_patterns_tree


def test_fig7_fusion(benchmark):
    """F7/F8: fuse the un-contracted network into the TPIIN."""
    src = fig7_source_graphs()
    result = benchmark(
        lambda: fuse(src.interdependence, src.influence, src.investment, src.trading)
    )
    assert result.tpiin.stats().influence_arcs == 14


def test_fig9_patterns_tree(benchmark):
    """F9: build the patterns tree for the Fig. 8 subTPIIN."""
    tpiin = fig8_tpiin()
    tree = benchmark(lambda: build_patterns_tree(tpiin.graph))
    assert len(tree.trails) == 15


def test_fig10_matching(benchmark):
    """F10: match the component pattern base into suspicious groups."""
    tpiin = fig8_tpiin()
    trails = build_patterns_tree(tpiin.graph, build_tree=False).trails
    groups = benchmark(lambda: match_component_patterns(trails))
    assert len(groups) == 3


def test_worked_example_report(benchmark):
    """Regenerate the Fig. 9 tree and the Fig. 10 base as artifacts."""

    def build_report() -> str:
        tpiin = fig8_tpiin()
        tree = build_patterns_tree(tpiin.graph)
        result = detect(tpiin)
        parts = [
            "Patterns tree (Fig. 9):",
            tree.render_tree(),
            "",
            "Component pattern base (Fig. 10):",
            tree.render_base(),
            "",
            "Suspicious groups:",
        ]
        parts.extend("  " + g.render() for g in result.groups)
        parts.append("")
        parts.append(result.summary())
        rendered = {t.render() for t in tree.trails}
        assert rendered == set(FIG10_EXPECTED_PATTERNS)
        return "\n".join(parts)

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("worked_example.txt", report)
    assert "L1, C1, C3 -> C5" in report


def test_fig8_svg_figure(benchmark):
    """Render the Fig. 8 TPIIN (suspicious trades highlighted) as SVG."""
    from benchmarks.conftest import RESULTS_DIR
    from repro.io.svg import write_tpiin_svg

    def render():
        tpiin = fig8_tpiin()
        result = detect(tpiin)
        return write_tpiin_svg(
            tpiin,
            RESULTS_DIR / "fig8_tpiin.svg",
            highlight_arcs=result.suspicious_trading_arcs,
            title="Fig. 8 worked example (suspicious trades in red)",
        )

    path = benchmark.pedantic(render, rounds=1, iterations=1)
    assert path.stat().st_size > 1000


def test_fig8_explanations(benchmark):
    """Write the proof-chain narratives for the worked example."""
    from repro.analysis.explain import explain_arc

    def build() -> str:
        tpiin = fig8_tpiin()
        result = detect(tpiin)
        return "\n\n".join(
            explain_arc(arc, result, tpiin)
            for arc in sorted(result.suspicious_trading_arcs)
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    write_report("worked_example_explanations.txt", text)
    assert "Critical evidence" in text
