"""Extension bench — streaming detection throughput.

Measures the incremental detector's per-filing latency against batch
re-detection after every batch, the honest alternative for an online
monitor.  The antecedent index is built once; each arriving trading
arc costs one bitset AND plus (for suspicious arcs only) the group
enumeration over cached root paths.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_report
from repro.analysis.reporting import render_table
from repro.datagen.config import ProvinceConfig, TradingConfig
from repro.datagen.province import generate_province
from repro.datagen.trading import random_trading_arcs
from repro.fusion.tpiin import TPIIN
from repro.mining.detector import detect
from repro.mining.incremental import IncrementalDetector
from repro.model.colors import EColor


def _setup(companies: int = 400, n_arcs: int = 2000):
    ds = generate_province(ProvinceConfig.small(companies=companies, seed=43))
    base = ds.antecedent_tpiin()
    feed = random_trading_arcs(
        ds.company_ids, TradingConfig(probability=0.05, seed=43)
    )[:n_arcs]
    return ds, base, feed


def test_stream_ingest(benchmark):
    _ds, base, feed = _setup()

    def ingest():
        monitor = IncrementalDetector(base, collect_groups=False)
        for arc in feed:
            monitor.add_trading_arc(*arc)
        return monitor

    monitor = benchmark.pedantic(ingest, rounds=1, iterations=1)
    assert len(monitor) == len(feed)


def test_batch_equivalent(benchmark):
    ds, base, feed = _setup()

    def batch():
        tpiin = TPIIN(
            graph=base.antecedent_graph(),
            node_map=dict(base.node_map),
            scs_subgraphs=dict(base.scs_subgraphs),
        )
        tpiin.graph.add_arcs(feed, EColor.TRADING)
        return detect(tpiin, engine="fast", collect_groups=False)

    result = benchmark.pedantic(batch, rounds=1, iterations=1)
    assert result.total_trading_arcs == len(set(feed))


def test_streaming_report(benchmark):
    def build_report() -> str:
        _ds, base, feed = _setup()
        monitor = IncrementalDetector(base, collect_groups=False)
        started = time.perf_counter()
        suspicious = 0
        for arc in feed:
            if monitor.add_trading_arc(*arc).suspicious:
                suspicious += 1
        stream_seconds = time.perf_counter() - started
        per_arc_us = 1e6 * stream_seconds / len(feed)

        rows = [
            ["filings streamed", f"{len(feed):,}"],
            ["suspicious alerts", f"{suspicious:,}"],
            ["total stream time", f"{1000 * stream_seconds:.1f} ms"],
            ["latency per filing", f"{per_arc_us:.1f} us"],
            [
                "throughput",
                f"{len(feed) / stream_seconds:,.0f} filings/s",
            ],
        ]
        return render_table(["metric", "value"], rows, align_right=False)

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("streaming.txt", report)
    assert "filings/s" in report
