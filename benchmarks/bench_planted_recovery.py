"""Extension bench — recovery of planted evasion structures.

Injects known rings of every Fig. 3 shape into a noisy synthetic
province and measures whether detection recovers each planted structure
*exactly* (suspicious arc + a simple group with the planted membership).
Expected: 100% recovery for every shape, at any noise level — the
structural counterpart of Table 1's accuracy columns.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_report
from repro.analysis.reporting import render_table
from repro.datagen.config import ProvinceConfig
from repro.datagen.planted import RING_SHAPES, plant_evasion_rings, recovered_rings
from repro.datagen.province import generate_province
from repro.fusion.pipeline import fuse
from repro.mining.detector import detect


def _run(trading_probability: float, n_rings: int = 15):
    dataset = generate_province(ProvinceConfig.small(companies=200, seed=53))
    g1, g2, gi = dataset.interdependence, dataset.influence, dataset.investment
    g4 = dataset.trading_graph(trading_probability)
    rings = plant_evasion_rings(
        g1, g2, gi, g4, count=n_rings, rng=np.random.default_rng(6)
    )
    tpiin = fuse(g1, g2, gi, g4).tpiin
    result = detect(tpiin)
    return rings, result, tpiin


def test_recovery_detection(benchmark):
    rings, result, tpiin = None, None, None

    def run():
        return _run(0.02)

    rings, result, tpiin = benchmark.pedantic(run, rounds=1, iterations=1)
    recovery = recovered_rings(rings, result, tpiin)
    assert all(recovery.values())


def test_recovery_report(benchmark):
    def build_report() -> str:
        rows = []
        for probability in (0.0, 0.02, 0.05):
            rings, result, tpiin = _run(probability)
            recovery = recovered_rings(rings, result, tpiin)
            by_shape = {shape: [] for shape in RING_SHAPES}
            for ring in rings:
                by_shape[ring.shape].append(recovery[ring.ring_id])
            row = [f"{probability:.2f}", result.total_trading_arcs]
            for shape in RING_SHAPES:
                outcomes = by_shape[shape]
                row.append(
                    f"{sum(outcomes)}/{len(outcomes)}" if outcomes else "-"
                )
            rows.append(row)
        return render_table(
            ["noise p", "trading arcs", *RING_SHAPES],
            rows,
        )

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("planted_recovery.txt", report)
    assert "hexagon" in report
