"""Robustness ablation — does Table 1's ~5% plateau need the ER model?

The paper generates trading networks with Gephi's random (Erdos-Renyi)
generator.  The suspicious share, however, should be a property of the
*antecedent* structure alone: any trading model that picks partners
without regard to antecedent kinship should land on the same share.
This bench swaps the ER generator for a preferential-attachment
(scale-free) one — closer to real trading networks, with hub
wholesalers — and compares the resulting shares.  Expected: within a
fraction of a percentage point of the ER figures.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.analysis.reporting import render_table
from repro.datagen.config import ProvinceConfig
from repro.datagen.province import generate_province
from repro.datagen.trading import scale_free_trading_arcs
from repro.fusion.tpiin import TPIIN
from repro.mining.detector import detect
from repro.model.colors import EColor


def _overlay_arcs(dataset, base, arcs) -> TPIIN:
    graph = base.antecedent_graph()
    node_map = base.node_map
    mapped = [
        (node_map.get(s, s), node_map.get(b, b))
        for s, b in arcs
        if node_map.get(s, s) != node_map.get(b, b)
    ]
    graph.add_arcs(mapped, EColor.TRADING)
    return TPIIN(graph=graph, node_map=dict(node_map))


def test_scale_free_detection(benchmark, paper_province, paper_base):
    arcs = scale_free_trading_arcs(
        paper_province.company_ids, arcs_per_company=5, seed=61
    )
    tpiin = _overlay_arcs(paper_province, paper_base, arcs)
    result = benchmark.pedantic(
        detect, args=(tpiin,), kwargs={"engine": "fast", "collect_groups": False},
        rounds=1, iterations=1,
    )
    assert result.total_trading_arcs > 0


def test_robustness_report(benchmark, paper_province, paper_base):
    def build_report() -> str:
        rows = []
        # ER reference at a similar arc count.
        er = paper_province.overlay_trading(paper_base, 0.002)
        er_result = detect(er, engine="fast", collect_groups=False)
        rows.append(
            [
                "Erdos-Renyi p=0.002",
                er_result.total_trading_arcs,
                er_result.suspicious_arc_count,
                f"{100 * er_result.suspicious_arc_share:.3f}%",
            ]
        )
        for m in (3, 5, 10):
            arcs = scale_free_trading_arcs(
                paper_province.company_ids, arcs_per_company=m, seed=61
            )
            tpiin = _overlay_arcs(paper_province, paper_base, arcs)
            result = detect(tpiin, engine="fast", collect_groups=False)
            rows.append(
                [
                    f"scale-free m={m}",
                    result.total_trading_arcs,
                    result.suspicious_arc_count,
                    f"{100 * result.suspicious_arc_share:.3f}%",
                ]
            )
        return render_table(
            ["trading model", "arcs", "suspicious", "share"],
            rows,
            align_right=False,
        )

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("robustness_trading_model.txt", report)
    assert "scale-free" in report
