"""Experiments A1-A3 — ablations of the design choices DESIGN.md calls out.

* **A1 segmentation**: Algorithm 1's divide-and-conquer vs running
  Algorithm 2 over the whole un-segmented TPIIN.
* **A2 engines**: the faithful pattern-base materialization vs the
  optimized path-index engine.
* **A3 parallelism**: the future-work multiprocessing detector.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_report
from repro.analysis.reporting import render_table
from repro.mining.detector import detect
from repro.mining.detector import detect
from repro.mining.matching import match_component_patterns
from repro.mining.parallel import parallel_detect
from repro.mining.patterns import build_patterns_tree


def _detect_unsegmented(tpiin):
    """Algorithm 2 + matching over the whole TPIIN (no divide & conquer)."""
    trails = build_patterns_tree(tpiin.graph, build_tree=False).trails
    return match_component_patterns(trails)


def test_a1_with_segmentation(benchmark, medium_tpiin):
    result = benchmark(lambda: detect(medium_tpiin))
    assert result.group_count > 0


def test_a1_without_segmentation(benchmark, medium_tpiin):
    groups = benchmark(lambda: _detect_unsegmented(medium_tpiin))
    assert groups


def test_a2_faithful_engine(benchmark, medium_tpiin):
    result = benchmark(lambda: detect(medium_tpiin, engine="faithful"))
    assert result.group_count > 0


def test_a2_fast_engine(benchmark, medium_tpiin):
    result = benchmark(lambda: detect(medium_tpiin, engine="fast", collect_groups=False))
    assert result.group_count > 0


def test_a3_parallel_engine(benchmark, medium_tpiin):
    result = benchmark.pedantic(
        parallel_detect,
        args=(medium_tpiin,),
        kwargs={"processes": 4},
        rounds=1,
        iterations=1,
    )
    assert result.group_count > 0


def test_ablation_report(benchmark, medium_tpiin):
    def build_report() -> str:
        variants = (
            ("faithful (segmented)", lambda: detect(medium_tpiin)),
            ("faithful (unsegmented)", lambda: _detect_unsegmented(medium_tpiin)),
            ("fast", lambda: detect(medium_tpiin, engine="fast", collect_groups=False)),
            ("parallel x4", lambda: parallel_detect(medium_tpiin, processes=4)),
        )
        rows = []
        for name, runner in variants:
            started = time.perf_counter()
            runner()
            rows.append([name, f"{1000 * (time.perf_counter() - started):.1f}"])
        return render_table(["variant", "ms"], rows, align_right=False)

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("ablations.txt", report)
    assert "fast" in report
