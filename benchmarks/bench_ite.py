"""Experiment I1 — the two-phase pipeline vs one-by-one auditing.

The paper's efficiency argument (Sections 1, 5.2): identifying
suspicious *relationships* first means the ITE-phase examines only ~5%
of the transactions, instead of evaluating every transaction one by
one.  This bench times both strategies on a simulated transaction book
and reports workload and detection quality.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_report
from repro.analysis.reporting import render_table
from repro.datagen.config import ProvinceConfig
from repro.datagen.province import generate_province
from repro.ite.adjudication import adjudicate_transaction
from repro.ite.pipeline import run_two_phase
from repro.ite.transactions import SimulationConfig, simulate_transactions
from repro.mining.detector import detect


def _setup():
    ds = generate_province(ProvinceConfig.small(companies=300, seed=41))
    base = ds.antecedent_tpiin()
    tpiin = ds.overlay_trading(base, 0.01)
    detection = detect(tpiin, engine="fast")
    industry_of = {
        c.company_id: c.industry for c in ds.registry.companies.values()
    }
    book = simulate_transactions(
        list(tpiin.trading_arcs()),
        detection.suspicious_trading_arcs,
        industry_of,
        config=SimulationConfig(seed=2),
    )
    return tpiin, detection, book


def test_two_phase_pipeline(benchmark):
    tpiin, detection, book = _setup()
    result = benchmark(
        lambda: run_two_phase(tpiin, book, msg_result=detection)
    )
    assert result.recall == 1.0


def test_one_by_one_baseline(benchmark):
    _tpiin, _detection, book = _setup()
    verdicts = benchmark.pedantic(
        lambda: [adjudicate_transaction(tx) for tx in book],
        rounds=1,
        iterations=1,
    )
    assert len(verdicts) == len(book)


def test_ite_report(benchmark):
    def build_report() -> str:
        tpiin, detection, book = _setup()
        started = time.perf_counter()
        two = run_two_phase(tpiin, book, msg_result=detection)
        two_seconds = time.perf_counter() - started
        started = time.perf_counter()
        all_verdicts = [adjudicate_transaction(tx) for tx in book]
        all_seconds = time.perf_counter() - started
        flagged_all = {
            v.transaction.transaction_id for v in all_verdicts if v.flagged
        }
        rows = [
            [
                "two-phase (proposed)",
                two.transactions_examined,
                len(two.flagged),
                f"{two.precision:.3f}",
                f"{two.recall:.3f}",
                f"{1000 * two_seconds:.1f}",
            ],
            [
                "one-by-one baseline",
                len(book),
                len(flagged_all),
                f"{len(flagged_all & book.evading_ids) / max(1, len(flagged_all)):.3f}",
                f"{len(flagged_all & book.evading_ids) / max(1, len(book.evading_ids)):.3f}",
                f"{1000 * all_seconds:.1f}",
            ],
        ]
        table = render_table(
            ["strategy", "tx examined", "flagged", "precision", "recall", "ms"],
            rows,
            align_right=False,
        )
        return table + f"\nworkload share: {100 * two.workload_share:.2f}%"

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("ite_two_phase.txt", report)
    assert "workload share" in report
