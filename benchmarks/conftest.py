"""Shared fixtures for the benchmark suite.

The provincial dataset is generated once per session at the paper's
scale (2,452 companies); each benchmark overlays the trading network it
needs.  Report-style benches write their tables under
``benchmarks/results/`` so the regenerated experiment artifacts survive
the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datagen.config import ProvinceConfig
from repro.datagen.province import generate_province

RESULTS_DIR = Path(__file__).parent / "results"


def write_report(name: str, text: str) -> Path:
    """Persist a benchmark report and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return path


@pytest.fixture(scope="session")
def paper_province():
    """The full-scale provincial dataset (776 / 1,350 / 2,452)."""
    return generate_province(ProvinceConfig())


@pytest.fixture(scope="session")
def paper_base(paper_province):
    """The fused antecedent TPIIN, reused by every sweep point."""
    return paper_province.antecedent_tpiin()


@pytest.fixture(scope="session")
def medium_province():
    """A 400-company dataset for engine/ablation comparisons."""
    return generate_province(ProvinceConfig.small(companies=400, seed=17))


@pytest.fixture(scope="session")
def medium_tpiin(medium_province):
    base = medium_province.antecedent_tpiin()
    return medium_province.overlay_trading(base, 0.01)
