"""Cross-engine mining benchmark on Table-1-style synthetic settings.

Standalone runner (NOT collected by pytest — ``pythonpath`` config only
picks up ``test_*.py`` / ``bench_*.py``).  Generates provincial TPIINs
at a sweep of sizes and trading probabilities, runs every mining engine
on each, checks that they all report the *same* suspicious-group set,
and writes a machine-readable JSON report with wall time, peak RSS and
trails/second per (setting, engine) cell.

Usage::

    python benchmarks/run_bench.py                    # full sweep -> BENCH_PR7.json
    python benchmarks/run_bench.py --smoke            # tiny CI sweep, < 60 s
    python benchmarks/run_bench.py -o out.json --engines faithful csr

Exit status is non-zero when any engine disagrees with the faithful
group set, or when a parallel run leaves a shared-memory segment
behind, so CI can gate on both.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datagen.config import ProvinceConfig  # noqa: E402
from repro.datagen.province import generate_province  # noqa: E402
from repro.detectors import ALL_DETECTORS, run_detectors  # noqa: E402
from repro.fusion.tpiin import TPIIN  # noqa: E402
from repro.graph.shm import SHM_NAME_PREFIX  # noqa: E402
from repro.mining.detector import DetectionResult, detect  # noqa: E402
from repro.mining.options import DetectOptions  # noqa: E402
from repro.model.colors import EColor, VColor  # noqa: E402
from repro.obs.tracing import Tracer  # noqa: E402

#: (label, companies, trading probability) — ordered sparsest to densest.
#: The densest settings add investment cross-arcs (path multiplicity),
#: mirroring the conglomerate structure behind Table 1's group blow-up;
#: scale-10k is the ~1M-arc provincial tier (Section VI scale).
FULL_SETTINGS: tuple[tuple[str, int, float], ...] = (
    ("sparse-120", 120, 0.010),
    ("medium-240", 240, 0.020),
    ("dense-360", 360, 0.050),
    ("denser-480", 480, 0.100),
    ("densest-720", 720, 0.100),
    ("scale-10k", 10000, 0.0095),
)

SMOKE_SETTINGS: tuple[tuple[str, int, float], ...] = (
    ("smoke-60", 60, 0.020),
    ("smoke-90", 90, 0.050),
)

ENGINES: tuple[str, ...] = ("faithful", "fast", "parallel", "csr")

GENERATOR_SEED = 31

#: Settings at or above this company count get the conglomerate-heavy
#: antecedent structure (extra investment arcs, dual holdings).
HEAVY_COMPANIES = 700

#: Timing repetitions per (setting, engine) cell; best-of is reported.
REPEATS = 3

#: Settings at or above this company count repeat only twice — the
#: slowest engine spends half a minute per run at the 10k tier.
SCALE_COMPANIES = 5000


def repeats_for(companies: int, smoke: bool) -> int:
    if smoke:
        return 1
    return 2 if companies >= SCALE_COMPANIES else REPEATS


def shm_leftovers() -> list[str]:
    """``repro_shm_*`` names currently present in ``/dev/shm``."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return sorted(
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(SHM_NAME_PREFIX)
    )


def relabel_realistic(tpiin: TPIIN) -> TPIIN:
    """Re-key every node to an 18-char registration-code-style id.

    The paper's taxpayers carry 18-character unified social credit
    codes; the generator's compact ids ("C00017") understate the string
    hashing the faithful engine performs per prefix.  Deterministic:
    codes are assigned in node iteration order.
    """
    mapping: dict[object, str] = {}
    for i, node in enumerate(tpiin.graph.nodes()):
        color = tpiin.graph.node_color(node)
        prefix = "911001" if color is VColor.COMPANY else "330701"
        mapping[node] = f"{prefix}{i:012d}"
    return TPIIN.build(
        persons=[mapping[n] for n in tpiin.graph.nodes(VColor.PERSON)],
        companies=[mapping[n] for n in tpiin.graph.nodes(VColor.COMPANY)],
        influence=[
            (mapping[a], mapping[b]) for a, b, _ in tpiin.graph.arcs(EColor.INFLUENCE)
        ],
        trading=[
            (mapping[a], mapping[b]) for a, b, _ in tpiin.graph.arcs(EColor.TRADING)
        ],
    )


def build_tpiin(companies: int, probability: float) -> TPIIN:
    if companies >= HEAVY_COMPANIES:
        config = ProvinceConfig(
            companies=companies,
            legal_persons=max(2, int(companies * 0.55)),
            directors=max(1, int(companies * 0.316)),
            investment_extra_arc_share=0.20,
            dual_holding_attach_both=0.9,
            seed=GENERATOR_SEED,
        )
    else:
        config = ProvinceConfig.small(companies=companies, seed=GENERATOR_SEED)
    dataset = generate_province(config)
    tpiin = dataset.overlay_trading(dataset.antecedent_tpiin(), probability)
    return relabel_realistic(tpiin)


#: The (label, companies, probability) tier the detector-portfolio cell
#: runs on: densest-720 in full mode, the larger smoke tier in --smoke.
DETECTOR_TIER: tuple[str, int, float] = ("densest-720", 720, 0.100)
DETECTOR_SMOKE_TIER: tuple[str, int, float] = ("smoke-90", 90, 0.050)


def build_registry_tpiin(companies: int, probability: float) -> TPIIN:
    """Like :func:`build_tpiin` but keeping the entity registry attached.

    The detector portfolio needs registry provenance (declared capital
    for ``missing-trader``, syndicate contraction kinds for
    ``shared-household``); the registration-code relabeling used by the
    engine sweep drops it, so the detectors cell keeps generator ids.
    """
    if companies >= HEAVY_COMPANIES:
        config = ProvinceConfig(
            companies=companies,
            legal_persons=max(2, int(companies * 0.55)),
            directors=max(1, int(companies * 0.316)),
            investment_extra_arc_share=0.20,
            dual_holding_attach_both=0.9,
            seed=GENERATOR_SEED,
        )
    else:
        config = ProvinceConfig.small(companies=companies, seed=GENERATOR_SEED)
    dataset = generate_province(config)
    return dataset.overlay_trading(dataset.antecedent_tpiin(), probability)


def detectors_cell(smoke: bool) -> dict[str, Any]:
    """Time the full detector portfolio against an IAT-only run.

    Both runs share one tier and one engine (fast); the difference is
    what the three structural detectors plus the shared trading freeze
    cost on top of the paper's miner.  Best-of-repeats, interleaved,
    same GC discipline as :func:`time_engines`.
    """
    label, companies, probability = DETECTOR_SMOKE_TIER if smoke else DETECTOR_TIER
    repeats = repeats_for(companies, smoke)
    tpiin = build_registry_tpiin(companies, probability)
    options = DetectOptions(engine="fast")
    walls = {"iat_only": float("inf"), "portfolio": float("inf")}
    for _ in range(repeats):
        for key, selection in (
            ("iat_only", ["iat-groups"]),
            ("portfolio", ALL_DETECTORS),
        ):
            gc.collect()
            started = time.perf_counter()
            run_detectors(tpiin, selection, options=options)
            walls[key] = min(walls[key], time.perf_counter() - started)
    report = run_detectors(tpiin, ALL_DETECTORS, options=options)
    overhead = walls["portfolio"] - walls["iat_only"]
    return {
        "setting": label,
        "companies": companies,
        "trading_probability": probability,
        "engine": "fast",
        "iat_only_wall_seconds": round(walls["iat_only"], 4),
        "portfolio_wall_seconds": round(walls["portfolio"], 4),
        "portfolio_overhead_seconds": round(overhead, 4),
        "portfolio_overhead_ratio": (
            round(walls["portfolio"] / walls["iat_only"], 3)
            if walls["iat_only"] > 0
            else None
        ),
        "detectors": {
            name: {
                "version": run.version,
                "findings": len(run.findings),
                "elapsed_seconds": round(run.elapsed_seconds, 4),
            }
            for name, run in report.runs.items()
        },
    }


def peak_rss_bytes() -> int:
    """Peak RSS of this process; kilobytes on Linux, bytes on macOS."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def probe_engine_rss(companies: int, probability: float, engine: str) -> int | None:
    """Peak RSS of one engine run, measured in a fresh subprocess.

    A process-wide ``ru_maxrss`` high-water mark never resets, so
    measuring engines in one process charges every engine with the
    hungriest predecessor's peak.  The child regenerates the dataset,
    runs ``detect`` once and prints its own peak; generation cost is
    identical across engines and therefore cancels in comparisons.
    """
    run = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--rss-probe",
            str(companies),
            str(probability),
            engine,
        ],
        capture_output=True,
        text=True,
    )
    if run.returncode != 0:  # pragma: no cover - probe crashed
        print(f"  rss probe failed for {engine}: {run.stderr.strip()}", flush=True)
        return None
    return int(run.stdout.strip().splitlines()[-1])


def rss_probe_main(companies: int, probability: float, engine: str) -> int:
    """Child-process entry: one generate + detect, peak RSS on stdout."""
    tpiin = build_tpiin(companies, probability)
    detect(tpiin, engine=engine)
    print(peak_rss_bytes())
    return 0


def time_engines(
    tpiin: TPIIN, engines: tuple[str, ...], repeats: int
) -> dict[str, float]:
    """Best-of-``repeats`` wall time per engine, interleaved round-robin.

    Nothing is retained across timed runs and the heap is collected
    before each, so no engine pays generational-GC traversals over
    another engine's leftovers (a run-order artifact).  GC stays
    *enabled* during the runs themselves: allocation-driven GC pressure
    is genuine engine cost — shedding it is part of what the CSR kernel
    is for — and production processes run with GC on.
    """
    walls: dict[str, float] = {engine: float("inf") for engine in engines}
    for _ in range(repeats):
        for engine in engines:
            gc.collect()
            started = time.perf_counter()
            detect(tpiin, engine=engine)
            walls[engine] = min(walls[engine], time.perf_counter() - started)
    return walls


def bench_setting(
    label: str,
    companies: int,
    probability: float,
    engines: tuple[str, ...],
    repeats: int = REPEATS,
    probe_rss: bool = True,
) -> dict[str, Any]:
    tpiin = build_tpiin(companies, probability)
    walls = time_engines(tpiin, engines, repeats)
    cells: dict[str, Any] = {}
    group_keys: dict[str, frozenset[Any]] = {}
    for engine in engines:
        # Untimed verification run: collect outputs and agreement keys.
        result: DetectionResult = detect(tpiin, engine=engine)
        wall = walls[engine]
        # For the parallel engine groups are lazy — the first full pass
        # below is exactly the deferred materialization cost.
        started = time.perf_counter()
        group_keys[engine] = frozenset(g.key() for g in result.groups)
        materialize = time.perf_counter() - started
        # The fast engine skips trail enumeration entirely and reports None.
        trails = result.pattern_trail_count
        cells[engine] = {
            "wall_seconds": round(wall, 4),
            "peak_rss_bytes": (
                probe_engine_rss(companies, probability, engine)
                if probe_rss
                else None
            ),
            "pattern_trails": trails,
            "trails_per_second": (
                round(trails / wall, 1) if trails is not None and wall > 0 else None
            ),
            "groups": len(result.groups),
            "groups_materialize_seconds": round(materialize, 4),
            "suspicious_arcs": len(result.suspicious_trading_arcs),
            "truncated": result.truncated,
        }
    reference = group_keys.get("faithful") or next(iter(group_keys.values()))
    agree = all(keys == reference for keys in group_keys.values())
    setting: dict[str, Any] = {
        "label": label,
        "companies": companies,
        "trading_probability": probability,
        "nodes": tpiin.graph.number_of_nodes(),
        "arcs": tpiin.graph.number_of_arcs(),
        "engines": cells,
        "engines_agree": agree,
        "shm_leftovers": shm_leftovers(),
    }
    for engine, key in (("csr", "csr_speedup_vs_faithful"),
                        ("parallel", "parallel_speedup_vs_faithful")):
        if "faithful" in cells and engine in cells:
            faithful_wall = cells["faithful"]["wall_seconds"]
            wall = cells[engine]["wall_seconds"]
            setting[key] = round(faithful_wall / wall, 2) if wall > 0 else None
    return setting


def write_trace_jsonl(
    settings: tuple[tuple[str, int, float], ...],
    engine: str,
    path: Path,
) -> None:
    """Run one traced detect on the first setting and write span JSONL."""
    label, companies, probability = settings[0]
    tpiin = build_tpiin(companies, probability)
    tracer = Tracer()
    detect(tpiin, engine=engine, trace=tracer)
    path.write_text(tracer.to_jsonl() + "\n")
    print(f"wrote {tracer.span_count()} spans for {label}/{engine} to {path}")


def compare_reports(
    new_report: dict[str, Any], old_report: dict[str, Any], tolerance: float
) -> list[str]:
    """Wall-time regressions beyond ``tolerance`` vs an older report.

    Compares only (setting, engine) cells present in both reports, so a
    baseline from a different sweep shape degrades to a partial check
    rather than an error.
    """
    old_settings = {s["label"]: s for s in old_report.get("settings", [])}
    regressions: list[str] = []
    for setting in new_report["settings"]:
        old_setting = old_settings.get(setting["label"])
        if old_setting is None:
            continue
        for engine, cell in setting["engines"].items():
            old_cell = old_setting.get("engines", {}).get(engine)
            if old_cell is None:
                continue
            old_wall = old_cell["wall_seconds"]
            new_wall = cell["wall_seconds"]
            if old_wall > 0 and new_wall > old_wall * (1.0 + tolerance):
                regressions.append(
                    f"{setting['label']}/{engine}: {new_wall:.3f}s vs "
                    f"baseline {old_wall:.3f}s "
                    f"(+{(new_wall / old_wall - 1.0) * 100.0:.1f}%, "
                    f"tolerance {tolerance * 100.0:.0f}%)"
                )
    return regressions


def pooled_parallel_cell(
    settings: tuple[tuple[str, int, float], ...]
) -> dict[str, Any]:
    """Force a real worker pool through the shared segment (CI smoke).

    On single-CPU runners the parallel engine's gate keeps everything
    in-process, so the pooled path — fork, attach, bucket merge — would
    go unexercised; this runs it explicitly on the last (largest)
    setting and cross-checks the group set against the faithful engine.
    """
    label, companies, probability = settings[-1]
    tpiin = build_tpiin(companies, probability)
    started = time.perf_counter()
    pooled = detect(
        tpiin, engine="parallel", processes=2, min_pool_work=0
    )
    wall = time.perf_counter() - started
    faithful = detect(tpiin)
    agree = {g.key() for g in pooled.groups} == {g.key() for g in faithful.groups}
    return {
        "setting": label,
        "wall_seconds": round(wall, 4),
        "groups": len(pooled.groups),
        "agrees_with_faithful": agree,
        "shm_leftovers": shm_leftovers(),
    }


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["--rss-probe"]:
        companies, probability, engine = argv[1], argv[2], argv[3]
        return rss_probe_main(int(companies), float(probability), engine)

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_PR7.json",
        help="where to write the JSON report (default: repo-root BENCH_PR7.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny settings for CI: fast, still checks cross-engine agreement",
    )
    parser.add_argument(
        "--detectors",
        action="store_true",
        help="run only the detector-portfolio cell (full portfolio vs "
        "IAT-only on the densest-720 tier; smoke tier with --smoke) and "
        "write it as a pr8 report (default output: BENCH_PR8.json)",
    )
    parser.add_argument(
        "--pooled-parallel",
        action="store_true",
        help="additionally force a 2-worker pooled parallel run on the "
        "largest setting and verify it against the faithful engine",
    )
    parser.add_argument(
        "--no-rss-probe",
        action="store_true",
        help="skip the fresh-subprocess per-engine peak-RSS probes",
    )
    parser.add_argument(
        "--engines",
        nargs="+",
        choices=ENGINES,
        default=list(ENGINES),
        help="subset of engines to run (default: all)",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="also run one traced detect on the first setting and write "
        "its span JSONL here (CI artifact)",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="OLD.json",
        help="compare wall times against an older report; exit non-zero "
        "on regressions beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.03,
        help="allowed fractional wall-time regression for --compare "
        "(default: 0.03)",
    )
    args = parser.parse_args(argv)

    if args.detectors:
        default_output = parser.get_default("output")
        output = (
            args.output
            if args.output != default_output
            else default_output.parent / "BENCH_PR8.json"
        )
        cell = detectors_cell(args.smoke)
        report = {
            "benchmark": "pr8-detector-portfolio",
            "mode": "smoke" if args.smoke else "full",
            "generator_seed": GENERATOR_SEED,
            "notes": (
                "wall_seconds is best-of-repeats with the two selections "
                "interleaved and gc.collect() before each timed run. "
                "portfolio runs all registered detectors over ONE shared "
                "frozen trading view; iat_only runs just the paper's miner "
                "through the same plugin path, so the overhead column is "
                "what the three structural detectors cost on top of it. "
                "The tier keeps generator node ids and the entity registry "
                "(declared capital, syndicate provenance) attached."
            ),
            "detectors_cell": cell,
        }
        print(
            f"[{cell['setting']}] iat-only {cell['iat_only_wall_seconds']:.3f}s, "
            f"portfolio {cell['portfolio_wall_seconds']:.3f}s "
            f"(+{cell['portfolio_overhead_seconds']:.3f}s, "
            f"x{cell['portfolio_overhead_ratio']})",
            flush=True,
        )
        for name, per in cell["detectors"].items():
            print(
                f"  {name:>16}: {per['elapsed_seconds']:8.3f}s  "
                f"{per['findings']:>6} findings",
                flush=True,
            )
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")
        return 0

    settings = SMOKE_SETTINGS if args.smoke else FULL_SETTINGS
    engines = tuple(args.engines)
    results = []
    for label, companies, probability in settings:
        print(f"[{label}] companies={companies} p={probability} ...", flush=True)
        setting = bench_setting(
            label,
            companies,
            probability,
            engines,
            repeats=repeats_for(companies, args.smoke),
            probe_rss=not args.no_rss_probe,
        )
        for engine in engines:
            cell = setting["engines"][engine]
            trails = cell["pattern_trails"]
            print(
                f"  {engine:>9}: {cell['wall_seconds']:8.3f}s  "
                f"{trails if trails is not None else '-':>8} trails  "
                f"{cell['groups']:>6} groups",
                flush=True,
            )
        if not setting["engines_agree"]:
            print(f"  !! engines disagree on {label}", flush=True)
        if setting["shm_leftovers"]:
            print(f"  !! leaked shm segments: {setting['shm_leftovers']}", flush=True)
        for key in ("csr_speedup_vs_faithful", "parallel_speedup_vs_faithful"):
            if key in setting:
                engine = key.split("_", 1)[0]
                print(f"  {engine} speedup vs faithful: {setting[key]}x", flush=True)
        results.append(setting)

    report = {
        "benchmark": "pr7-shm-parallel-engine",
        "mode": "smoke" if args.smoke else "full",
        "generator_seed": GENERATOR_SEED,
        "notes": (
            "peak_rss_bytes is measured per engine in a fresh subprocess "
            "(generate + one detect; ru_maxrss of the child), so engines do "
            "not inherit each other's high-water marks. wall_seconds is "
            "best-of-repeats with engines interleaved round-robin, "
            "gc.collect() before each timed run, GC enabled during it, and "
            "nothing retained across timed runs; dataset generation and the "
            "verification pass are excluded. The parallel engine defers "
            "group materialization — groups_materialize_seconds is the first "
            "full pass over result.groups during verification. Node ids are "
            "18-char registration-code style (see relabel_realistic)."
        ),
        "settings": results,
    }
    if args.pooled_parallel and "parallel" in engines:
        report["pooled_parallel"] = pooled_parallel_cell(settings)
        cell = report["pooled_parallel"]
        print(
            f"[pooled-parallel] {cell['setting']}: {cell['wall_seconds']:.3f}s "
            f"agree={cell['agrees_with_faithful']} "
            f"leftovers={cell['shm_leftovers']}",
            flush=True,
        )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.trace_out is not None:
        write_trace_jsonl(settings, engines[0], args.trace_out)

    failed = False
    if not all(s["engines_agree"] for s in results):
        print("FAIL: engine group sets disagree", file=sys.stderr)
        failed = True
    if any(s["shm_leftovers"] for s in results):
        print("FAIL: leaked shared-memory segments", file=sys.stderr)
        failed = True
    pooled_cell = report.get("pooled_parallel")
    if pooled_cell is not None and not (
        pooled_cell["agrees_with_faithful"] and not pooled_cell["shm_leftovers"]
    ):
        print("FAIL: pooled parallel run disagreed or leaked", file=sys.stderr)
        failed = True
    if failed:
        return 1

    if args.compare is not None:
        baseline = json.loads(args.compare.read_text())
        regressions = compare_reports(report, baseline, args.tolerance)
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        if regressions:
            return 1
        print(f"no wall-time regressions vs {args.compare}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
