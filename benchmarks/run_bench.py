"""Cross-engine mining benchmark on Table-1-style synthetic settings.

Standalone runner (NOT collected by pytest — ``pythonpath`` config only
picks up ``test_*.py`` / ``bench_*.py``).  Generates provincial TPIINs
at a sweep of sizes and trading probabilities, runs every mining engine
on each, checks that they all report the *same* suspicious-group set,
and writes a machine-readable JSON report with wall time, peak RSS and
trails/second per (setting, engine) cell.

Usage::

    python benchmarks/run_bench.py                    # full sweep -> BENCH_PR4.json
    python benchmarks/run_bench.py --smoke            # tiny CI sweep, < 60 s
    python benchmarks/run_bench.py -o out.json --engines faithful csr

Exit status is non-zero when any engine disagrees with the faithful
group set, so CI can gate on agreement.
"""

from __future__ import annotations

import argparse
import gc
import json
import resource
import sys
import time
from pathlib import Path
from typing import Any

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datagen.config import ProvinceConfig  # noqa: E402
from repro.datagen.province import generate_province  # noqa: E402
from repro.fusion.tpiin import TPIIN  # noqa: E402
from repro.mining.detector import DetectionResult, detect  # noqa: E402
from repro.model.colors import EColor, VColor  # noqa: E402
from repro.obs.tracing import Tracer  # noqa: E402

#: (label, companies, trading probability) — ordered sparsest to densest.
#: The densest settings add investment cross-arcs (path multiplicity),
#: mirroring the conglomerate structure behind Table 1's group blow-up.
FULL_SETTINGS: tuple[tuple[str, int, float], ...] = (
    ("sparse-120", 120, 0.010),
    ("medium-240", 240, 0.020),
    ("dense-360", 360, 0.050),
    ("denser-480", 480, 0.100),
    ("densest-720", 720, 0.100),
)

SMOKE_SETTINGS: tuple[tuple[str, int, float], ...] = (
    ("smoke-60", 60, 0.020),
    ("smoke-90", 90, 0.050),
)

ENGINES: tuple[str, ...] = ("faithful", "fast", "parallel", "csr")

GENERATOR_SEED = 31

#: Settings at or above this company count get the conglomerate-heavy
#: antecedent structure (extra investment arcs, dual holdings).
HEAVY_COMPANIES = 700

#: Timing repetitions per (setting, engine) cell; best-of is reported.
REPEATS = 3


def relabel_realistic(tpiin: TPIIN) -> TPIIN:
    """Re-key every node to an 18-char registration-code-style id.

    The paper's taxpayers carry 18-character unified social credit
    codes; the generator's compact ids ("C00017") understate the string
    hashing the faithful engine performs per prefix.  Deterministic:
    codes are assigned in node iteration order.
    """
    mapping: dict[object, str] = {}
    for i, node in enumerate(tpiin.graph.nodes()):
        color = tpiin.graph.node_color(node)
        prefix = "911001" if color is VColor.COMPANY else "330701"
        mapping[node] = f"{prefix}{i:012d}"
    return TPIIN.build(
        persons=[mapping[n] for n in tpiin.graph.nodes(VColor.PERSON)],
        companies=[mapping[n] for n in tpiin.graph.nodes(VColor.COMPANY)],
        influence=[
            (mapping[a], mapping[b]) for a, b, _ in tpiin.graph.arcs(EColor.INFLUENCE)
        ],
        trading=[
            (mapping[a], mapping[b]) for a, b, _ in tpiin.graph.arcs(EColor.TRADING)
        ],
    )


def build_tpiin(companies: int, probability: float) -> TPIIN:
    if companies >= HEAVY_COMPANIES:
        config = ProvinceConfig(
            companies=companies,
            legal_persons=max(2, int(companies * 0.55)),
            directors=max(1, int(companies * 0.316)),
            investment_extra_arc_share=0.20,
            dual_holding_attach_both=0.9,
            seed=GENERATOR_SEED,
        )
    else:
        config = ProvinceConfig.small(companies=companies, seed=GENERATOR_SEED)
    dataset = generate_province(config)
    tpiin = dataset.overlay_trading(dataset.antecedent_tpiin(), probability)
    return relabel_realistic(tpiin)


def peak_rss_bytes() -> int:
    """Peak RSS of this process; kilobytes on Linux, bytes on macOS."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def time_engines(
    tpiin: TPIIN, engines: tuple[str, ...], repeats: int
) -> dict[str, float]:
    """Best-of-``repeats`` wall time per engine, interleaved round-robin.

    Nothing is retained across timed runs and the heap is collected
    before each, so no engine pays generational-GC traversals over
    another engine's leftovers (a run-order artifact).  GC stays
    *enabled* during the runs themselves: allocation-driven GC pressure
    is genuine engine cost — shedding it is part of what the CSR kernel
    is for — and production processes run with GC on.
    """
    walls: dict[str, float] = {engine: float("inf") for engine in engines}
    for _ in range(repeats):
        for engine in engines:
            gc.collect()
            started = time.perf_counter()
            detect(tpiin, engine=engine)
            walls[engine] = min(walls[engine], time.perf_counter() - started)
    return walls


def bench_setting(
    label: str,
    companies: int,
    probability: float,
    engines: tuple[str, ...],
    repeats: int = REPEATS,
) -> dict[str, Any]:
    tpiin = build_tpiin(companies, probability)
    walls = time_engines(tpiin, engines, repeats)
    cells: dict[str, Any] = {}
    group_keys: dict[str, frozenset[Any]] = {}
    for engine in engines:
        # Untimed verification run: collect outputs and agreement keys.
        result: DetectionResult = detect(tpiin, engine=engine)
        wall = walls[engine]
        group_keys[engine] = frozenset(g.key() for g in result.groups)
        # The fast engine skips trail enumeration entirely and reports None.
        trails = result.pattern_trail_count
        cells[engine] = {
            "wall_seconds": round(wall, 4),
            "peak_rss_bytes": peak_rss_bytes(),
            "pattern_trails": trails,
            "trails_per_second": (
                round(trails / wall, 1) if trails is not None and wall > 0 else None
            ),
            "groups": len(result.groups),
            "suspicious_arcs": len(result.suspicious_trading_arcs),
            "truncated": result.truncated,
        }
    reference = group_keys.get("faithful") or next(iter(group_keys.values()))
    agree = all(keys == reference for keys in group_keys.values())
    setting: dict[str, Any] = {
        "label": label,
        "companies": companies,
        "trading_probability": probability,
        "nodes": tpiin.graph.number_of_nodes(),
        "arcs": tpiin.graph.number_of_arcs(),
        "engines": cells,
        "engines_agree": agree,
    }
    if "faithful" in cells and "csr" in cells:
        faithful_wall = cells["faithful"]["wall_seconds"]
        csr_wall = cells["csr"]["wall_seconds"]
        setting["csr_speedup_vs_faithful"] = (
            round(faithful_wall / csr_wall, 2) if csr_wall > 0 else None
        )
    return setting


def write_trace_jsonl(
    settings: tuple[tuple[str, int, float], ...],
    engine: str,
    path: Path,
) -> None:
    """Run one traced detect on the first setting and write span JSONL."""
    label, companies, probability = settings[0]
    tpiin = build_tpiin(companies, probability)
    tracer = Tracer()
    detect(tpiin, engine=engine, trace=tracer)
    path.write_text(tracer.to_jsonl() + "\n")
    print(f"wrote {tracer.span_count()} spans for {label}/{engine} to {path}")


def compare_reports(
    new_report: dict[str, Any], old_report: dict[str, Any], tolerance: float
) -> list[str]:
    """Wall-time regressions beyond ``tolerance`` vs an older report.

    Compares only (setting, engine) cells present in both reports, so a
    baseline from a different sweep shape degrades to a partial check
    rather than an error.
    """
    old_settings = {s["label"]: s for s in old_report.get("settings", [])}
    regressions: list[str] = []
    for setting in new_report["settings"]:
        old_setting = old_settings.get(setting["label"])
        if old_setting is None:
            continue
        for engine, cell in setting["engines"].items():
            old_cell = old_setting.get("engines", {}).get(engine)
            if old_cell is None:
                continue
            old_wall = old_cell["wall_seconds"]
            new_wall = cell["wall_seconds"]
            if old_wall > 0 and new_wall > old_wall * (1.0 + tolerance):
                regressions.append(
                    f"{setting['label']}/{engine}: {new_wall:.3f}s vs "
                    f"baseline {old_wall:.3f}s "
                    f"(+{(new_wall / old_wall - 1.0) * 100.0:.1f}%, "
                    f"tolerance {tolerance * 100.0:.0f}%)"
                )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_PR4.json",
        help="where to write the JSON report (default: repo-root BENCH_PR4.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny settings for CI: fast, still checks cross-engine agreement",
    )
    parser.add_argument(
        "--engines",
        nargs="+",
        choices=ENGINES,
        default=list(ENGINES),
        help="subset of engines to run (default: all)",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="also run one traced detect on the first setting and write "
        "its span JSONL here (CI artifact)",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="OLD.json",
        help="compare wall times against an older report; exit non-zero "
        "on regressions beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.03,
        help="allowed fractional wall-time regression for --compare "
        "(default: 0.03)",
    )
    args = parser.parse_args(argv)

    settings = SMOKE_SETTINGS if args.smoke else FULL_SETTINGS
    engines = tuple(args.engines)
    results = []
    for label, companies, probability in settings:
        print(f"[{label}] companies={companies} p={probability} ...", flush=True)
        setting = bench_setting(
            label, companies, probability, engines, repeats=1 if args.smoke else REPEATS
        )
        for engine in engines:
            cell = setting["engines"][engine]
            trails = cell["pattern_trails"]
            print(
                f"  {engine:>9}: {cell['wall_seconds']:8.3f}s  "
                f"{trails if trails is not None else '-':>8} trails  "
                f"{cell['groups']:>6} groups",
                flush=True,
            )
        if not setting["engines_agree"]:
            print(f"  !! engines disagree on {label}", flush=True)
        if "csr_speedup_vs_faithful" in setting:
            print(f"  csr speedup vs faithful: {setting['csr_speedup_vs_faithful']}x", flush=True)
        results.append(setting)

    report = {
        "benchmark": "pr4-csr-mining-kernel",
        "mode": "smoke" if args.smoke else "full",
        "generator_seed": GENERATOR_SEED,
        "notes": (
            "peak_rss_bytes is process-wide ru_maxrss and only grows over a run; "
            "engines are benchmarked sparsest-setting-first so later cells carry "
            "earlier high-water marks. wall_seconds is best-of-repeats with "
            "engines interleaved round-robin, gc.collect() before each timed "
            "run, GC enabled during it, and nothing retained across timed runs; "
            "dataset generation and the verification pass are excluded. Node "
            "ids are 18-char registration-code style (see relabel_realistic)."
        ),
        "settings": results,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.trace_out is not None:
        write_trace_jsonl(settings, engines[0], args.trace_out)

    if not all(s["engines_agree"] for s in results):
        print("FAIL: engine group sets disagree", file=sys.stderr)
        return 1

    if args.compare is not None:
        baseline = json.loads(args.compare.read_text())
        regressions = compare_reports(report, baseline, args.tolerance)
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        if regressions:
            return 1
        print(f"no wall-time regressions vs {args.compare}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
