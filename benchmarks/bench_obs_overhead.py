"""Guard: disabled tracing costs < 3% of detect() wall time.

Every pipeline stage now enters ``with tracer.span(...)`` blocks even
when tracing is off (the null-object path).  This guard bounds the
disabled-path cost *structurally* rather than by differential timing —
two timed runs of the same engine differ by more than 3% from machine
noise alone, so a naive traced-vs-untraced comparison cannot resolve
the question.  Instead:

1. run ONE traced detect on the densest baseline setting and count the
   span operations the run actually performs;
2. measure the per-operation cost of ``NULL_TRACER`` in a tight loop
   (span + enter + exit + the ``enabled`` guard);
3. assert spans x per-op cost < 3% of that setting's recorded wall in
   the repo-root ``BENCH_PR7.json`` baseline.

Plus allocation checks: an untraced run must never construct a
``Tracer`` or attach a trace to its result.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.run_bench import FULL_SETTINGS, build_tpiin
from repro.mining.detector import detect
from repro.mining.options import DetectOptions
from repro.obs.tracing import NULL_TRACER, Tracer

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"

#: The guarded setting — densest of the baseline sweep, faithful engine
#: (the engine with the most span sites: one per subTPIIN plus nested
#: patterns-tree/match spans).
GUARD_LABEL = "densest-720"
GUARD_ENGINE = "faithful"

#: Allowed disabled-tracing overhead as a fraction of baseline wall.
TOLERANCE = 0.03

#: Null operations per span site: tracer.span() + __enter__ + __exit__
#: plus one ``tracer.enabled`` check guarding the attribute set.
NULL_OPS_PER_SPAN = 4


def _baseline_wall_seconds() -> float:
    report = json.loads(BASELINE_PATH.read_text())
    for setting in report["settings"]:
        if setting["label"] == GUARD_LABEL:
            return float(setting["engines"][GUARD_ENGINE]["wall_seconds"])
    raise AssertionError(f"{GUARD_LABEL} missing from {BASELINE_PATH}")


def _null_op_seconds(iterations: int = 200_000) -> float:
    """Per-operation cost of the null tracer's hot path."""
    tracer = NULL_TRACER
    started = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("stage"):
            if tracer.enabled:  # pragma: no cover - never taken
                raise AssertionError
    elapsed = time.perf_counter() - started
    # Each loop iteration exercises span + enter + exit + enabled.
    return elapsed / (iterations * NULL_OPS_PER_SPAN)


def test_null_tracer_overhead_is_under_tolerance(benchmark):
    label_setting = next(s for s in FULL_SETTINGS if s[0] == GUARD_LABEL)
    _, companies, probability = label_setting
    tpiin = build_tpiin(companies, probability)

    tracer = Tracer()
    benchmark.pedantic(
        detect,
        args=(tpiin,),
        kwargs={"engine": GUARD_ENGINE, "trace": tracer},
        rounds=1,
        iterations=1,
    )
    span_sites = tracer.span_count()
    assert span_sites > 0

    per_op = _null_op_seconds()
    # Disabled runs pay the null objects at the same sites the traced
    # run recorded (attribute-set kwargs never materialize: they sit
    # behind the ``enabled`` guard, the fourth op counted per site).
    overhead = span_sites * NULL_OPS_PER_SPAN * per_op
    baseline = _baseline_wall_seconds()
    share = overhead / baseline
    print(
        f"\n{span_sites} span sites x {NULL_OPS_PER_SPAN} null ops "
        f"x {per_op * 1e9:.1f} ns = {overhead * 1e3:.3f} ms "
        f"({share * 100.0:.3f}% of {GUARD_LABEL}/{GUARD_ENGINE} "
        f"baseline {baseline:.3f} s)"
    )
    assert share < TOLERANCE, (
        f"disabled-tracing overhead {share * 100.0:.2f}% exceeds "
        f"{TOLERANCE * 100.0:.0f}% of the {GUARD_LABEL} baseline"
    )


def test_untraced_detect_allocates_no_tracer():
    assert DetectOptions().resolve_tracer() is NULL_TRACER
    assert DetectOptions(trace=False).resolve_tracer() is NULL_TRACER


def test_untraced_result_carries_no_trace():
    _, companies, probability = FULL_SETTINGS[0]
    tpiin = build_tpiin(companies, probability)
    result = detect(tpiin, engine="fast")
    assert result.trace is None


@pytest.mark.parametrize("attr", ["span", "record", "enabled"])
def test_null_objects_expose_the_tracer_protocol(attr):
    assert hasattr(NULL_TRACER, attr)
