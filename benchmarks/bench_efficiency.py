"""Experiment E1 — efficiency of the proposed method vs the baseline.

The paper claims (Sections 1 and 5) that the pattern-tree method
"greatly improves the efficiency" over the global traversing baseline.
This bench times the faithful engine, the optimized engine and the
global-traversal baseline on growing synthetic TPIINs and reports the
speedup curve.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_report
from repro.analysis.reporting import render_table
from repro.baseline.global_traversal import global_traversal_detect
from repro.datagen.config import ProvinceConfig
from repro.datagen.province import generate_province
from repro.mining.detector import detect
from repro.mining.detector import detect

SIZES = (60, 120, 240)


def _tpiin_for(companies: int):
    ds = generate_province(ProvinceConfig.small(companies=companies, seed=31))
    base = ds.antecedent_tpiin()
    return ds.overlay_trading(base, 0.02)


@pytest.mark.parametrize("companies", SIZES)
def test_faithful_engine(benchmark, companies):
    tpiin = _tpiin_for(companies)
    result = benchmark(lambda: detect(tpiin))
    assert result.suspicious_arc_count >= 0


@pytest.mark.parametrize("companies", SIZES)
def test_fast_engine(benchmark, companies):
    tpiin = _tpiin_for(companies)
    result = benchmark(lambda: detect(tpiin, engine="fast", collect_groups=False))
    assert result.suspicious_arc_count >= 0


@pytest.mark.parametrize("companies", SIZES)
def test_global_traversal_baseline(benchmark, companies):
    tpiin = _tpiin_for(companies)
    result = benchmark.pedantic(
        global_traversal_detect, args=(tpiin,), rounds=1, iterations=1
    )
    assert result.suspicious_arc_count >= 0


def test_efficiency_report(benchmark):
    """One-shot timing table across sizes and methods."""

    def build_report() -> str:
        rows = []
        for companies in SIZES:
            tpiin = _tpiin_for(companies)
            timings = {}
            for name, runner in (
                ("faithful", lambda: detect(tpiin)),
                ("fast", lambda: detect(tpiin, engine="fast", collect_groups=False)),
                ("baseline", lambda: global_traversal_detect(tpiin)),
            ):
                started = time.perf_counter()
                runner()
                timings[name] = time.perf_counter() - started
            rows.append(
                [
                    companies,
                    f"{1000 * timings['faithful']:.1f}",
                    f"{1000 * timings['fast']:.1f}",
                    f"{1000 * timings['baseline']:.1f}",
                    f"{timings['baseline'] / timings['fast']:.1f}x",
                ]
            )
        return render_table(
            ["companies", "faithful ms", "fast ms", "baseline ms", "speedup"],
            rows,
        )

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("efficiency.txt", report)
    assert "speedup" in report
