"""Extension bench — scaling with network size.

The paper's conclusion points to parallel/distributed processing "with
the increasing of the size of the TPIIN".  This bench grows the
synthetic province from 500 to 4,000 companies (holding the trading
probability fixed) and reports how detection time scales — the fast
engine's per-trading-arc cost should stay near-constant because each
arc pays one packed-bitset test plus, if suspicious, a bounded group
enumeration.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_report
from repro.analysis.reporting import render_table
from repro.datagen.config import ProvinceConfig
from repro.datagen.province import generate_province
from repro.mining.detector import detect

SIZES = (500, 1000, 2000, 4000)
PROBABILITY = 0.01


def _tpiin_for(companies: int):
    ds = generate_province(ProvinceConfig.small(companies=companies, seed=47))
    base = ds.antecedent_tpiin()
    return ds.overlay_trading(base, PROBABILITY)


@pytest.mark.parametrize("companies", SIZES)
def test_scaling_detection(benchmark, companies):
    tpiin = _tpiin_for(companies)
    result = benchmark.pedantic(
        detect,
        args=(tpiin,),
        kwargs={"engine": "fast", "collect_groups": False},
        rounds=1,
        iterations=1,
    )
    assert result.total_trading_arcs > 0


def test_scaling_report(benchmark):
    def build_report() -> str:
        rows = []
        for companies in SIZES:
            tpiin = _tpiin_for(companies)
            started = time.perf_counter()
            result = detect(tpiin, engine="fast", collect_groups=False)
            seconds = time.perf_counter() - started
            per_arc_us = 1e6 * seconds / max(1, result.total_trading_arcs)
            rows.append(
                [
                    companies,
                    result.total_trading_arcs,
                    result.suspicious_arc_count,
                    result.group_count,
                    f"{1000 * seconds:.1f}",
                    f"{per_arc_us:.2f}",
                ]
            )
        return render_table(
            [
                "companies",
                "trading arcs",
                "suspicious",
                "groups",
                "detect ms",
                "us / arc",
            ],
            rows,
        )

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("scaling.txt", report)
    assert "us / arc" in report
