"""Experiments F5 and F11-F16 — multi-network fusion at provincial scale.

Times the full Fig. 5 fusion procedure over the provincial source
networks and regenerates the figure-caption statistics of Figs. 11-16
(node/edge counts of G1, G2, G3, the antecedent network G123, a G4
instance and the resulting TPIIN), plus GraphML exports for rendering.
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_report
from repro.analysis.reporting import render_table
from repro.io.graphml import write_graphml, write_ungraph_graphml
from repro.model.homogeneous import TradingGraph


def test_provincial_fusion(benchmark, paper_province):
    """F5: the G1..G4 -> TPIIN fusion at paper scale."""
    trading = paper_province.trading_graph(0.002)

    result = benchmark.pedantic(
        paper_province.fuse_with, args=(trading,), rounds=1, iterations=1
    )
    stats = result.tpiin.stats()
    assert stats.companies >= 2452 - len(result.company_syndicates) * 50
    assert stats.influence_arcs > 0


def test_figure_caption_report(benchmark, paper_province, paper_base):
    """F11-F16: regenerate the network statistics behind the figures."""

    def build_report() -> str:
        tpiin = paper_province.overlay_trading(paper_base, 0.002)
        g1 = paper_province.interdependence
        g2 = paper_province.influence
        g3 = paper_province.investment
        stats = tpiin.stats()
        rows = [
            [
                "G1 interdependence (Fig. 11)",
                g1.number_of_persons,
                g1.number_of_links,
                "776 directors + 1350 legal persons",
            ],
            [
                "G2 influence (Fig. 12)",
                g2.number_of_persons + g2.number_of_companies,
                g2.number_of_influences,
                "bipartite person -> company",
            ],
            [
                "G3 investment (Fig. 13)",
                g3.number_of_companies,
                g3.number_of_arcs,
                "company -> company",
            ],
            [
                "G123 antecedent (Fig. 14)",
                stats.nodes,
                stats.influence_arcs,
                "DAG after contraction",
            ],
            [
                "G4 trading, p=0.002 (Fig. 15)",
                stats.companies,
                stats.trading_arcs,
                "directed ER",
            ],
            [
                "TPIIN (Fig. 16)",
                stats.nodes,
                stats.arcs,
                f"avg node degree {stats.average_node_degree:.3f}",
            ],
        ]
        return render_table(["network", "nodes", "arcs/edges", "note"], rows)

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("figure_captions.txt", report)
    assert "G123" in report


def test_graphml_exports(benchmark, paper_province, paper_base):
    """Write the renderable GraphML files behind Figs. 11-16."""

    def export() -> list[Path]:
        out = RESULTS_DIR / "graphml"
        out.mkdir(parents=True, exist_ok=True)
        tpiin = paper_province.overlay_trading(paper_base, 0.002)
        paths = [
            write_ungraph_graphml(
                paper_province.interdependence.graph, out / "fig11_g1.graphml"
            ),
            write_graphml(paper_province.influence.graph, out / "fig12_g2.graphml"),
            write_graphml(paper_province.investment.graph, out / "fig13_g3.graphml"),
            write_graphml(tpiin.antecedent_graph(), out / "fig14_antecedent.graphml"),
            write_graphml(tpiin.trading_graph(), out / "fig15_g4.graphml"),
            write_graphml(tpiin.graph, out / "fig16_tpiin.graphml"),
        ]
        return paths

    paths = benchmark.pedantic(export, rounds=1, iterations=1)
    assert all(p.stat().st_size > 0 for p in paths)


def test_empty_trading_fusion(benchmark, paper_province):
    """Antecedent-only fusion, the base of every sweep point."""
    companies = paper_province.company_ids

    def run():
        empty = TradingGraph()
        for company in companies:
            empty.add_company(company)
        return paper_province.fuse_with(empty)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.tpiin.stats().trading_arcs == 0
