"""Experiment E2 — the combinatorial explosion the paper avoids.

Section 3.2 argues that enumerating colored polygon subgraph patterns
(triangle .. hexagon) explodes combinatorially, which motivates the
pattern-tree design.  This bench runs the rejected enumeration approach
next to the proposed detector and reports how the examined-candidate
count grows with the maximum polygon size while the detector's work
stays flat.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_report
from repro.analysis.reporting import render_table
from repro.baseline.pattern_enum import enumerate_polygon_patterns
from repro.datagen.config import ProvinceConfig
from repro.datagen.province import generate_province
from repro.mining.detector import detect


def _tpiin():
    ds = generate_province(ProvinceConfig.small(companies=150, seed=37))
    base = ds.antecedent_tpiin()
    return ds.overlay_trading(base, 0.02)


@pytest.mark.parametrize("max_size", (3, 4, 5, 6))
def test_polygon_enumeration(benchmark, max_size):
    tpiin = _tpiin()
    result = benchmark.pedantic(
        enumerate_polygon_patterns,
        args=(tpiin,),
        kwargs={"max_size": max_size},
        rounds=1,
        iterations=1,
    )
    assert result.candidates_examined > 0


def test_proposed_method(benchmark):
    tpiin = _tpiin()
    result = benchmark(lambda: detect(tpiin))
    assert result.pattern_trail_count > 0


def test_explosion_report(benchmark):
    def build_report() -> str:
        tpiin = _tpiin()
        started = time.perf_counter()
        detection = detect(tpiin)
        detect_seconds = time.perf_counter() - started
        rows = []
        for max_size in (3, 4, 5, 6):
            started = time.perf_counter()
            enum = enumerate_polygon_patterns(tpiin, max_size=max_size)
            seconds = time.perf_counter() - started
            rows.append(
                [
                    max_size,
                    enum.shapes_enumerated,
                    enum.candidates_examined,
                    enum.group_count,
                    f"{1000 * seconds:.1f}",
                ]
            )
        table = render_table(
            ["max polygon", "shapes", "candidates examined", "groups", "ms"],
            rows,
        )
        footer = (
            f"\nproposed method: {detection.pattern_trail_count} pattern "
            f"trails, {detection.group_count} groups, "
            f"{1000 * detect_seconds:.1f} ms (all polygon sizes at once)"
        )
        return table + footer

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("pattern_explosion.txt", report)
    assert "candidates examined" in report
