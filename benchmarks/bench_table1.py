"""Experiment T1 — Table 1: suspicious groups over trading probabilities.

Benchmarks detection at a representative subset of the paper's twenty
probability settings (the full 20-point sweep at paper scale is
``examples/provincial_audit.py --full``), then regenerates the Table-1
rows side by side with the paper's published counts.

Expected shape (see EXPERIMENTS.md): counts grow linearly with the
trading probability, the suspicious share stays ~5%, complex groups
outnumber simple ones roughly 5:1, and both accuracy columns are 100%.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.analysis.metrics import Table1Row, compute_table1_row
from repro.analysis.reporting import render_table
from repro.analysis.table1 import PAPER_TABLE1
from repro.mining.detector import detect

#: Reduced sweep used by the benchmark run.
BENCH_PROBABILITIES = (0.002, 0.004, 0.01, 0.02, 0.05, 0.1)


@pytest.mark.parametrize("probability", BENCH_PROBABILITIES)
def test_table1_detection(benchmark, paper_province, paper_base, probability):
    """Time one sweep point: overlay + fast detection (count mode)."""
    tpiin = paper_province.overlay_trading(paper_base, probability)

    result = benchmark.pedantic(
        detect,
        args=(tpiin,),
        kwargs={"engine": "fast", "collect_groups": False},
        rounds=1,
        iterations=1,
    )
    assert result.suspicious_arc_count > 0
    paper = PAPER_TABLE1[probability]
    # Shape check: within 2x of the paper's counts on every column.
    assert result.complex_group_count == pytest.approx(paper[1], rel=1.0)
    assert result.simple_group_count == pytest.approx(paper[2], rel=1.0)
    assert result.suspicious_arc_count == pytest.approx(paper[3], rel=1.0)
    assert result.total_trading_arcs == pytest.approx(paper[4], rel=0.25)


def test_table1_report(benchmark, paper_province, paper_base):
    """Regenerate the Table-1 rows and write the paper comparison."""

    def build_rows() -> list[Table1Row]:
        rows: list[Table1Row] = []
        for probability in BENCH_PROBABILITIES:
            tpiin = paper_province.overlay_trading(paper_base, probability)
            detection = detect(tpiin, engine="fast", collect_groups=False)
            rows.append(
                compute_table1_row(
                    tpiin, detection, trading_probability=probability
                )
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)

    headers = list(Table1Row.HEADERS)
    table = render_table(headers, [r.as_cells() for r in rows])

    comparison_headers = [
        "p(trade)",
        "complex paper/ours",
        "simple paper/ours",
        "sus trades paper/ours",
        "total paper/ours",
        "sus% paper/ours",
    ]
    comparison_rows = []
    for row in rows:
        paper = PAPER_TABLE1[round(row.trading_probability, 3)]
        comparison_rows.append(
            [
                f"{row.trading_probability:.3f}",
                f"{paper[1]:,} / {row.complex_groups:,}",
                f"{paper[2]:,} / {row.simple_groups:,}",
                f"{paper[3]:,} / {row.suspicious_trades:,}",
                f"{paper[4]:,} / {row.total_trades:,}",
                f"{paper[5]:.2f} / {row.suspicious_percentage:.2f}",
            ]
        )
    comparison = render_table(comparison_headers, comparison_rows)
    write_report("table1.txt", table + "\n\npaper vs ours\n" + comparison)

    assert all(r.trade_accuracy == 1.0 for r in rows)
    assert all(r.group_accuracy == 1.0 for r in rows)
    shares = [r.suspicious_percentage for r in rows]
    assert max(shares) - min(shares) < 1.0  # the ~5% plateau
