"""Experiments F1-F3 — the case-study patterns of Section 3.1.

Each case study is mined end to end (fusion where the paper shows an
un-contracted form, then detection); the regenerated proof chains are
written as a report.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.datagen.cases import (
    case1_source_graphs,
    case1_tpiin,
    case2_tpiin,
    case3_tpiin,
)
from repro.fusion.pipeline import fuse
from repro.mining.detector import detect


def test_case1_fusion_and_detection(benchmark):
    """Case 1 (Fig. 1): kin brothers merge, the proof chain appears."""
    src = case1_source_graphs()

    def run():
        tpiin = fuse(
            src.interdependence, src.influence, src.investment, src.trading
        ).tpiin
        return detect(tpiin)

    result = benchmark(run)
    assert ("C3", "C2") in result.suspicious_trading_arcs


def test_case2_detection(benchmark):
    """Case 2 (Fig. 3a): triangle with a company antecedent."""
    tpiin = case2_tpiin()
    result = benchmark(lambda: detect(tpiin))
    assert result.groups[0].antecedent == "C4"


def test_case3_detection(benchmark):
    """Case 3 (Fig. 3b): interlocking-director syndicate."""
    tpiin = case3_tpiin()
    result = benchmark(lambda: detect(tpiin))
    assert result.groups[0].members == frozenset({"B", "C7", "C8"})


def test_case_report(benchmark):
    def build_report() -> str:
        parts = []
        for name, tpiin in (
            ("Case 1 (contracted, Fig. 1c)", case1_tpiin()),
            ("Case 2 (Fig. 3a)", case2_tpiin()),
            ("Case 3 (Fig. 3b)", case3_tpiin()),
        ):
            result = detect(tpiin)
            parts.append(f"{name}:")
            parts.extend("  " + g.render() for g in result.groups)
        return "\n".join(parts)

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("case_studies.txt", report)
    assert "Case 3" in report
