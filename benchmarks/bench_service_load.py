"""Service ingest load benchmark: single-arc vs batch vs sharded.

Measures requests (or arc-lines) per second and exact client-side
p50/p99 latency against a live in-process daemon, for five configs:

``seed_single_shard``
    The daemon as the previous revision shipped it: one shard,
    per-request durable commit, and the transport *without*
    ``TCP_NODELAY`` — Nagle plus the peer's delayed ACK stalls every
    keep-alive response ~40 ms, which is what this revision fixed.
``single_arc``
    The same single-shard daemon over the fixed transport; one durable
    commit (WAL append + fsync) per request.
``batch``
    NDJSON bulk ingest (``POST /v1/arcs:batch``) against the
    single-shard daemon; one fsync per commit group.
``sharded``
    ``--shards 4`` router/worker daemon, concurrent keep-alive
    clients, queued group-commit pipeline.
``sharded_batch``
    NDJSON bulk ingest against the sharded daemon (per-shard flush
    threads overlap their WAL syncs).

Protocol: interleaved best-of-``--repeats`` — config order rotates
inside each repeat so drift hits all configs evenly, and ``gc.collect()``
runs before every timed window.  Every config replays the *same* seeded
op sequence, and the run ends with an agreement check: every service's
incremental result must equal a batch ``detect(engine="fast")`` over
the final arc set.

Honesty notes (recorded in the output): this host has one CPU core, so
configs that differ only in concurrency (``sharded`` vs ``single_arc``)
converge on the same GIL/transport ceiling, and the local fsync
(~0.2 ms) is too cheap for group-commit amortization to dominate; the
headline sharded gain is measured against the seed daemon as shipped.
On multi-core hosts or slow-fsync storage the same-transport gap opens
up; the JSON reports both ratios, labelled.

Usage::

    python benchmarks/bench_service_load.py [--smoke] [-o OUT.json]
        [--compare BENCH_PR9.json] [--repeats N] [--shards N]
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.datagen.config import ProvinceConfig
from repro.datagen.province import generate_province
from repro.fusion.tpiin import TPIIN
from repro.mining.detector import detect
from repro.model.colors import EColor
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.server import DetectionHTTPServer, ServiceLike
from repro.service.sharding import ShardedDetectionService
from repro.service.state import DetectionService


@dataclass
class LoadResult:
    """One timed window against one daemon config."""

    ops: int
    elapsed_seconds: float
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def ops_per_second(self) -> float:
        return self.ops / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]


def build_dataset(seed: int, companies: int, probability: float) -> TPIIN:
    dataset = generate_province(ProvinceConfig.small(seed=seed, companies=companies))
    trading = dataset.trading_graph(probability)
    return dataset.fuse_with(trading).tpiin


def build_ops(
    tpiin: TPIIN, count: int, seed: int
) -> list[tuple[str, str, str]]:
    """A seeded add-heavy mutation stream over the dataset's companies.

    Every op touches a *distinct* arc pair — adds of fresh pairs,
    removes of distinct baseline arcs — so the stream commutes: the
    concurrent-client configs interleave ops in nondeterministic order,
    and the final graph must not depend on it.
    """
    companies = [str(c) for c in tpiin.companies()]
    baseline = sorted(
        {(str(s), str(b)) for s, b in tpiin.trading_arcs()}
        | {(str(s), str(b)) for s, b in tpiin.intra_scs_trades}
    )
    rng = random.Random(seed)
    rng.shuffle(baseline)
    used = set(baseline)
    ops: list[tuple[str, str, str]] = []
    for _ in range(count):
        if baseline and rng.random() < 0.1:
            seller, buyer = baseline.pop()
            ops.append(("remove", seller, buyer))
            continue
        while True:
            seller, buyer = rng.sample(companies, 2)
            if (seller, buyer) not in used:
                break
        used.add((seller, buyer))
        ops.append(("add", seller, buyer))
    rng.shuffle(ops)
    return ops


def final_arcs(tpiin: TPIIN, ops: list[tuple[str, str, str]]) -> set[tuple[str, str]]:
    arcs = {(str(s), str(b)) for s, b in tpiin.trading_arcs()}
    arcs |= {(str(s), str(b)) for s, b in tpiin.intra_scs_trades}
    for op, seller, buyer in ops:
        if op == "add":
            arcs.add((seller, buyer))
        else:
            arcs.discard((seller, buyer))
    return arcs


class _Daemon:
    """A live in-process daemon over a fresh state dir."""

    def __init__(
        self,
        tpiin: TPIIN,
        *,
        shards: int,
        state_dir: Path,
        seed_transport: bool = False,
    ) -> None:
        config = ServiceConfig(
            state_dir=state_dir, port=0, fsync=True, shards=shards
        )
        self.service: ServiceLike
        if shards > 1:
            self.service = ShardedDetectionService.open(tpiin, config)
        else:
            self.service = DetectionService.open(tpiin, config)
        self.server = DetectionHTTPServer((config.host, config.port), self.service)
        if seed_transport:
            # Reproduce the previous revision's transport: Nagle left
            # on, so headers+body in separate sends stall on the
            # peer's delayed ACK.
            handler = self.server.RequestHandlerClass
            self.server.RequestHandlerClass = type(
                "SeedTransportHandler", (handler,), {"disable_nagle_algorithm": False}
            )
        self.thread = threading.Thread(
            target=self.server.serve_forever, name="bench-daemon"
        )
        self.thread.start()
        self.base_url = f"http://127.0.0.1:{self.server.server_address[1]}"

    def stop(self) -> None:
        self.server.shutdown()
        self.thread.join()
        self.server.server_close()
        self.service.close()


def drive_single_arc(
    daemon: _Daemon, ops: list[tuple[str, str, str]], clients: int
) -> LoadResult:
    """Concurrent keep-alive clients, one mutation per request."""
    chunks = [ops[i::clients] for i in range(clients)]
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []

    def worker(index: int) -> None:
        client = ServiceClient(daemon.base_url)
        try:
            for op, seller, buyer in chunks[index]:
                started = time.perf_counter()
                if op == "add":
                    client.add_arc(seller, buyer)
                else:
                    client.remove_arc(seller, buyer)
                latencies[index].append((time.perf_counter() - started) * 1000.0)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    gc.collect()
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return LoadResult(
        ops=len(ops),
        elapsed_seconds=elapsed,
        latencies_ms=[ms for per_client in latencies for ms in per_client],
    )


def drive_batch(
    daemon: _Daemon, ops: list[tuple[str, str, str]], batch_size: int
) -> LoadResult:
    """One keep-alive client streaming NDJSON batches."""
    client = ServiceClient(daemon.base_url)
    latencies: list[float] = []
    try:
        gc.collect()
        started = time.perf_counter()
        for offset in range(0, len(ops), batch_size):
            chunk = ops[offset : offset + batch_size]
            request_started = time.perf_counter()
            report = client.batch_arcs(chunk)
            latencies.append((time.perf_counter() - request_started) * 1000.0)
            if report["rejected"]:
                raise RuntimeError(f"batch rejected lines: {report}")
        elapsed = time.perf_counter() - started
    finally:
        client.close()
    return LoadResult(ops=len(ops), elapsed_seconds=elapsed, latencies_ms=latencies)


def result_signature(service: ServiceLike) -> tuple[frozenset, int]:
    result = service.result()
    return frozenset(g.key() for g in result.groups), service.arc_count()


CONFIG_NAMES = [
    "seed_single_shard",
    "single_arc",
    "batch",
    "sharded",
    "sharded_batch",
]


def run_config(
    name: str,
    tpiin: TPIIN,
    ops: list[tuple[str, str, str]],
    seed_ops: list[tuple[str, str, str]],
    *,
    shards: int,
    clients: int,
    batch_size: int,
) -> tuple[LoadResult, tuple[frozenset, int] | None]:
    """One timed window; returns the load result and (for non-seed
    configs) the service's post-ingest result signature."""
    with tempfile.TemporaryDirectory() as tmp:
        if name == "seed_single_shard":
            daemon = _Daemon(
                tpiin, shards=1, state_dir=Path(tmp), seed_transport=True
            )
            try:
                # The seed transport is ~40 ms/request; a truncated op
                # stream keeps the window short.  Throughput is rate,
                # so the shorter stream is still comparable.
                return drive_single_arc(daemon, seed_ops, clients), None
            finally:
                daemon.stop()
        if name in ("single_arc", "batch"):
            daemon = _Daemon(tpiin, shards=1, state_dir=Path(tmp))
        else:
            daemon = _Daemon(tpiin, shards=shards, state_dir=Path(tmp))
        try:
            if name.endswith("batch"):
                load = drive_batch(daemon, ops, batch_size)
            else:
                load = drive_single_arc(daemon, ops, clients)
            return load, result_signature(daemon.service)
        finally:
            daemon.stop()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny CI tier")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("-o", "--out", type=Path, default=None)
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        help="committed BENCH_PR9.json to gate against",
    )
    parser.add_argument(
        "--floor-fraction",
        type=float,
        default=0.2,
        help="min fraction of the committed single_arc throughput",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        companies, probability, op_count, seed_op_count = 120, 0.05, 200, 20
        repeats = min(args.repeats, 2)
    else:
        companies, probability, op_count, seed_op_count = 200, 0.05, 600, 60
        repeats = args.repeats

    tpiin = build_dataset(23, companies, probability)
    ops = build_ops(tpiin, op_count, seed=7)
    seed_ops = ops[:seed_op_count]

    best: dict[str, LoadResult] = {}
    signatures: dict[str, tuple[frozenset, int]] = {}
    for repeat in range(repeats):
        # Rotate the config order so ambient drift (thermal, page
        # cache) is spread across configs instead of biasing one.
        order = CONFIG_NAMES[repeat % len(CONFIG_NAMES) :] + CONFIG_NAMES[
            : repeat % len(CONFIG_NAMES)
        ]
        for name in order:
            load, signature = run_config(
                name,
                tpiin,
                ops,
                seed_ops,
                shards=args.shards,
                clients=args.clients,
                batch_size=args.batch_size,
            )
            if (
                name not in best
                or load.ops_per_second > best[name].ops_per_second
            ):
                best[name] = load
            if signature is not None:
                signatures[name] = signature
            print(
                f"[{repeat + 1}/{repeats}] {name}: "
                f"{load.ops_per_second:,.0f} ops/s "
                f"p50={load.percentile(0.5):.2f}ms "
                f"p99={load.percentile(0.99):.2f}ms",
                file=sys.stderr,
            )

    # ------------------------------------------------------------------
    # agreement: every config replayed the same stream; all services
    # must agree with each other AND with a batch fast-engine detect.
    expected_arcs = final_arcs(tpiin, ops)
    graph = tpiin.antecedent_graph()
    for seller, buyer in sorted(expected_arcs):
        graph.add_arc(seller, buyer, EColor.TRADING)
    batch_result = detect(TPIIN(graph=graph), engine="fast")
    batch_signature = (
        frozenset(g.key() for g in batch_result.groups),
        len(expected_arcs),
    )
    for name, signature in signatures.items():
        if signature != batch_signature:
            print(f"AGREEMENT FAILURE: {name} diverged from batch detect")
            return 1

    single = best["single_arc"].ops_per_second
    seed = best["seed_single_shard"].ops_per_second
    sharded = best["sharded"].ops_per_second
    batch = best["batch"].ops_per_second
    ratios = {
        "batch_vs_single_arc": round(batch / single, 2) if single else 0.0,
        "sharded_vs_seed_single_shard": round(sharded / seed, 2) if seed else 0.0,
        "sharded_vs_single_arc_same_transport": (
            round(sharded / single, 2) if single else 0.0
        ),
        "sharded_batch_vs_single_arc": (
            round(best["sharded_batch"].ops_per_second / single, 2)
            if single
            else 0.0
        ),
    }
    payload = {
        "benchmark": "pr9-service-load",
        "mode": "smoke" if args.smoke else "full",
        "protocol": (
            f"interleaved best-of-{repeats}, gc.collect() before each "
            "window, identical seeded op stream per config, post-ingest "
            "agreement vs batch fast-engine detect"
        ),
        "dataset": {
            "generator_seed": 23,
            "companies": companies,
            "trading_probability": probability,
            "ops": op_count,
            "seed_config_ops": seed_op_count,
        },
        "clients": args.clients,
        "shards": args.shards,
        "batch_size": args.batch_size,
        "configs": {
            name: {
                "ops_per_second": round(load.ops_per_second, 1),
                "p50_ms": round(load.percentile(0.5), 3),
                "p99_ms": round(load.percentile(0.99), 3),
                "ops": load.ops,
            }
            for name, load in best.items()
        },
        "ratios": ratios,
        "agreement": "all configs matched batch fast-engine detect",
        "notes": (
            "seed_single_shard is the previous revision's daemon as "
            "shipped (single shard, per-request fsync, no TCP_NODELAY; "
            "Nagle + delayed ACK stalls every response ~40 ms) — the "
            "headline sharded ratio is measured against it.  This host "
            "has ONE CPU core and a ~0.2 ms fsync, so same-transport "
            "sharded vs single_arc converges on the GIL/transport "
            "ceiling (ratio near 1); the split is reported separately "
            "rather than folded into the headline."
        ),
    }

    text = json.dumps(payload, indent=2)
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n")

    if args.compare is not None:
        committed = json.loads(args.compare.read_text())
        failures = []
        if ratios["batch_vs_single_arc"] < 5.0:
            failures.append(
                f"batch_vs_single_arc {ratios['batch_vs_single_arc']} < 5.0"
            )
        if ratios["sharded_vs_seed_single_shard"] < 2.0:
            failures.append(
                "sharded_vs_seed_single_shard "
                f"{ratios['sharded_vs_seed_single_shard']} < 2.0"
            )
        committed_single = committed["configs"]["single_arc"]["ops_per_second"]
        floor = args.floor_fraction * committed_single
        if single < floor:
            failures.append(
                f"single_arc {single:.0f} ops/s under floor {floor:.0f} "
                f"({args.floor_fraction} x committed {committed_single})"
            )
        if failures:
            for failure in failures:
                print(f"COMPARE FAILURE: {failure}")
            return 1
        print(
            f"compare vs {args.compare}: ratios and throughput floor hold",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
