#!/usr/bin/env python3
"""Quickstart: build a tiny TPIIN and mine its suspicious groups.

Recreates the paper's Fig. 6 example through the public API: one person
``P1`` influencing companies ``C1`` and ``C3``, an investment arc
``C1 -> C2`` and a trading relationship ``C2 -> C3``.  The suspicious
relationship between ``C2`` and ``C3`` is certified by two trails with
the common antecedent ``P1``.

Run:  python examples/quickstart.py
"""

from repro import TPIIN, detect
from repro.mining.oracle import suspicious_arc_oracle


def main() -> None:
    tpiin = TPIIN.build(
        persons=["P1"],
        companies=["C1", "C2", "C3"],
        influence=[
            ("P1", "C1"),  # P1 is e.g. the legal person of C1
            ("P1", "C3"),  # ... and a director of C3
            ("C1", "C2"),  # C1 holds a major share of C2
        ],
        trading=[("C2", "C3")],
    )
    tpiin.validate()
    print("TPIIN:", tpiin.stats())

    result = detect(tpiin)
    print(result.summary())
    print()
    print("Suspicious groups (proof chains):")
    for group in result.groups:
        print(" ", group.render())
        print("    antecedent:", group.antecedent, "| IAT:", group.trading_arc)

    # The reachability oracle agrees with the detector arc for arc.
    assert suspicious_arc_oracle(tpiin) == result.suspicious_trading_arcs
    print()
    print("suspicious trading relationships:", sorted(result.suspicious_trading_arcs))


if __name__ == "__main__":
    main()
