#!/usr/bin/env python3
"""The three IAT tax-evasion case studies of Section 3.1, end to end.

For each case: build the network, run MSG-phase group mining, then
apply the ITE-phase arm's-length method the tax administration office
used in the real case (TNMM for Case 1, CUP for Case 2, cost plus for
Case 3) to a transaction shaped like the case's facts.

Run:  python examples/case_studies.py
"""

from repro.datagen.cases import (
    case1_source_graphs,
    case2_tpiin,
    case3_tpiin,
)
from repro.fusion import fuse
from repro.ite import (
    IndustryProfile,
    Transaction,
    comparable_uncontrolled_price,
    cost_plus,
    transactional_net_margin,
)
from repro.ite.adjudication import ENTERPRISE_INCOME_TAX_RATE
from repro.mining import detect


def case1() -> None:
    print("=" * 72)
    print("Case 1: brothers L1/L2 behind a producer kept at a loss (Fig. 1)")
    sources = case1_source_graphs()
    tpiin = fuse(
        sources.interdependence,
        sources.influence,
        sources.investment,
        sources.trading,
    ).tpiin
    result = detect(tpiin)
    for group in result.groups:
        print("  group:", group.render())

    # ITE-phase: the TAO applied the transaction net margin method.
    profile = IndustryProfile(industry="biochem", net_margin_range=(0.04, 0.12))
    judgment = transactional_net_margin(
        revenue=310.0e6, costs=315.0e6, profile=profile, company_id="C3"
    )
    print(f"  TNMM: violated={judgment.violated}; {judgment.rationale}")
    print(
        f"  taxable-income adjustment: {judgment.adjustment / 1e6:.2f}M RMB "
        f"(the real case adjusted 25.52M RMB)"
    )


def case2() -> None:
    print("=" * 72)
    print("Case 2: common investor C4 behind an under-priced export (Fig. 2a)")
    tpiin = case2_tpiin()
    result = detect(tpiin)
    for group in result.groups:
        print("  group:", group.render())

    # ITE-phase: comparable uncontrolled price — $20 vs the $30 offered
    # to unrelated domestic buyers.
    profile = IndustryProfile(industry="meters", unit_cost=20.0, standard_markup=0.5)
    meters = Transaction(
        transaction_id="case2",
        seller="C5",
        buyer="C6",
        industry="meters",
        quantity=5000.0,
        unit_price=20.0,
        unit_cost=20.0,
    )
    judgment = comparable_uncontrolled_price(meters, profile)
    print(f"  CUP: violated={judgment.violated}; {judgment.rationale}")
    print(
        f"  adjustment: ${judgment.adjustment:,.0f} of income "
        f"(tax at {100 * ENTERPRISE_INCOME_TAX_RATE:.0f}%: "
        f"${judgment.adjustment * ENTERPRISE_INCOME_TAX_RATE:,.0f})"
    )


def case3() -> None:
    print("=" * 72)
    print("Case 3: act-together investors B3/B4/B5 behind a BMX export (Fig. 2b)")
    tpiin = case3_tpiin()
    result = detect(tpiin)
    for group in result.groups:
        print("  group:", group.render())

    # ITE-phase: cost plus — 90M RMB booked on 100M of cost+expense
    # against the usual 9% profit rate for this product line.
    profile = IndustryProfile(
        industry="bmx", unit_cost=100.0, standard_markup=0.09, markup_tolerance=0.0
    )
    bmx = Transaction(
        transaction_id="case3",
        seller="C7",
        buyer="C8",
        industry="bmx",
        quantity=1.0e6,
        unit_price=90.0,
        unit_cost=100.0,
    )
    judgment = cost_plus(bmx, profile)
    print(f"  cost plus: violated={judgment.violated}; {judgment.rationale}")
    print(
        f"  taxable adjustment: {judgment.adjustment / 1e6:.2f}M RMB "
        f"(the real case adjusted 19.89M RMB)"
    )


def main() -> None:
    case1()
    case2()
    case3()
    print("=" * 72)


if __name__ == "__main__":
    main()
