#!/usr/bin/env python3
"""The paper's worked example, Figs. 7-10, end to end.

Starts from the un-contracted network of Fig. 7 (kin legal persons
L6/LB, interlocked directors B5/B6), fuses it into the TPIIN of Fig. 8,
builds the patterns tree of Fig. 9, prints the 15-entry component
pattern base of Fig. 10 and mines the paper's three suspicious groups.

Run:  python examples/worked_example.py
"""

from repro.datagen.cases import fig7_source_graphs
from repro.fusion import fuse
from repro.mining import build_patterns_tree, detect


def main() -> None:
    sources = fig7_source_graphs()
    print("Fig. 7 source networks:")
    print(f"  G1 interdependence: {sources.interdependence.number_of_links} links "
          f"(kinship L6-LB, interlocking B5-B6)")
    print(f"  G2 influence:       {sources.influence.number_of_influences} arcs")
    print(f"  GI investment:      {sources.investment.number_of_arcs} arcs")
    print(f"  G4 trading:         {sources.trading.number_of_arcs} arcs")
    print()

    fusion = fuse(
        sources.interdependence,
        sources.influence,
        sources.investment,
        sources.trading,
    )
    print("Fusion stages (Fig. 5):")
    print(fusion.stage_report())
    print()

    tpiin = fusion.tpiin
    l1 = tpiin.node_map["L6"]
    b2 = tpiin.node_map["B5"]
    print(f"Person syndicates: {l1} (the paper's L1), {b2} (the paper's B2)")
    print()

    tree = build_patterns_tree(tpiin.graph)
    print("Patterns tree (Fig. 9):")
    print(tree.render_tree())
    print()
    print("Component pattern base (Fig. 10):")
    print(tree.render_base())
    print()

    result = detect(tpiin)
    print("Suspicious groups:")
    for group in result.groups:
        print(" ", group.render())
    print()
    print(result.summary())


if __name__ == "__main__":
    main()
