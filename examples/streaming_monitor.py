#!/usr/bin/env python3
"""Streaming IAT monitoring over an arriving trading-record feed.

The NTICS motivation of the paper: a billion tax-related records a year
with ten-million-record daily peaks.  Because suspicious groups contain
exactly one trading arc, detection is arc-decomposable — so an online
monitor can score each incoming trading relationship the moment it is
filed, against a pre-indexed antecedent network.

This example fuses the antecedent network of a synthetic province once,
then streams randomly sampled trading relationships through the
:class:`~repro.mining.incremental.IncrementalDetector`, printing alerts
with proof chains for the suspicious ones and a retraction when a
filing is corrected.

Run:  python examples/streaming_monitor.py [--days 5] [--per-day 400]
"""

import argparse
import sys
import time

from repro.datagen import ProvinceConfig, TradingConfig, generate_province
from repro.datagen.trading import random_trading_arcs
from repro.mining import IncrementalDetector
from repro.weights import score_trading_arc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--companies", type=int, default=400)
    parser.add_argument("--days", type=int, default=5)
    parser.add_argument("--per-day", type=int, default=400)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args(argv)

    dataset = generate_province(
        ProvinceConfig.small(companies=args.companies, seed=args.seed)
    )
    base = dataset.antecedent_tpiin()
    started = time.perf_counter()
    monitor = IncrementalDetector(base)
    print(
        f"antecedent network indexed in {time.perf_counter() - started:.2f}s "
        f"({base.stats().influence_arcs} influence arcs)"
    )

    feed = random_trading_arcs(
        dataset.company_ids,
        TradingConfig(probability=0.05, seed=args.seed),
    )
    cursor = 0
    total_alerts = 0
    for day in range(1, args.days + 1):
        batch = feed[cursor : cursor + args.per_day]
        cursor += len(batch)
        started = time.perf_counter()
        alerts = []
        for seller, buyer in batch:
            update = monitor.add_trading_arc(seller, buyer)
            if update.applied and update.suspicious:
                alerts.append(update)
        elapsed = time.perf_counter() - started
        total_alerts += len(alerts)
        rate = len(batch) / elapsed if elapsed else float("inf")
        print(
            f"day {day}: {len(batch)} filings, {len(alerts)} alerts "
            f"({rate:,.0f} filings/s)"
        )
        for update in alerts[:3]:
            score = score_trading_arc(list(update.groups), base)
            print(
                f"  ALERT {update.arc[0]} -> {update.arc[1]} "
                f"suspicion={score:.3f} proof chains={update.group_count}"
            )
            print(f"    {update.groups[0].render()}")

    if total_alerts:
        # A corrected filing: retract the last suspicious arc.
        last = sorted(monitor.suspicious_arcs)[-1]
        removal = monitor.remove_trading_arc(*last)
        print(
            f"retraction: {last[0]} -> {last[1]} withdrawn "
            f"({removal.group_count} proof chains retired)"
        )

    result = monitor.result()
    print()
    print("monitor state:", result.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
