#!/usr/bin/env python3
"""The provincial-scale experiment of Section 5 (Table 1, Figs. 11-16).

Generates the synthetic provincial dataset (776 directors, 1,350 legal
persons, 2,452 companies — the paper's scale), fuses the TPIIN, sweeps
trading probabilities and prints the Table-1 rows next to the paper's
published numbers.

Run:
    python examples/provincial_audit.py              # 6-point sweep (~1 min)
    python examples/provincial_audit.py --full       # the paper's 20 points
    python examples/provincial_audit.py --export DIR # GraphML for Figs 11-16
    python examples/provincial_audit.py --investigate C00001
"""

import argparse
import sys
import time
from pathlib import Path

from repro.analysis import run_table1
from repro.analysis.investigate import investigate_company
from repro.datagen import PAPER_TRADING_PROBABILITIES, ProvinceConfig, generate_province
from repro.io.graphml import write_graphml, write_ungraph_graphml
from repro.mining import detect

REDUCED_PROBABILITIES = (0.002, 0.004, 0.01, 0.02, 0.05, 0.1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run all 20 sweep points")
    parser.add_argument("--seed", type=int, default=20170417)
    parser.add_argument("--export", type=Path, help="write GraphML figures here")
    parser.add_argument("--investigate", metavar="COMPANY", help="drill into one company")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    dataset = generate_province(ProvinceConfig(seed=args.seed))
    print(f"generated provincial dataset in {time.perf_counter() - started:.1f}s")
    for figure, caption in dataset.figure_stats().items():
        print(f"  {figure}: {caption}")
    print(
        f"  planned in-cluster pair share: "
        f"{100 * dataset.planned_suspicious_share:.2f}% (Table 1's ~5%)"
    )
    print()

    if args.export:
        args.export.mkdir(parents=True, exist_ok=True)
        base = dataset.antecedent_tpiin()
        tpiin = dataset.overlay_trading(base, 0.002)
        write_ungraph_graphml(dataset.interdependence.graph, args.export / "fig11_g1.graphml")
        write_graphml(dataset.influence.graph, args.export / "fig12_g2.graphml")
        write_graphml(dataset.investment.graph, args.export / "fig13_g3.graphml")
        write_graphml(tpiin.antecedent_graph(), args.export / "fig14_antecedent.graphml")
        write_graphml(tpiin.trading_graph(), args.export / "fig15_g4.graphml")
        write_graphml(tpiin.graph, args.export / "fig16_tpiin.graphml")
        print(f"wrote 6 GraphML files to {args.export}")
        print()

    if args.investigate:
        base = dataset.antecedent_tpiin()
        tpiin = dataset.overlay_trading(base, 0.002)
        result = detect(tpiin, engine="fast")
        briefing = investigate_company(tpiin, result, args.investigate)
        print(briefing.render())
        print()
        print("Investment tree (Fig. 17 style):")
        print(briefing.investment_tree(tpiin))
        return 0

    probabilities = PAPER_TRADING_PROBABILITIES if args.full else REDUCED_PROBABILITIES
    print(f"running Table-1 sweep over {len(probabilities)} trading probabilities ...")
    sweep = run_table1(dataset, probabilities)
    print()
    print(sweep.render())
    print()
    print("side by side with the paper:")
    print(sweep.render_with_paper())
    print()
    total = sum(sweep.seconds_per_row)
    print(f"sweep completed in {total:.1f}s "
          f"({', '.join(f'{s:.1f}s' for s in sweep.seconds_per_row)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
