#!/usr/bin/env python3
"""Ownership-weighted detection: stakes, effective control and ranking.

The paper's future work asks for edge weights computed during the TPIIN
build phase.  This example starts from fractional shareholding records
(the CSRC-style raw data behind the investment graph), computes
effective control through ownership chains, derives the "major
shareholding" investment graph at two thresholds, and ranks the mined
suspicious trades with stake-weighted proof chains.

Scenario: the Hua family pyramid —

    Hua  --80%-->  HoldCo  --60%-->  MidCo  --100%-->  OpCo
    Hua  --55%-->  TradeCo
    HoldCo --31%--> SideCo          (below the 50% default threshold)

OpCo sells to TradeCo (a classic IAT: Hua controls both sides), and
SideCo sells to TradeCo (only suspicious under a looser threshold).

Run:  python examples/ownership_control.py
"""

from repro.fusion import fuse
from repro.mining import detect
from repro.model import (
    InfluenceGraph,
    InfluenceKind,
    InterdependenceGraph,
    TradingGraph,
)
from repro.weights import (
    ShareholdingRegister,
    derive_investment_graph,
    effective_control,
    rank_trading_arcs,
    stake_arc_weights,
)


def build_register() -> ShareholdingRegister:
    register = ShareholdingRegister()
    register.add_stake("Hua", "HoldCo", 0.80)
    register.add_stake("HoldCo", "MidCo", 0.60)
    register.add_stake("MidCo", "OpCo", 1.00)
    register.add_stake("Hua", "TradeCo", 0.55)
    register.add_stake("HoldCo", "SideCo", 0.31)
    return register


def influence_for(companies) -> InfluenceGraph:
    g2 = InfluenceGraph()
    for i, company in enumerate(companies):
        g2.add_influence(
            f"LP{i}", company, InfluenceKind.CEO_OF, legal_person=True
        )
    g2.add_influence("Hua", "HoldCo", InfluenceKind.CB_OF)
    g2.add_influence("Hua", "TradeCo", InfluenceKind.CB_OF)
    return g2


def main() -> None:
    register = build_register()
    print("Effective control (through all ownership chains):")
    control = effective_control(register)
    for (owner, company), fraction in sorted(control.items()):
        if owner == "Hua":
            print(f"  Hua -> {company:8s} {100 * fraction:5.1f}%")
    print()

    companies = ["HoldCo", "MidCo", "OpCo", "TradeCo", "SideCo"]
    trading = TradingGraph()
    trading.add_trade("OpCo", "TradeCo")
    trading.add_trade("SideCo", "TradeCo")

    for threshold in (0.5, 0.3):
        gi = derive_investment_graph(register, threshold=threshold)
        tpiin = fuse(
            InterdependenceGraph(), influence_for(companies), gi, trading
        ).tpiin
        result = detect(tpiin)
        print(
            f"threshold {int(100 * threshold)}%: "
            f"{gi.number_of_arcs} investment arcs, "
            f"suspicious trades: {sorted(result.suspicious_trading_arcs)}"
        )
        ranked = rank_trading_arcs(
            result, tpiin, arc_weights=stake_arc_weights(register)
        )
        for score, (seller, buyer) in ranked:
            print(f"  {seller} -> {buyer}  stake-weighted suspicion {score:.3f}")
        print()


if __name__ == "__main__":
    main()
