#!/usr/bin/env python3
"""The detection daemon end to end: boot, stream, kill, recover.

Drives the `repro-tpiin serve` daemon the way an operator would — as a
real child process over its JSON HTTP API — and asserts the durability
contract at every step:

1. generate a small provincial TPIIN and boot the daemon on it;
2. stream adds/removes through the Python client, reading verdicts and
   `/metrics` (path-cache hits prove the antecedent indexes stay warm);
3. SIGTERM the daemon and check it drains with exit code 0;
4. restart on the same state dir and check `/result` is unchanged;
5. SIGKILL it mid-stream — no drain, no goodbye — restart, and check
   the write-ahead log replays to exactly the acknowledged state.

CI runs this script; it exits non-zero on any violated expectation.

Run:  python examples/serve_demo.py [--companies 120] [--seed 7]
"""

import argparse
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.datagen import ProvinceConfig, generate_province
from repro.io.edge_list_io import write_tpiin_csv
from repro.mining.detector import detect
from repro.service import ServiceClient


def boot_daemon(arcs: Path, nodes: Path, state_dir: Path) -> tuple[subprocess.Popen, ServiceClient]:
    """Start `repro-tpiin serve` on an OS-assigned port; return proc + client."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            str(arcs),
            str(nodes),
            "--port",
            "0",
            "--state-dir",
            str(state_dir),
            "--snapshot-every",
            "8",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = process.stdout.readline()  # "serving on http://host:port (...)"
    if "serving on " not in banner:
        process.kill()
        raise SystemExit(f"daemon failed to boot: {banner!r}")
    url = banner.split("serving on ", 1)[1].split()[0]
    client = ServiceClient(url)
    client.wait_until_healthy()
    return process, client


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAILED"
    print(f"  [{status}] {label}")
    if not condition:
        raise SystemExit(f"expectation violated: {label}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--companies", type=int, default=120)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--probability", type=float, default=0.01)
    args = parser.parse_args(argv)

    dataset = generate_province(
        ProvinceConfig.small(companies=args.companies, seed=args.seed)
    )
    base = dataset.antecedent_tpiin()
    tpiin = dataset.overlay_trading(base, args.probability)
    batch = detect(tpiin, engine="fast")
    print(
        f"dataset: {batch.total_trading_arcs} trading arcs, "
        f"{batch.group_count} suspicious groups in batch"
    )

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        arcs, nodes = workdir / "net.arcs.csv", workdir / "net.nodes.csv"
        write_tpiin_csv(tpiin, arcs, nodes)
        state_dir = workdir / "state"

        print("boot #1: fresh state")
        process, client = boot_daemon(arcs, nodes, state_dir)
        result = client.result()
        check(len(result["groups"]) == batch.group_count, "daemon result == batch result")

        sus_seller, sus_buyer = result["suspicious_trading_arcs"][0]
        verdict = client.remove_arc(sus_seller, sus_buyer)
        check(verdict["applied"], f"removed suspicious arc {sus_seller}->{sus_buyer}")
        verdict = client.add_arc(sus_seller, sus_buyer)
        check(verdict["suspicious"], "re-added arc is flagged again, with proof chains")
        metrics = client.metrics()
        check(metrics["path_cache"]["hits"] >= 1, "path cache reports hits on rework")
        check(client.arc(sus_seller, sus_buyer)["present"], "GET /arcs sees the arc")
        pre_restart = client.result()

        print("drain: SIGTERM")
        process.send_signal(signal.SIGTERM)
        check(process.wait(timeout=30) == 0, "daemon drained with exit code 0")

        print("boot #2: recover from state dir")
        process, client = boot_daemon(arcs, nodes, state_dir)
        health = client.healthz()
        print(f"  recovery: {health}")
        recovered = client.result()
        check(
            sorted(map(str, recovered["groups"])) == sorted(map(str, pre_restart["groups"])),
            "recovered /result identical to pre-restart /result",
        )

        print("stream more, then crash: SIGKILL")
        clean = [
            [s, b]
            for s, b in (tuple(a) for a in pre_restart["suspicious_trading_arcs"][:3])
        ]
        for seller, buyer in clean:
            client.remove_arc(seller, buyer)
        acknowledged = client.result()
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
        check(process.returncode != 0, "SIGKILL was not a clean exit (by design)")

        print("boot #3: replay the WAL")
        process, client = boot_daemon(arcs, nodes, state_dir)
        replayed = client.result()
        check(
            sorted(map(str, replayed["groups"])) == sorted(map(str, acknowledged["groups"])),
            "post-crash /result equals the last acknowledged state",
        )
        check(
            replayed["total_trading_arcs"] == acknowledged["total_trading_arcs"],
            "arc count survived the crash",
        )

        process.send_signal(signal.SIGTERM)
        check(process.wait(timeout=30) == 0, "final drain exits 0")

    print("all expectations held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
