#!/usr/bin/env python3
"""Temporal IAT analysis over filing periods.

Trading relationships come from periodic filings with validity windows;
this example slides a detection window across three years of monthly
periods, tracks the tax-index trend (suspicious share, alert churn) and
prints the Fig.-17-style tendency chart.

Run:  python examples/filing_periods.py [--months 36]
"""

import argparse
import sys

from repro.analysis.trends import render_trend, suspicion_trend
from repro.datagen import ProvinceConfig, TradingConfig, generate_province
from repro.datagen.rng import derive_rng
from repro.datagen.trading import random_trading_arcs
from repro.fusion.tpiin import TPIIN
from repro.mining import TimedTrade, sliding_window_detect


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--companies", type=int, default=300)
    parser.add_argument("--months", type=int, default=36)
    parser.add_argument("--window", type=int, default=6, help="window width, months")
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)

    dataset = generate_province(
        ProvinceConfig.small(companies=args.companies, seed=args.seed)
    )
    base = dataset.antecedent_tpiin()
    antecedent = TPIIN(
        graph=base.antecedent_graph(),
        node_map=dict(base.node_map),
        scs_subgraphs=dict(base.scs_subgraphs),
    )

    # Filings: each sampled relationship is in force for 3-18 months,
    # starting at a random month.
    rng = derive_rng(args.seed, "filing-periods")
    pool = random_trading_arcs(
        dataset.company_ids, TradingConfig(probability=0.04, seed=args.seed)
    )
    trades = []
    for seller, buyer in pool:
        start = int(rng.integers(0, args.months))
        duration = int(rng.integers(3, 19))
        trades.append(TimedTrade(seller, buyer, start, start + duration))
    print(
        f"{len(trades)} filings over {args.months} months "
        f"({args.window}-month tumbling windows)"
    )

    windows = list(
        sliding_window_detect(
            antecedent, trades, window=args.window, start=0, end=args.months
        )
    )
    print()
    print(render_trend(suspicion_trend(windows)))

    # Spotlight: the window with the highest alert influx.
    busiest = max(windows, key=lambda w: len(w.new_suspicious))
    print()
    print(
        f"busiest window [{busiest.window_start}, {busiest.window_end}): "
        f"{len(busiest.new_suspicious)} new alerts, e.g. "
        + ", ".join(f"{s}->{b}" for s, b in sorted(busiest.new_suspicious)[:4])
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
