#!/usr/bin/env python3
"""The full two-phase audit (Fig. 4's flow) on a synthetic province.

Phase 1 (MSG): mine suspicious groups from the TPIIN.
Phase 2 (ITE): simulate a transaction book, apply the arm's-length
methods only to transactions behind suspicious trading relationships,
and report precision/recall against the planted evasion plus the
workload saved versus one-by-one auditing.  Finally, rank the flagged
trades by the future-work suspicion scores and print an investigation
briefing for the top seller.

Run:  python examples/two_phase_audit.py [--companies 300] [--seed 7]
"""

import argparse
import sys

from repro.analysis.investigate import investigate_company
from repro.datagen import ProvinceConfig, generate_province
from repro.ite import SimulationConfig, run_two_phase, simulate_transactions
from repro.mining import detect
from repro.weights import rank_trading_arcs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--companies", type=int, default=300)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--probability", type=float, default=0.01)
    args = parser.parse_args(argv)

    dataset = generate_province(
        ProvinceConfig.small(companies=args.companies, seed=args.seed)
    )
    base = dataset.antecedent_tpiin()
    tpiin = dataset.overlay_trading(base, args.probability)

    print("Phase 1 — MSG: mining suspicious groups")
    detection = detect(tpiin, engine="fast")
    print(" ", detection.summary())
    print()

    print("Phase 2 — ITE: arm's-length judgment on suspicious trades")
    industry_of = {
        c.company_id: c.industry for c in dataset.registry.companies.values()
    }
    book = simulate_transactions(
        list(tpiin.trading_arcs()),
        detection.suspicious_trading_arcs,
        industry_of,
        config=SimulationConfig(seed=args.seed),
    )
    outcome = run_two_phase(tpiin, book, msg_result=detection)
    print(" ", outcome.summary())
    print(
        f"  one-by-one auditing would examine all {len(book)} transactions; "
        f"the two-phase flow examined {outcome.transactions_examined} "
        f"({100 * outcome.workload_share:.2f}%)"
    )
    print()

    print("Ranked suspicious trading relationships (top 5):")
    ranked = rank_trading_arcs(detection, tpiin)
    for score, (seller, buyer) in ranked[:5]:
        print(f"  {seller} -> {buyer}   suspicion={score:.3f}")
    print()

    if ranked:
        _score, (seller, _buyer) = ranked[0]
        print("Investigation briefing for the top-ranked seller:")
        briefing = investigate_company(tpiin, detection, seller)
        print(briefing.render(max_rows=5))
    return 0


if __name__ == "__main__":
    sys.exit(main())
