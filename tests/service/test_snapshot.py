"""Snapshot atomicity and validation."""

import json

import pytest

from repro.errors import SerializationError
from repro.service.snapshot import Snapshot, read_snapshot, write_snapshot


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "snapshot.json"
        snapshot = Snapshot(last_seq=7, arcs=(("a", "b"), ("c", "d")))
        write_snapshot(path, snapshot)
        loaded = read_snapshot(path)
        assert loaded == snapshot
        assert loaded.arc_count == 2

    def test_missing_reads_none(self, tmp_path):
        assert read_snapshot(tmp_path / "absent.json") is None

    def test_empty_arc_set(self, tmp_path):
        path = tmp_path / "snapshot.json"
        write_snapshot(path, Snapshot(last_seq=0, arcs=()))
        assert read_snapshot(path) == Snapshot(last_seq=0, arcs=())

    def test_overwrite_is_atomic(self, tmp_path):
        path = tmp_path / "snapshot.json"
        write_snapshot(path, Snapshot(last_seq=1, arcs=(("a", "b"),)))
        write_snapshot(path, Snapshot(last_seq=2, arcs=(("c", "d"),)))
        assert read_snapshot(path).last_seq == 2
        assert not path.with_suffix(".json.tmp").exists()


class TestValidation:
    def test_garbage_raises(self, tmp_path):
        path = tmp_path / "snapshot.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError, match="not a valid snapshot"):
            read_snapshot(path)

    @pytest.mark.parametrize(
        "payload",
        [
            [],  # not an object
            {"format": 99, "last_seq": 0, "arcs": []},
            {"format": 1, "last_seq": -1, "arcs": []},
            {"format": 1, "last_seq": True, "arcs": []},
            {"format": 1, "last_seq": 0, "arcs": {}},
            {"format": 1, "last_seq": 0, "arcs": [["a"]]},
            {"format": 1, "last_seq": 0, "arcs": [["a", 3]]},
        ],
    )
    def test_malformed_payload_raises(self, tmp_path, payload):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError):
            read_snapshot(path)
