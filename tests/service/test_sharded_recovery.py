"""Property: sharded crash + replay always lands on the batch result.

The sharded service journals every applied mutation to the WAL of the
shard that executed it, stamped with a *global* sequence number.  The
durability contract: after any crash (including bytes torn off any
shard's WAL tail, and including a crash between a migration's
destination sync and source sync), recovery must reconstruct exactly
the graph described by per-shard replay of the surviving records —
snapshot arcs plus intact WAL records above the shard's snapshot
floor, applied in global-sequence order, with cross-shard migration
duplicates collapsing in the union.

That target is itself checked against a batch ``detect(engine="fast")``
over the surviving arc union, so the property pins both layers: the
recovery plumbing and the detection result it feeds.

The dataset is a forest of disjoint Fig. 6-style components (Fig. 8
itself is a single weak component, which would pin every mutation to
one shard and leave the other WALs empty); cross-copy adds force real
cross-shard merges, so chopping any shard's WAL is meaningful.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion.tpiin import TPIIN
from repro.mining.detector import detect
from repro.model.colors import EColor
from repro.service.config import ServiceConfig
from repro.service.sharding import ShardedDetectionService
from repro.service.snapshot import read_snapshot
from repro.service.wal import OP_ADD, OP_REMOVE, WriteAheadLog, read_wal

COPIES = 5


def _forest_tpiin() -> TPIIN:
    """``COPIES`` disjoint components: P{i} -> A{i}/D{i}, A{i} -> B{i}.

    No baseline trading arcs, so the durability spec below needs no
    baseline-share placement logic.
    """
    persons, companies, influence = [], [], []
    for i in range(COPIES):
        persons.append(f"P{i}")
        companies += [f"A{i}", f"B{i}", f"D{i}"]
        influence += [(f"P{i}", f"A{i}"), (f"P{i}", f"D{i}"), (f"A{i}", f"B{i}")]
    return TPIIN.build(
        persons=persons, companies=companies, influence=influence, trading=[]
    )


FOREST = _forest_tpiin()
COMPANIES = sorted(
    node for node in FOREST.graph.nodes() if not node.startswith("P")
)
PAIRS = [(s, b) for s in COMPANIES for b in COMPANIES if s != b]

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from([OP_ADD, OP_REMOVE]), st.integers(0, len(PAIRS) - 1)
    ),
    max_size=25,
)


def batch_over(arcs):
    """Batch fast-engine detect over the forest's antecedents + ``arcs``."""
    graph = FOREST.antecedent_graph()
    for seller, buyer in arcs:
        graph.add_arc(seller, buyer, EColor.TRADING)
    return detect(TPIIN(graph=graph), engine="fast")


def surviving_arcs(config):
    """The arc union the sharded durability contract promises.

    Independent of the recovery implementation: per-shard state =
    snapshot arcs above nothing, plus the shard's intact WAL records
    above its snapshot floor, replayed across shards in global-sequence
    order; the surviving set is the union over shards.
    """
    n = config.shards
    shard_arcs: list[set] = []
    floors = []
    for i in range(n):
        snapshot = read_snapshot(config.shard_snapshot_path(i))
        shard_arcs.append(set(snapshot.arcs) if snapshot is not None else set())
        floors.append(snapshot.last_seq if snapshot is not None else 0)
    merged = sorted(
        (
            (record, i)
            for i in range(n)
            for record in read_wal(config.shard_wal_path(i)).records
            if record.seq > floors[i]
        ),
        key=lambda pair: pair[0].seq,
    )
    for record, i in merged:
        if record.op == OP_ADD:
            shard_arcs[i].add((record.seller, record.buyer))
        else:
            shard_arcs[i].discard((record.seller, record.buyer))
    return set().union(*shard_arcs)


@settings(deadline=None, max_examples=30)
@given(
    ops=ops_strategy,
    shards=st.integers(min_value=2, max_value=4),
    snapshot_every=st.integers(min_value=1, max_value=8),
    chop=st.integers(min_value=0, max_value=80),
    chop_shard=st.integers(min_value=0, max_value=3),
)
def test_chop_and_replay_equals_batch(ops, shards, snapshot_every, chop, chop_shard):
    # tmp dir managed inside the body: hypothesis re-runs the function
    # many times per test item, so function-scoped fixtures are unsafe.
    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            state_dir=Path(tmp),
            shards=shards,
            snapshot_every=snapshot_every,
            fsync=False,  # tmpfs durability is irrelevant to the property
        )
        service = ShardedDetectionService.open(FOREST, config)
        for op, index in ops:
            seller, buyer = PAIRS[index]
            if op == OP_ADD:
                service.add_arc(seller, buyer)
            else:
                service.remove_arc(seller, buyer)
        # Crash: release the handles without orderly shutdown work,
        # then tear bytes off one shard's WAL tail.
        service.close()
        wal_path = config.shard_wal_path(chop_shard % shards)
        if chop and wal_path.exists():
            raw = wal_path.read_bytes()
            wal_path.write_bytes(raw[: max(0, len(raw) - chop)])

        expected_arcs = surviving_arcs(config)
        recovered = ShardedDetectionService.open(FOREST, config)
        try:
            result = recovered.result()
            batch = batch_over(sorted(expected_arcs))
            assert recovered.arc_count() == len(expected_arcs)
            assert {g.key() for g in result.groups} == {
                g.key() for g in batch.groups
            }
            assert (
                result.suspicious_trading_arcs == batch.suspicious_trading_arcs
            )
        finally:
            recovered.close()


@settings(deadline=None, max_examples=12)
@given(
    ops=ops_strategy,
    shards=st.integers(min_value=2, max_value=4),
    snapshot_every=st.integers(min_value=1, max_value=4),
)
def test_double_restart_is_stable(ops, shards, snapshot_every):
    """Recovering twice (no new damage) must be a fixed point."""
    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            state_dir=Path(tmp),
            shards=shards,
            snapshot_every=snapshot_every,
            fsync=False,
        )
        service = ShardedDetectionService.open(FOREST, config)
        for op, index in ops:
            seller, buyer = PAIRS[index]
            if op == OP_ADD:
                service.add_arc(seller, buyer)
            else:
                service.remove_arc(seller, buyer)
        first = service.result()
        count = service.arc_count()
        service.close()
        for _ in range(2):
            recovered = ShardedDetectionService.open(FOREST, config)
            try:
                again = recovered.result()
                assert recovered.arc_count() == count
                assert {g.key() for g in again.groups} == {
                    g.key() for g in first.groups
                }
            finally:
                recovered.close()


def test_mid_merge_crash_duplicate_is_healed(tmp_path):
    """A crash between destination sync and source sync duplicates the
    migrating arc across two WALs; recovery must keep exactly one copy
    AND log a durable remove so a later user remove cannot resurrect
    the stale duplicate on the restart after next."""
    config = ServiceConfig(state_dir=tmp_path, shards=2, fsync=False)
    # Forge the crash state by hand: shard 0 added the arc (seq 1) and
    # a migration re-added it on shard 1 (seq 2), but the crash hit
    # before shard 0 logged its removal.
    config.ensure_state_dir()
    wal0, _ = WriteAheadLog.open(config.shard_wal_path(0), fsync=False)
    wal0.append(OP_ADD, "B0", "D1", seq=1)
    wal0.close()
    wal1, _ = WriteAheadLog.open(config.shard_wal_path(1), fsync=False)
    wal1.append(OP_ADD, "B0", "D1", seq=2)
    wal1.close()

    recovered = ShardedDetectionService.open(FOREST, config)
    try:
        assert recovered.arc_status("B0", "D1").present
        assert recovered.arc_count() == 1
        # The user retracts the arc; it must stay gone across restarts.
        assert recovered.remove_arc("B0", "D1").applied
    finally:
        recovered.close()

    for _ in range(2):
        again = ShardedDetectionService.open(FOREST, config)
        try:
            assert not again.arc_status("B0", "D1").present
            assert again.arc_count() == 0
        finally:
            again.close()
