"""WAL durability semantics: roundtrip, torn tails, corruption, healing."""

import json

import pytest

from repro.errors import WALError
from repro.service.wal import OP_ADD, OP_REMOVE, WALRecord, WriteAheadLog, read_wal


def write_records(path, n=3):
    wal, replay = WriteAheadLog.open(path)
    assert replay.records == ()
    with wal:
        for i in range(n):
            wal.append(OP_ADD, f"S{i}", f"B{i}")
    return wal


class TestRoundtrip:
    def test_append_then_read(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_records(path, 3)
        replay = read_wal(path)
        assert not replay.torn_tail
        assert [r.seq for r in replay.records] == [1, 2, 3]
        assert replay.records[0] == WALRecord(seq=1, op=OP_ADD, seller="S0", buyer="B0")
        assert replay.last_seq == 3

    def test_missing_file_reads_empty(self, tmp_path):
        replay = read_wal(tmp_path / "absent.jsonl")
        assert replay.records == () and not replay.torn_tail
        assert replay.last_seq == 0

    def test_empty_file_reads_empty(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b"")
        assert read_wal(path).records == ()

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_records(path, 2)
        wal, replay = WriteAheadLog.open(path)
        assert replay.last_seq == 2
        with wal:
            record = wal.append(OP_REMOVE, "S0", "B0")
        assert record.seq == 3
        assert [r.seq for r in read_wal(path).records] == [1, 2, 3]

    def test_mixed_ops_preserved(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal, _ = WriteAheadLog.open(path)
        with wal:
            wal.append(OP_ADD, "a", "b")
            wal.append(OP_REMOVE, "a", "b")
        ops = [r.op for r in read_wal(path).records]
        assert ops == [OP_ADD, OP_REMOVE]


class TestTornTail:
    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_records(path, 3)
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # chop into the final record
        replay = read_wal(path)
        assert replay.torn_tail
        assert [r.seq for r in replay.records] == [1, 2]

    def test_complete_record_missing_newline_is_kept(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_records(path, 2)
        raw = path.read_bytes()
        path.write_bytes(raw[:-1])  # only the trailing newline lost
        replay = read_wal(path)
        assert replay.torn_tail  # file still needs healing
        assert [r.seq for r in replay.records] == [1, 2]

    def test_open_heals_torn_file(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_records(path, 3)
        path.write_bytes(path.read_bytes()[:-7])
        wal, replay = WriteAheadLog.open(path)
        assert replay.torn_tail and replay.last_seq == 2
        with wal:
            wal.append(OP_ADD, "X", "Y")
        healed = read_wal(path)
        assert not healed.torn_tail
        assert [r.seq for r in healed.records] == [1, 2, 3]

    def test_garbage_tail_is_dropped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_records(path, 1)
        with path.open("ab") as handle:
            handle.write(b'{"seq": 2, "op"')
        replay = read_wal(path)
        assert replay.torn_tail
        assert [r.seq for r in replay.records] == [1]


class TestCorruption:
    def test_interior_garbage_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        write_records(path, 2)
        lines = path.read_bytes().splitlines()
        lines[0] = b"not json at all"
        path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(WALError, match="not valid JSON"):
            read_wal(path)

    def test_non_increasing_seq_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        records = [
            WALRecord(seq=1, op=OP_ADD, seller="a", buyer="b"),
            WALRecord(seq=1, op=OP_ADD, seller="c", buyer="d"),
        ]
        path.write_text("".join(r.to_json() + "\n" for r in records))
        with pytest.raises(WALError, match="does not increase"):
            read_wal(path)

    @pytest.mark.parametrize(
        "payload",
        [
            {"op": "add", "seller": "a", "buyer": "b"},  # no seq
            {"seq": 0, "op": "add", "seller": "a", "buyer": "b"},
            {"seq": True, "op": "add", "seller": "a", "buyer": "b"},
            {"seq": 1, "op": "merge", "seller": "a", "buyer": "b"},
            {"seq": 1, "op": "add", "seller": 3, "buyer": "b"},
        ],
    )
    def test_malformed_interior_record_raises(self, tmp_path, payload):
        path = tmp_path / "wal.jsonl"
        path.write_text(json.dumps(payload) + "\n" + json.dumps(payload) + "\n")
        with pytest.raises(WALError):
            read_wal(path)

    def test_append_rejects_unknown_op(self, tmp_path):
        wal, _ = WriteAheadLog.open(tmp_path / "wal.jsonl")
        with wal, pytest.raises(WALError, match="unknown WAL operation"):
            wal.append("merge", "a", "b")


class TestTruncate:
    def test_truncate_empties_but_keeps_counting(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = write_records(path, 3)
        wal.truncate()
        assert read_wal(path).records == ()
        with wal:
            record = wal.append(OP_ADD, "S9", "B9")
        assert record.seq == 4  # seq survives compaction
        assert [r.seq for r in read_wal(path).records] == [4]
