"""Property: crash + replay always lands on the batch result.

For any interleaving of adds/removes, any compaction cadence, and any
amount of bytes torn off the WAL tail by the crash, recovery must yield
a DetectionResult identical (up to group ordering) to a batch
batch ``detect(engine="fast")`` over the surviving arc set — where "surviving" is
defined by the durability contract: snapshot arcs (or the TPIIN
baseline) plus the WAL records that remain intact after the tear.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.cases import fig8_tpiin
from repro.fusion.tpiin import TPIIN
from repro.mining.detector import detect
from repro.model.colors import EColor, VColor
from repro.service.config import ServiceConfig
from repro.service.snapshot import read_snapshot
from repro.service.state import DetectionService
from repro.service.wal import OP_ADD, read_wal

FIG8 = fig8_tpiin()
COMPANIES = sorted(
    node
    for node in FIG8.graph.nodes()
    if FIG8.graph.node_color(node) == VColor.COMPANY
)
PAIRS = [(s, b) for s in COMPANIES for b in COMPANIES if s != b]

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from([OP_ADD, "remove"]), st.integers(0, len(PAIRS) - 1)
    ),
    max_size=25,
)


def batch_over(arcs):
    """Batch fast-engine detect over Fig. 8's antecedent network + ``arcs``."""
    graph = FIG8.antecedent_graph()
    for seller, buyer in arcs:
        graph.add_arc(seller, buyer, EColor.TRADING)
    return detect(TPIIN(graph=graph), engine="fast")


def surviving_arcs(config):
    """The arc set the durability contract promises after the crash."""
    snapshot = read_snapshot(config.snapshot_path)
    if snapshot is not None:
        arcs = set(snapshot.arcs)
        floor = snapshot.last_seq
    else:
        arcs = set(FIG8.trading_arcs()) | set(FIG8.intra_scs_trades)
        floor = 0
    for record in read_wal(config.wal_path).records:
        if record.seq <= floor:
            continue
        if record.op == OP_ADD:
            arcs.add((record.seller, record.buyer))
        else:
            arcs.discard((record.seller, record.buyer))
    return arcs


@settings(deadline=None, max_examples=40)
@given(
    ops=ops_strategy,
    snapshot_every=st.integers(min_value=1, max_value=8),
    chop=st.integers(min_value=0, max_value=80),
)
def test_crash_replay_equals_batch(ops, snapshot_every, chop):
    # tmp dir managed inside the body: hypothesis re-runs the function
    # many times per test item, so function-scoped fixtures are unsafe.
    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            state_dir=Path(tmp),
            snapshot_every=snapshot_every,
            fsync=False,  # tmpfs durability is irrelevant to the property
        )
        service = DetectionService.open(FIG8, config)
        for op, index in ops:
            seller, buyer = PAIRS[index]
            if op == OP_ADD:
                service.add_arc(seller, buyer)
            else:
                service.remove_arc(seller, buyer)
        # Crash: release the file handle without any orderly shutdown
        # work, then tear bytes off the WAL tail.
        service.close()
        if chop and config.wal_path.exists():
            raw = config.wal_path.read_bytes()
            config.wal_path.write_bytes(raw[: max(0, len(raw) - chop)])

        expected_arcs = surviving_arcs(config)
        recovered = DetectionService.open(FIG8, config)
        try:
            result = recovered.result()
            batch = batch_over(sorted(expected_arcs))
            assert recovered.arc_count() == len(expected_arcs)
            assert {g.key() for g in result.groups} == {
                g.key() for g in batch.groups
            }
            assert (
                result.suspicious_trading_arcs == batch.suspicious_trading_arcs
            )
        finally:
            recovered.close()


@settings(deadline=None, max_examples=15)
@given(ops=ops_strategy, snapshot_every=st.integers(min_value=1, max_value=4))
def test_double_restart_is_stable(ops, snapshot_every):
    """Recovering twice (no new damage) must be a fixed point."""
    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            state_dir=Path(tmp), snapshot_every=snapshot_every, fsync=False
        )
        service = DetectionService.open(FIG8, config)
        for op, index in ops:
            seller, buyer = PAIRS[index]
            if op == OP_ADD:
                service.add_arc(seller, buyer)
            else:
                service.remove_arc(seller, buyer)
        first = service.result()
        service.close()
        for _ in range(2):
            recovered = DetectionService.open(FIG8, config)
            try:
                again = recovered.result()
                assert {g.key() for g in again.groups} == {
                    g.key() for g in first.groups
                }
            finally:
                recovered.close()
