"""In-process HTTP round-trips: server routing + client error mapping."""

import threading
import urllib.error
import urllib.request

import pytest

from repro import Engine, detect
from repro.errors import ServiceClientError
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.server import DetectionHTTPServer
from repro.service.state import DetectionService


@pytest.fixture()
def served_fig8(fig8, tmp_path):
    """A live daemon over Fig. 8 on an ephemeral port, plus its client."""
    config = ServiceConfig(state_dir=tmp_path / "state", port=0)
    service = DetectionService.open(fig8, config)
    server = DetectionHTTPServer((config.host, config.port), service)
    thread = threading.Thread(target=server.serve_forever, name="test-daemon")
    thread.start()
    port = server.server_address[1]
    client = ServiceClient(f"http://127.0.0.1:{port}")
    try:
        yield client, service
    finally:
        server.shutdown()
        thread.join()
        server.server_close()
        service.close()


class TestQueries:
    def test_healthz(self, served_fig8):
        client, _ = served_fig8
        health = client.wait_until_healthy()
        assert health["status"] == "ok"
        assert health["arcs"] == 5

    def test_result_matches_batch(self, served_fig8, fig8):
        client, _ = served_fig8
        batch = detect(fig8, engine=Engine.FAST)
        result = client.result()
        assert result["engine"] == "incremental"
        assert len(result["groups"]) == len(batch.groups)
        assert result["suspicious_trading_arcs"] == sorted(
            [str(a), str(b)] for a, b in batch.suspicious_trading_arcs
        )

    def test_get_arc(self, served_fig8):
        client, _ = served_fig8
        payload = client.arc("C3", "C5")
        assert payload["present"] and payload["suspicious"]
        assert payload["groups"][0]["trading_trail"] == ["L1", "C1", "C3", "C5"]
        absent = client.arc("C1", "C2")
        assert not absent["present"]

    def test_investigate(self, served_fig8):
        client, _ = served_fig8
        payload = client.investigate("C5")
        assert payload["company"] == "C5"
        assert payload["group_count"] >= 1

    def test_metrics_counts_requests(self, served_fig8):
        client, _ = served_fig8
        client.healthz()
        client.result()
        metrics = client.metrics()
        assert metrics["requests"]["healthz"] >= 1
        assert metrics["requests"]["result"] >= 1
        assert metrics["latency_ms"]["result"]["count"] >= 1
        assert metrics["arcs_tracked"] == 5

    def test_metrics_reports_cache_hits_on_rework(self, served_fig8):
        client, _ = served_fig8
        client.remove_arc("C3", "C5")
        client.add_arc("C3", "C5")
        metrics = client.metrics()
        assert metrics["path_cache"]["hits"] >= 1


class TestMutations:
    def test_add_and_remove_roundtrip(self, served_fig8):
        client, _ = served_fig8
        removed = client.remove_arc("C3", "C5")
        assert removed["applied"] and removed["group_count"] == 1
        readded = client.add_arc("C3", "C5")
        assert readded["applied"] and readded["suspicious"]
        assert readded["groups"][0]["support_trail"] == ["L1", "C2", "C5"]

    def test_duplicate_add_reports_unapplied(self, served_fig8):
        client, _ = served_fig8
        payload = client.add_arc("C3", "C5")
        assert not payload["applied"]
        assert payload["suspicious"]

    def test_mutations_hit_the_wal(self, served_fig8):
        from repro.service.wal import read_wal

        client, service = served_fig8
        client.add_arc("C8", "C3")
        records = read_wal(service._wal.path).records
        assert [(r.op, r.seller, r.buyer) for r in records] == [("add", "C8", "C3")]


class TestDetectorsAPI:
    def test_listing_names_the_portfolio(self, served_fig8):
        client, _ = served_fig8
        listing = client.detectors()["detectors"]
        assert [entry["name"] for entry in listing] == [
            "circular-trading",
            "iat-groups",
            "missing-trader",
            "shared-household",
        ]
        circular = listing[0]
        assert circular["version"] == "1.0.0"
        assert "min_balance" in circular["config"]

    def test_result_carries_detector_identity(self, served_fig8):
        client, _ = served_fig8
        result = client.result()
        assert result["detector"] == "iat-groups"
        assert result["detector_version"] == "1.0.0"

    def test_result_for_one_detector(self, served_fig8):
        client, _ = served_fig8
        payload = client.result(detector="iat-groups")
        assert payload["detector"] == "iat-groups"
        arcs = {tuple(f["members"]) for f in payload["findings"]}
        assert ("C3", "C5") in arcs
        rings = client.result(detector="circular-trading")
        assert rings["detector"] == "circular-trading"
        assert rings["findings"] == []

    def test_detector_findings_track_mutations(self, served_fig8):
        client, _ = served_fig8
        before = client.result(detector="iat-groups")["findings"]
        client.remove_arc("C3", "C5")
        after = client.result(detector="iat-groups")["findings"]
        assert len(after) == len(before) - 1
        client.add_arc("C3", "C5")

    def test_unknown_detector_is_400(self, served_fig8):
        client, _ = served_fig8
        with pytest.raises(ServiceClientError) as err:
            client.result(detector="nope")
        assert err.value.status == 400
        assert "choices" in str(err.value)


class TestErrorMapping:
    def test_unknown_endpoint_is_400(self, served_fig8):
        client, _ = served_fig8
        with pytest.raises(ServiceClientError) as err:
            client.add_arc("C3", "NOPE")
        assert err.value.status == 400
        assert "unknown" in str(err.value)

    def test_unknown_company_is_400(self, served_fig8):
        client, _ = served_fig8
        with pytest.raises(ServiceClientError) as err:
            client.investigate("NOPE")
        assert err.value.status == 400

    def test_unknown_route_is_404(self, served_fig8):
        client, _ = served_fig8
        with pytest.raises(ServiceClientError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_bad_body_is_400(self, served_fig8):
        client, _ = served_fig8
        with pytest.raises(ServiceClientError) as err:
            client._request("POST", "/v1/arcs", body={"op": "merge", "seller": "a", "buyer": "b"})
        assert err.value.status == 400
        with pytest.raises(ServiceClientError) as err:
            client._request("POST", "/v1/arcs", body={"op": "add", "seller": 3, "buyer": "b"})
        assert err.value.status == 400

    def test_unreachable_daemon_has_status_zero(self, tmp_path):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.2)
        with pytest.raises(ServiceClientError) as err:
            client.healthz()
        assert err.value.status == 0


class TestVersionedAPI:
    @staticmethod
    def _raw_get(client, path):
        """GET without following redirects; returns (status, headers, body)."""

        class _NoRedirect(urllib.request.HTTPRedirectHandler):
            def redirect_request(self, *args, **kwargs):
                return None

        opener = urllib.request.build_opener(_NoRedirect)
        try:
            with opener.open(client._base + path, timeout=5.0) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), exc.read()

    def test_bare_path_redirects_to_v1(self, served_fig8):
        client, _ = served_fig8
        status, headers, _ = self._raw_get(client, "/healthz")
        assert status == 308
        assert headers["Location"] == "/v1/healthz"

    def test_redirect_preserves_query_string(self, served_fig8):
        client, _ = served_fig8
        status, headers, _ = self._raw_get(client, "/metrics?format=prometheus")
        assert status == 308
        assert headers["Location"] == "/v1/metrics?format=prometheus"

    def test_prometheus_exposition(self, served_fig8):
        client, _ = served_fig8
        client.healthz()
        status, headers, body = self._raw_get(client, "/v1/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "# TYPE repro_http_requests_total counter" in text
        assert "repro_service_uptime_seconds" in text

    def test_trace_endpoint_records_mutations(self, served_fig8):
        client, _ = served_fig8
        client.remove_arc("C3", "C5")
        client.add_arc("C3", "C5")
        payload = client.trace(0)
        assert payload["subtpiin"] == 0
        assert payload["tracing_enabled"] is True
        assert len(payload["traces"]) == 2
        entry = payload["traces"][-1]
        assert entry["op"] == "add"
        assert entry["arc"] == ["C3", "C5"]
        trace = entry["trace"]
        assert trace["name"] == "mutation"
        children = [child["name"] for child in trace["children"]]
        assert children == ["apply", "wal_append"]

    def test_trace_endpoint_rejects_out_of_range(self, served_fig8):
        client, _ = served_fig8
        with pytest.raises(ServiceClientError) as err:
            client.trace(99)
        assert err.value.status == 400
        with pytest.raises(ServiceClientError) as err:
            client._request("GET", "/v1/trace/zero")
        assert err.value.status == 400
