"""Sharded service: parity with the legacy engine, routing, backpressure.

The sharding design leans on arc-decomposability (Definition 2): every
suspicious group is determined by its one trading arc plus the static
antecedent network, so partitioning dynamic arcs by weakly-connected
component can never change what is detected — only where the work runs.
These tests pin that equivalence plus the operational behaviors the
router adds on top: cross-shard merges, per-line batch verdicts,
deterministic 429 shedding, and a drain-on-close that never drops an
acknowledged write.
"""

import time

import pytest

from repro.datagen.cases import fig8_tpiin
from repro.errors import BackpressureError, MiningError
from repro.fusion.tpiin import TPIIN
from repro.model.colors import VColor
from repro.io.registry_io import ArcLine, parse_arc_ndjson
from repro.service.config import ServiceConfig
from repro.service.sharding import ShardedDetectionService
from repro.service.state import DetectionService

FIG8 = fig8_tpiin()
COMPANIES = sorted(
    node
    for node in FIG8.graph.nodes()
    if FIG8.graph.node_color(node) == VColor.COMPANY
)


def multi_component_tpiin(copies: int = 6) -> TPIIN:
    """``copies`` disjoint Fig. 6-style components.

    Copy ``i`` holds person ``P{i}`` influencing ``A{i}`` and ``D{i}``,
    with ``A{i}`` investing in ``B{i}``; a trading arc ``B{i} -> D{i}``
    is suspicious within the copy.  Fig. 8 itself is a single weak
    component, so cross-shard routing needs this fixture.
    """
    persons, companies, influence = [], [], []
    for i in range(copies):
        persons.append(f"P{i}")
        companies += [f"A{i}", f"B{i}", f"D{i}"]
        influence += [(f"P{i}", f"A{i}"), (f"P{i}", f"D{i}"), (f"A{i}", f"B{i}")]
    return TPIIN.build(
        persons=persons, companies=companies, influence=influence, trading=[]
    )

# A workload that exercises every routing path on Fig. 8: same-shard
# adds, cross-component adds (merges), duplicate adds, and removals.
OPS = [
    ("add", "C1", "C6"),
    ("add", "C6", "C2"),
    ("add", "C5", "C4"),
    ("add", "C1", "C6"),  # duplicate: applied=False, no WAL record
    ("remove", "C6", "C2"),
    ("add", "C2", "C6"),
    ("add", "C4", "C1"),
    ("remove", "C5", "C4"),
    ("remove", "C5", "C4"),  # absent: applied=False
    ("add", "C3", "C6"),
]


def run_ops(service, ops=OPS):
    updates = []
    for op, seller, buyer in ops:
        apply = service.add_arc if op == "add" else service.remove_arc
        updates.append((op, seller, buyer, apply(seller, buyer)))
    return updates


def result_key(result):
    return (
        {g.key() for g in result.groups},
        result.total_trading_arcs,
        result.suspicious_trading_arcs,
        result.kind_counts(),
    )


class TestParity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_matches_legacy_service(self, tmp_path, shards):
        legacy = DetectionService.open(
            FIG8, ServiceConfig(state_dir=tmp_path / "legacy", fsync=False)
        )
        sharded = ShardedDetectionService.open(
            FIG8,
            ServiceConfig(
                state_dir=tmp_path / "sharded", shards=shards, fsync=False
            ),
        )
        try:
            legacy_updates = run_ops(legacy)
            sharded_updates = run_ops(sharded)
            for (op, s, b, lhs), (_, _, _, rhs) in zip(
                legacy_updates, sharded_updates
            ):
                assert lhs.applied == rhs.applied, (op, s, b)
                assert lhs.suspicious == rhs.suspicious, (op, s, b)
                assert {g.key() for g in lhs.groups} == {
                    g.key() for g in rhs.groups
                }, (op, s, b)
            assert sharded.arc_count() == legacy.arc_count()
            assert result_key(sharded.result()) == result_key(legacy.result())
        finally:
            legacy.close()
            sharded.close()

    def test_arc_status_routes_to_owner(self, tmp_path):
        with ShardedDetectionService.open(
            FIG8, ServiceConfig(state_dir=tmp_path, shards=4, fsync=False)
        ) as service:
            run_ops(service)
            baseline = service.arc_status("C3", "C5")
            assert baseline.present and baseline.suspicious
            added = service.arc_status("C1", "C6")
            assert added.present
            absent = service.arc_status("C6", "C2")
            assert not absent.present

    @pytest.mark.parametrize("shards", [2, 4])
    def test_cross_component_parity(self, tmp_path, shards):
        """Merging workloads agree with the legacy service too."""
        tpiin = multi_component_tpiin()
        ops = [
            ("add", "B0", "D0"),  # suspicious inside copy 0
            ("add", "B1", "D1"),
            ("add", "B2", "D2"),
            ("add", "B0", "D1"),  # merges copies 0 and 1
            ("add", "B3", "A4"),  # merges copies 3 and 4
            ("remove", "B1", "D1"),
            ("add", "B4", "D5"),  # chains 3-4 onto 5
        ]
        legacy = DetectionService.open(
            tpiin, ServiceConfig(state_dir=tmp_path / "legacy", fsync=False)
        )
        sharded = ShardedDetectionService.open(
            tpiin,
            ServiceConfig(
                state_dir=tmp_path / "sharded", shards=shards, fsync=False
            ),
        )
        try:
            run_ops(legacy, ops)
            run_ops(sharded, ops)
            assert sharded.arc_count() == legacy.arc_count()
            assert result_key(sharded.result()) == result_key(legacy.result())
        finally:
            legacy.close()
            sharded.close()


class TestMerges:
    def _differently_homed_copies(self, service, copies=6):
        """Two copy indexes whose components home on different shards."""
        homes = {i: service._home_shard_for(f"B{i}") for i in range(copies)}
        for i in range(copies):
            for j in range(i + 1, copies):
                if homes[i] != homes[j]:
                    return i, j
        raise AssertionError("all copies homed identically")

    def test_cross_component_add_migrates_to_one_home(self, tmp_path):
        tpiin = multi_component_tpiin()
        with ShardedDetectionService.open(
            tpiin, ServiceConfig(state_dir=tmp_path, shards=4, fsync=False)
        ) as service:
            i, j = self._differently_homed_copies(service)
            service.add_arc(f"B{i}", f"D{i}")
            service.add_arc(f"B{j}", f"D{j}")
            before = service.metrics._own.counter(
                "repro_component_migrations_total"
            ).value
            service.add_arc(f"B{i}", f"D{j}")  # spans two homes
            after = service.metrics._own.counter(
                "repro_component_migrations_total"
            ).value
            assert after == before + 1
            # Every arc now lives on exactly one shard: the per-shard
            # arc lists partition the global arc set.
            shard_rows = service.metrics_payload()["shards"]
            assert sum(row["arcs"] for row in shard_rows) == service.arc_count()

    def test_merged_component_has_single_owner(self, tmp_path):
        tpiin = multi_component_tpiin()
        with ShardedDetectionService.open(
            tpiin, ServiceConfig(state_dir=tmp_path, shards=4, fsync=False)
        ) as service:
            i, j = self._differently_homed_copies(service)
            keys = [(f"B{i}", f"D{i}"), (f"B{j}", f"D{j}"), (f"B{i}", f"D{j}")]
            for seller, buyer in keys:
                service.add_arc(seller, buyer)
            owners = {key: service._owner_lookup(key) for key in keys}
            assert all(owner is not None for owner in owners.values())
            # The merged cluster's arcs are co-homed so future updates
            # take one shard lock.
            assert len(set(owners.values())) == 1


class TestBatch:
    def test_per_line_verdicts(self, tmp_path):
        text = "\n".join(
            [
                '{"op": "add", "seller": "C1", "buyer": "C6"}',
                "not json at all",
                '{"op": "add", "seller": "C1", "buyer": "C6"}',
                '{"op": "add", "seller": "NOPE", "buyer": "C6"}',
                '{"op": "remove", "seller": "C1", "buyer": "C6"}',
            ]
        )
        lines, rejects = parse_arc_ndjson(text)
        assert [reject.index for reject in rejects] == [1]
        with ShardedDetectionService.open(
            FIG8, ServiceConfig(state_dir=tmp_path, shards=2, fsync=False)
        ) as service:
            report = service.apply_batch(lines)
            by_line = {entry["line"]: entry for entry in report}
            assert by_line[0]["applied"] is True
            assert by_line[2]["applied"] is False  # duplicate add
            assert "error" in by_line[3]  # unknown company
            assert by_line[4]["applied"] is True
            assert service.arc_count() == len(list(FIG8.trading_arcs())) + len(
                list(FIG8.intra_scs_trades)
            )

    def test_batch_equals_sequential(self, tmp_path):
        lines = [
            ArcLine(index=i, op=op, seller=s, buyer=b)
            for i, (op, s, b) in enumerate(OPS)
        ]
        with ShardedDetectionService.open(
            FIG8, ServiceConfig(state_dir=tmp_path / "a", shards=4, fsync=False)
        ) as batched:
            batched.apply_batch(lines)
            with ShardedDetectionService.open(
                FIG8, ServiceConfig(state_dir=tmp_path / "b", shards=4, fsync=False)
            ) as sequential:
                run_ops(sequential)
                assert result_key(batched.result()) == result_key(
                    sequential.result()
                )


class TestBackpressure:
    def test_saturated_queue_sheds_with_retry_after(self, tmp_path):
        config = ServiceConfig(
            state_dir=tmp_path, shards=2, fsync=False, ingest_queue_limit=3
        )
        with ShardedDetectionService.open(FIG8, config) as service:
            target = service._home_shard_for("C1")
            worker = service._shards[target]
            pending = []
            with worker.lock.write():
                # Park the worker thread on the write lock: submit one
                # entry and wait for the worker to take it (it then
                # blocks in its commit path until we release).
                pending.append(worker.submit("add", "C1", "C6"))
                deadline = time.monotonic() + 5.0
                while worker.queue_depth() > 0:
                    assert time.monotonic() < deadline, "worker never took entry"
                    time.sleep(0.001)
                # Now fill the queue exactly to its bound.
                for _ in range(config.ingest_queue_limit):
                    pending.append(worker.submit("add", "C1", "C6"))
                with pytest.raises(BackpressureError) as excinfo:
                    worker.submit("add", "C1", "C6")
                assert excinfo.value.retry_after == config.retry_after_seconds
                shed = service.metrics._own.counter(
                    "repro_ingest_shed_total", shard=str(target)
                ).value
                assert shed == 1
            # Released: everything acknowledged eventually lands.
            updates = [entry.wait() for entry in pending]
            assert updates[0].applied is True
            assert all(not u.applied for u in updates[1:])

    def test_unknown_company_still_maps_to_400_class_error(self, tmp_path):
        with ShardedDetectionService.open(
            FIG8, ServiceConfig(state_dir=tmp_path, shards=2, fsync=False)
        ) as service:
            with pytest.raises(MiningError):
                service.add_arc("NOPE", "C6")


class TestDrain:
    def test_close_flushes_queued_writes(self, tmp_path):
        config = ServiceConfig(state_dir=tmp_path, shards=2, fsync=False)
        service = ShardedDetectionService.open(FIG8, config)
        target = service._home_shard_for("C1")
        worker = service._shards[target]
        with worker.lock.write():
            pending = [
                worker.submit("add", "C1", "C6"),
                worker.submit("add", "C2", "C6"),
            ]
        service.close()
        # Acknowledged-at-submit writes are applied before the worker
        # exits; close never abandons them.
        assert all(entry.wait().applied for entry in pending)
        recovered = ShardedDetectionService.open(FIG8, config)
        try:
            assert recovered.arc_status("C1", "C6").present
            assert recovered.arc_status("C2", "C6").present
        finally:
            recovered.close()

    def test_context_manager_closes(self, tmp_path):
        config = ServiceConfig(state_dir=tmp_path, shards=2, fsync=False)
        with ShardedDetectionService.open(FIG8, config) as service:
            service.add_arc("C1", "C6")
        with pytest.raises(Exception):
            service.add_arc("C2", "C6")
