"""ReadWriteLock under contention: exclusion, writer preference, no
lost wakeups.

These are stress tests, not proofs — each drives enough real thread
contention that the historical failure modes (readers starving writers,
a writer's release never waking waiting readers, two writers in the
critical section) would show up within the generous timeouts.
"""

import threading
import time

from repro.service.locks import ReadWriteLock


class TestExclusion:
    def test_concurrent_increments_do_not_race(self):
        lock = ReadWriteLock()
        counter = {"value": 0}
        increments = 200

        def writer():
            for _ in range(increments):
                with lock.write():
                    # A deliberately racy read-modify-write: only the
                    # lock's exclusivity keeps the total exact.
                    current = counter["value"]
                    time.sleep(0)
                    counter["value"] = current + 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert counter["value"] == 4 * increments

    def test_readers_overlap_but_never_with_a_writer(self):
        lock = ReadWriteLock()
        state = {"readers": 0, "writers": 0}
        monitor = threading.Lock()
        max_concurrent_readers = 0
        violations = []
        barrier = threading.Barrier(6)

        def reader():
            nonlocal max_concurrent_readers
            barrier.wait(timeout=10)
            for _ in range(50):
                with lock.read():
                    with monitor:
                        state["readers"] += 1
                        if state["writers"]:
                            violations.append("reader saw a writer")
                        max_concurrent_readers = max(
                            max_concurrent_readers, state["readers"]
                        )
                    time.sleep(0.0002)
                    with monitor:
                        state["readers"] -= 1

        def writer():
            barrier.wait(timeout=10)
            for _ in range(25):
                with lock.write():
                    with monitor:
                        state["writers"] += 1
                        if state["writers"] > 1 or state["readers"]:
                            violations.append("writer was not exclusive")
                    time.sleep(0.0002)
                    with monitor:
                        state["writers"] -= 1

        threads = [threading.Thread(target=reader) for _ in range(4)] + [
            threading.Thread(target=writer) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not violations
        # With four readers hammering a shared section, at least two
        # must have overlapped at some point: it is a *shared* lock.
        assert max_concurrent_readers >= 2


class TestWriterPreference:
    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        events = []
        reader_in = threading.Event()
        release_reader = threading.Event()
        writer_waiting = threading.Event()

        def first_reader():
            with lock.read():
                reader_in.set()
                release_reader.wait(timeout=10)
            events.append("reader1-out")

        def writer():
            reader_in.wait(timeout=10)
            writer_waiting.set()
            with lock.write():
                events.append("writer")

        def second_reader():
            writer_waiting.wait(timeout=10)
            # Give the writer time to register as waiting inside acquire.
            time.sleep(0.05)
            with lock.read():
                events.append("reader2")

        threads = [
            threading.Thread(target=first_reader),
            threading.Thread(target=writer),
            threading.Thread(target=second_reader),
        ]
        for t in threads:
            t.start()
        time.sleep(0.15)  # let reader2 attempt entry while writer waits
        release_reader.set()
        for t in threads:
            t.join(timeout=30)
        # The queued writer got in before the late reader: preference.
        assert events.index("writer") < events.index("reader2")


class TestNoLostWakeups:
    def test_alternating_contention_always_drains(self):
        """Many readers and writers ping-ponging must all finish.

        A lost wakeup (release path failing to notify the right
        waiters) deadlocks the survivors; the join timeouts turn that
        hang into a test failure.
        """
        lock = ReadWriteLock()
        done = []

        def reader():
            for _ in range(100):
                with lock.read():
                    pass
            done.append("r")

        def writer():
            for _ in range(100):
                with lock.write():
                    pass
            done.append("w")

        threads = [threading.Thread(target=reader) for _ in range(5)] + [
            threading.Thread(target=writer) for _ in range(3)
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 60
        for t in threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        assert all(not t.is_alive() for t in threads), "lock deadlocked"
        assert sorted(done) == ["r"] * 5 + ["w"] * 3
