"""DetectionService: recovery, durability ordering, compaction, metrics."""

import pytest

from repro.errors import ServiceError
from repro.fusion.tpiin import TPIIN
from repro.mining.detector import detect
from repro.service.config import ServiceConfig
from repro.service.snapshot import read_snapshot
from repro.service.state import DetectionService
from repro.service.wal import read_wal


def config_for(tmp_path, **overrides) -> ServiceConfig:
    overrides.setdefault("snapshot_every", 1000)
    return ServiceConfig(state_dir=tmp_path / "state", **overrides)


def group_keys(result):
    return {g.key() for g in result.groups}


class TestFirstBoot:
    def test_boot_matches_batch(self, fig8, tmp_path):
        with DetectionService.open(fig8, config_for(tmp_path)) as service:
            batch = detect(fig8, engine="fast")
            result = service.result()
            assert group_keys(result) == group_keys(batch)
            assert result.suspicious_trading_arcs == batch.suspicious_trading_arcs
            assert service.arc_count() == batch.total_trading_arcs
            assert not service.recovered_from_snapshot
            assert service.recovered_records == 0

    def test_boot_does_not_log_baseline(self, fig8, tmp_path):
        config = config_for(tmp_path)
        with DetectionService.open(fig8, config):
            pass
        assert read_wal(config.wal_path).records == ()


class TestDurabilityOrdering:
    def test_applied_ops_reach_the_wal(self, fig8, tmp_path):
        config = config_for(tmp_path)
        with DetectionService.open(fig8, config) as service:
            update = service.remove_arc("C3", "C5")
            assert update.applied
            service.add_arc("C3", "C5")
        records = read_wal(config.wal_path).records
        assert [(r.op, r.seller, r.buyer) for r in records] == [
            ("remove", "C3", "C5"),
            ("add", "C3", "C5"),
        ]

    def test_noops_are_not_logged(self, fig8, tmp_path):
        config = config_for(tmp_path)
        with DetectionService.open(fig8, config) as service:
            assert not service.add_arc("C3", "C5").applied  # already present
            assert not service.remove_arc("C1", "C2").applied  # absent
        assert read_wal(config.wal_path).records == ()

    def test_rejected_updates_are_not_logged(self, fig8, tmp_path):
        config = config_for(tmp_path)
        with DetectionService.open(fig8, config) as service:
            from repro.errors import MiningError

            with pytest.raises(MiningError):
                service.add_arc("C3", "C99")
        assert read_wal(config.wal_path).records == ()


class TestRestart:
    def test_restart_replays_wal(self, fig8, tmp_path):
        config = config_for(tmp_path)
        with DetectionService.open(fig8, config) as service:
            service.remove_arc("C3", "C5")
            service.add_arc("C8", "C3")
            before = service.result()
        with DetectionService.open(fig8, config) as service:
            assert service.recovered_records == 2
            after = service.result()
            assert group_keys(after) == group_keys(before)
            assert (
                after.suspicious_trading_arcs == before.suspicious_trading_arcs
            )

    def test_restart_from_snapshot_plus_wal(self, fig8, tmp_path):
        config = config_for(tmp_path)
        with DetectionService.open(fig8, config) as service:
            service.remove_arc("C3", "C5")
            service.compact()
            service.add_arc("C3", "C5")  # lands in the post-snapshot WAL
            before = service.result()
        with DetectionService.open(fig8, config) as service:
            assert service.recovered_from_snapshot
            assert service.recovered_records == 1
            assert group_keys(service.result()) == group_keys(before)

    def test_replay_against_wrong_tpiin_raises(self, fig8, tmp_path):
        config = config_for(tmp_path)
        with DetectionService.open(fig8, config) as service:
            service.add_arc("C8", "C3")
        stranger = TPIIN.build(
            persons=["p"], companies=["x", "y"], influence=[("p", "x")]
        )
        with pytest.raises(ServiceError, match="replay"):
            DetectionService.open(stranger, config)


class TestCompaction:
    def test_auto_compaction_after_threshold(self, fig8, tmp_path):
        config = config_for(tmp_path, snapshot_every=2)
        with DetectionService.open(fig8, config) as service:
            service.remove_arc("C3", "C5")
            assert read_snapshot(config.snapshot_path) is None
            service.remove_arc("C5", "C6")  # second applied op -> compacts
            snapshot = read_snapshot(config.snapshot_path)
            assert snapshot is not None and snapshot.last_seq == 2
            assert read_wal(config.wal_path).records == ()
            before = service.result()
        with DetectionService.open(fig8, config) as service:
            assert service.recovered_from_snapshot
            assert group_keys(service.result()) == group_keys(before)

    def test_manual_compact(self, fig8, tmp_path):
        config = config_for(tmp_path)
        with DetectionService.open(fig8, config) as service:
            service.remove_arc("C3", "C5")
            snapshot = service.compact()
            assert snapshot.last_seq == 1
            assert ("C3", "C5") not in [tuple(a) for a in snapshot.arcs]
            assert service.metrics.to_dict()["snapshots_written"] == 1

    def test_crash_between_snapshot_and_truncate(self, fig8, tmp_path):
        # Simulate by re-appending the already-snapshotted record: the
        # recovery floor (snapshot.last_seq) must discard it.
        config = config_for(tmp_path)
        with DetectionService.open(fig8, config) as service:
            service.remove_arc("C3", "C5")
            snapshot = service.compact()
            before = service.result()
        stale = config.wal_path
        from repro.service.wal import WALRecord

        record = WALRecord(seq=snapshot.last_seq, op="remove", seller="C3", buyer="C5")
        stale.write_text(record.to_json() + "\n")
        with DetectionService.open(fig8, config) as service:
            assert service.recovered_records == 0  # stale record skipped
            assert group_keys(service.result()) == group_keys(before)


class TestMetricsAndQueries:
    def test_path_cache_hits_on_rework(self, fig8, tmp_path):
        with DetectionService.open(fig8, config_for(tmp_path)) as service:
            service.remove_arc("C3", "C5")
            service.add_arc("C3", "C5")  # recomputes against warm caches
            payload = service.metrics_payload()
            assert payload["path_cache"]["hits"] >= 1
            assert payload["arcs_added"] == 1
            assert payload["arcs_removed"] == 1

    def test_arc_status(self, fig8, tmp_path):
        with DetectionService.open(fig8, config_for(tmp_path)) as service:
            status = service.arc_status("C3", "C5")
            assert status.present and status.suspicious
            assert len(status.groups) == 1
            absent = service.arc_status("C1", "C2")
            assert not absent.present and not absent.suspicious

    def test_health_payload(self, fig8, tmp_path):
        with DetectionService.open(fig8, config_for(tmp_path)) as service:
            health = service.health()
            assert health["status"] == "ok"
            assert health["arcs"] == 5
            assert health["wal_seq"] == 0

    def test_investigate(self, fig8, tmp_path):
        with DetectionService.open(fig8, config_for(tmp_path)) as service:
            investigation = service.investigate("C5")
            assert investigation.company == "C5"
            assert investigation.to_dict()["group_count"] >= 1


class TestLifecycle:
    def test_closed_service_rejects_mutations(self, fig8, tmp_path):
        service = DetectionService.open(fig8, config_for(tmp_path))
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.add_arc("C8", "C3")

    def test_close_is_idempotent(self, fig8, tmp_path):
        service = DetectionService.open(fig8, config_for(tmp_path))
        service.close()
        service.close()
