"""HTTP behaviors added by the sharded service: batch ingest, 429
admission control, the keep-alive client, and status-class metrics."""

import threading
import time
import urllib.request

import pytest

from repro.datagen.cases import fig8_tpiin
from repro.errors import ServiceClientError
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.server import DetectionHTTPServer
from repro.service.sharding import ShardedDetectionService

FIG8 = fig8_tpiin()


def start_daemon(tmp_path, **config_kwargs):
    config = ServiceConfig(
        state_dir=tmp_path / "state", port=0, fsync=False, **config_kwargs
    )
    service = ShardedDetectionService.open(FIG8, config)
    server = DetectionHTTPServer((config.host, config.port), service)
    thread = threading.Thread(target=server.serve_forever, name="test-daemon")
    thread.start()
    port = server.server_address[1]
    client = ServiceClient(f"http://127.0.0.1:{port}")
    return config, service, server, thread, client


def stop_daemon(server, thread, service):
    server.shutdown()
    thread.join()
    server.server_close()
    service.close()


@pytest.fixture()
def served(tmp_path):
    config, service, server, thread, client = start_daemon(tmp_path, shards=2)
    try:
        yield client, service, config
    finally:
        stop_daemon(server, thread, service)


class TestBatchEndpoint:
    def test_ndjson_round_trip(self, served):
        client, service, _ = served
        report = client.batch_arcs(
            [
                ("add", "C1", "C6"),
                ("add", "C1", "C6"),  # duplicate: acknowledged, not applied
                ("remove", "C1", "C6"),
            ]
        )
        assert report["lines"] == 3
        assert report["accepted"] == 3
        assert report["rejected"] == 0
        verdicts = {entry["line"]: entry for entry in report["results"]}
        assert verdicts[0]["applied"] is True
        assert verdicts[1]["applied"] is False
        assert verdicts[2]["applied"] is True

    def test_malformed_lines_rejected_individually(self, served):
        client, service, _ = served
        raw = (
            b'{"op": "add", "seller": "C1", "buyer": "C6"}\n'
            b"garbage\n"
            b'{"op": "frobnicate", "seller": "C1", "buyer": "C6"}\n'
            b'{"op": "add", "seller": "NOPE", "buyer": "C6"}\n'
        )
        report = client._request(
            "POST",
            "/v1/arcs:batch",
            raw_body=raw,
            content_type="application/x-ndjson",
        )
        assert report["accepted"] == 1
        assert report["rejected"] == 3
        by_line = {entry["line"]: entry for entry in report["results"]}
        assert by_line[0]["applied"] is True
        assert "error" in by_line[1]
        assert "error" in by_line[2]
        assert "error" in by_line[3]
        assert service.arc_status("C1", "C6").present

    def test_empty_body_is_400(self, served):
        client, _, _ = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.batch_arcs([])
        assert excinfo.value.status == 400

    def test_batch_metrics_recorded(self, served):
        client, service, _ = served
        client.batch_arcs([("add", "C1", "C6")])
        own = service.metrics._own
        assert own.counter("repro_batch_requests_total").value == 1
        assert (
            own.counter("repro_batch_lines_total", outcome="accepted").value == 1
        )


class TestAdmissionControl:
    def test_flood_sheds_429_with_retry_after_and_loses_nothing(self, tmp_path):
        config, service, server, thread, _ = start_daemon(
            tmp_path, shards=2, ingest_queue_limit=2
        )
        try:
            target = service._home_shard_for("C1")
            worker = service._shards[target]
            statuses = []
            lock = threading.Lock()

            def post_one():
                # One connection per thread: each request must block or
                # shed independently.
                client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
                try:
                    client.add_arc("C1", "C6")
                    with lock:
                        statuses.append((200, None))
                except ServiceClientError as exc:
                    with lock:
                        statuses.append((exc.status, exc.retry_after))
                finally:
                    client.close()

            with worker.lock.write():
                # Park the worker, then flood well past the queue bound.
                threads = [
                    threading.Thread(target=post_one) for _ in range(8)
                ]
                for t in threads:
                    t.start()
                deadline = time.monotonic() + 10.0
                while True:
                    with lock:
                        shed = sum(1 for s, _ in statuses if s == 429)
                    if shed >= 1:
                        break
                    assert time.monotonic() < deadline, "no 429 observed"
                    time.sleep(0.01)
            for t in threads:
                t.join()
            assert len(statuses) == 8
            ok = [s for s, _ in statuses if s == 200]
            shed = [(s, ra) for s, ra in statuses if s == 429]
            assert ok and shed
            assert len(ok) + len(shed) == 8  # nothing deadlocked or vanished
            # Every shed response carried the daemon's Retry-After hint.
            assert all(ra == config.retry_after_seconds for _, ra in shed)
        finally:
            stop_daemon(server, thread, service)
        # WAL-replay equivalence: exactly the acknowledged state survives.
        recovered = ShardedDetectionService.open(FIG8, config)
        try:
            assert recovered.arc_status("C1", "C6").present
        finally:
            recovered.close()


class TestKeepAliveClient:
    def test_connection_is_reused(self, served):
        client, _, _ = served
        client.healthz()
        first = client._conn
        assert first is not None
        client.healthz()
        assert client._conn is first

    def test_stale_socket_reconnects_transparently(self, served):
        client, _, _ = served
        client.healthz()
        # Outlive the server's keep-alive idle timeout (1 s): the next
        # request hits a dead socket and must retry on a fresh one.
        time.sleep(1.5)
        health = client.healthz()
        assert health["status"] == "ok"

    def test_429_maps_to_client_error_with_retry_after(self, served):
        client, service, config = served
        target = service._home_shard_for("C1")
        worker = service._shards[target]
        with worker.lock.write():
            done = threading.Event()
            failure = []

            def flood():
                # Fill the parked worker's queue, then trip one 429.
                flooder = ServiceClient(client._base)
                pendings = []
                try:
                    worker.submit("add", "C1", "C6")
                    deadline = time.monotonic() + 5.0
                    while worker.queue_depth() > 0:
                        assert time.monotonic() < deadline
                        time.sleep(0.001)
                    for _ in range(config.ingest_queue_limit):
                        pendings.append(worker.submit("add", "C1", "C6"))
                    try:
                        flooder.add_arc("C1", "C6")
                        failure.append("expected a 429")
                    except ServiceClientError as exc:
                        if exc.status != 429 or exc.retry_after is None:
                            failure.append(f"unexpected: {exc}")
                finally:
                    flooder.close()
                    done.set()

            thread = threading.Thread(target=flood)
            thread.start()
            assert done.wait(timeout=15.0)
        thread.join()
        assert not failure


class TestStatusClassMetrics:
    def test_latency_series_labelled_by_status_class(self, served):
        client, service, _ = served
        client.healthz()
        with pytest.raises(ServiceClientError):
            client.add_arc("NOPE", "C6")  # 400
        series = service.metrics._own.series_for(
            "repro_http_request_duration_by_status_ms"
        )
        labels = {
            (entry.get("endpoint"), entry.get("status_class"))
            for entry, _ in series
        }
        assert ("healthz", "2xx") in labels
        assert ("post_arcs", "4xx") in labels

    def test_prometheus_exposition_includes_new_series(self, served):
        client, _, _ = served
        client.batch_arcs([("add", "C1", "C6")])
        url = client._base + "/v1/metrics?format=prometheus"
        with urllib.request.urlopen(url, timeout=10.0) as response:
            text = response.read().decode("utf-8")
        assert "repro_http_request_duration_by_status_ms" in text
        assert "repro_batch_lines_total" in text
        assert "repro_ingest_queue_depth" in text
        assert "repro_ingest_queue_capacity" in text
