"""The portfolio driver: shared context, config overrides, tracing."""

import pytest

from repro.detectors import run_detectors
from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.mining.options import DetectOptions
from repro.obs.tracing import Tracer


def _portfolio_tpiin() -> TPIIN:
    """An IAT triangle next to an IAT-invisible trading ring."""
    return TPIIN.build(
        persons=["P1", "L1", "L2", "L3"],
        companies=["X", "Y", "R1", "R2", "R3"],
        influence=[
            ("P1", "X"),
            ("P1", "Y"),
            ("L1", "R1"),
            ("L2", "R2"),
            ("L3", "R3"),
        ],
        trading=[("X", "Y"), ("R1", "R2"), ("R2", "R3"), ("R3", "R1")],
    )


class TestRunDetectors:
    def test_all_runs_every_registered_detector(self):
        report = run_detectors(_portfolio_tpiin(), "all")
        assert report.names() == (
            "circular-trading",
            "iat-groups",
            "missing-trader",
            "shared-household",
        )
        assert len(report.summary().splitlines()) == 4
        # The triangle is IAT-suspicious; the ring is circular-only.
        assert [f.kind for f in report["iat-groups"].findings] == [
            "iat-suspicious-arc"
        ]
        assert report["iat-groups"].findings[0].members == ("X", "Y")
        assert [f.members for f in report["circular-trading"].findings] == [
            ("R1", "R2", "R3")
        ]
        assert report["iat-groups"].detection is not None
        assert report["circular-trading"].detection is None

    def test_selection_order_and_single_name(self):
        report = run_detectors(_portfolio_tpiin(), "circular-trading")
        assert report.names() == ("circular-trading",)
        report = run_detectors(
            _portfolio_tpiin(), ["missing-trader", "circular-trading"]
        )
        assert report.names() == ("missing-trader", "circular-trading")

    def test_one_shared_freeze_across_the_portfolio(self):
        report = run_detectors(_portfolio_tpiin(), "all", trace=True)
        assert report.trace is not None
        assert report.trace.name == "run_detectors"
        assert len(report.trace.find("freeze_trading")) == 1
        assert len(report.trace.find("detector:circular-trading")) == 1
        assert report.trace.attributes["detectors"] == 4

    def test_untraced_by_default(self):
        assert run_detectors(_portfolio_tpiin(), "circular-trading").trace is None

    def test_caller_owned_tracer_nests(self):
        tracer = Tracer()
        with tracer.span("caller"):
            run_detectors(_portfolio_tpiin(), "circular-trading", trace=tracer)
        root = tracer.root
        assert root is not None and root.name == "caller"
        assert len(root.find("run_detectors")) == 1

    def test_config_overrides(self):
        tpiin = TPIIN.build(
            companies=["C1", "C2"], trading=[("C1", "C2"), ("C2", "C1")]
        )
        strict = run_detectors(tpiin, "circular-trading")
        assert strict["circular-trading"].findings == ()
        relaxed = run_detectors(
            tpiin,
            "circular-trading",
            configs={"circular-trading": {"min_cycle_size": 2}},
        )
        assert len(relaxed["circular-trading"].findings) == 1

    def test_config_for_unselected_detector_rejected(self):
        with pytest.raises(MiningError, match="unselected"):
            run_detectors(
                _portfolio_tpiin(),
                "circular-trading",
                configs={"missing-trader": {"min_fan_in": 1}},
            )

    def test_options_configure_the_iat_detector(self):
        report = run_detectors(
            _portfolio_tpiin(), "iat-groups", options=DetectOptions(engine="fast")
        )
        run = report["iat-groups"]
        assert run.attributes["engine"] == "fast"
        assert run.detection is not None and run.detection.engine == "fast"
        # An explicit config override wins over the options.
        report = run_detectors(
            _portfolio_tpiin(),
            "iat-groups",
            configs={"iat-groups": {"engine": "csr"}},
            options=DetectOptions(engine="fast"),
        )
        assert report["iat-groups"].attributes["engine"] == "csr"

    def test_run_payload_shape(self):
        payload = run_detectors(_portfolio_tpiin(), "all").to_dict()
        assert payload["detectors"] == [
            "circular-trading",
            "iat-groups",
            "missing-trader",
            "shared-household",
        ]
        assert payload["total_findings"] == 2
        ring = payload["runs"]["circular-trading"]["findings"][0]
        assert ring["members"] == ["R1", "R2", "R3"]
