"""The process-wide detector registry: registration, lazy loading, resolve."""

import pytest

from repro.detectors import (
    DetectorRegistry,
    IATGroupDetector,
    get_detector_registry,
    set_detector_registry,
)
from repro.detectors.base import DetectionContext, DetectorOutcome
from repro.errors import MiningError

BUILTINS = ("circular-trading", "iat-groups", "missing-trader", "shared-household")


class ToyDetector:
    name = "toy"
    version = "0.1.0"
    summary = "test double"
    config_type = dict

    def __init__(self, config=None):
        self.config = config if config is not None else {}

    def run(self, context: DetectionContext) -> DetectorOutcome:
        return DetectorOutcome()


class TestBuiltins:
    def test_all_four_builtins_registered(self):
        assert get_detector_registry().names() == BUILTINS

    def test_info_exposes_schema(self):
        info = get_detector_registry().info("circular-trading")
        assert info.name == "circular-trading"
        assert info.version == "1.0.0"
        assert set(info.schema) == {"min_cycle_size", "min_balance"}
        assert info.schema["min_cycle_size"]["default"] == 3
        payload = info.to_dict()
        assert payload["name"] == "circular-trading"
        assert "min_balance" in payload["config"]

    def test_lazy_load_returns_class(self):
        registry = DetectorRegistry()
        assert registry.load("iat-groups") is IATGroupDetector

    def test_create_instantiates_with_default_config(self):
        detector = get_detector_registry().create("missing-trader")
        assert detector.name == "missing-trader"
        assert detector.config.min_fan_in == 3


class TestRegistration:
    def test_register_class_and_create(self):
        registry = DetectorRegistry(builtins=False)
        registry.register("toy", ToyDetector)
        assert "toy" in registry
        assert isinstance(registry.create("toy"), ToyDetector)

    def test_register_entry_point_spec(self):
        registry = DetectorRegistry(builtins=False)
        registry.register("iat-groups", "repro.detectors.iat:IATGroupDetector")
        assert registry.load("iat-groups") is IATGroupDetector

    def test_duplicate_requires_replace(self):
        registry = DetectorRegistry(builtins=False)
        registry.register("toy", ToyDetector)
        with pytest.raises(MiningError, match="already registered"):
            registry.register("toy", ToyDetector)
        registry.register("toy", ToyDetector, replace=True)

    def test_unregister(self):
        registry = DetectorRegistry(builtins=False)
        registry.register("toy", ToyDetector)
        registry.unregister("toy")
        assert "toy" not in registry
        with pytest.raises(MiningError, match="not registered"):
            registry.unregister("toy")

    def test_invalid_name_rejected(self):
        registry = DetectorRegistry(builtins=False)
        with pytest.raises(MiningError, match="invalid detector name"):
            registry.register("", ToyDetector)
        with pytest.raises(MiningError, match="invalid detector name"):
            registry.register("a/b", ToyDetector)

    def test_name_mismatch_rejected(self):
        registry = DetectorRegistry(builtins=False)
        registry.register("other", ToyDetector)
        with pytest.raises(MiningError, match="registered as"):
            registry.create("other")

    def test_bad_specs_rejected(self):
        registry = DetectorRegistry(builtins=False)
        registry.register("no-colon", "repro.detectors.iat")
        with pytest.raises(MiningError, match="module:attr"):
            registry.load("no-colon")
        registry.register("no-module", "repro.nope:X")
        with pytest.raises(MiningError, match="cannot import"):
            registry.load("no-module")
        registry.register("no-attr", "repro.detectors.iat:Nope")
        with pytest.raises(MiningError, match="no attribute"):
            registry.load("no-attr")


class TestResolve:
    def test_all_expands_sorted(self):
        assert get_detector_registry().resolve("all") == BUILTINS

    def test_explicit_order_preserved_and_deduped(self):
        resolved = get_detector_registry().resolve(
            ["missing-trader", "iat-groups", "missing-trader"]
        )
        assert resolved == ("missing-trader", "iat-groups")

    def test_unknown_name_lists_choices(self):
        with pytest.raises(MiningError, match="choices:"):
            get_detector_registry().resolve("nope")

    def test_empty_selection_rejected(self):
        with pytest.raises(MiningError, match="empty"):
            get_detector_registry().resolve([])


class TestProcessWide:
    def test_swap_and_restore(self):
        replacement = DetectorRegistry(builtins=False)
        previous = set_detector_registry(replacement)
        try:
            assert get_detector_registry() is replacement
        finally:
            set_detector_registry(previous)
        assert get_detector_registry() is previous
