"""Finding/context/report vocabulary of the detector framework."""

import pytest

from repro.detectors import (
    CircularTradingConfig,
    DetectionContext,
    DetectorRun,
    Finding,
    FindingsReport,
    SharedHouseholdConfig,
    config_schema,
)
from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.model.entities import Company, EntityRegistry
from repro.obs.tracing import Tracer


def _ring_tpiin() -> TPIIN:
    return TPIIN.build(
        persons=["P1"],
        companies=["C1", "C2", "C3", "C4"],
        influence=[("P1", "C1")],
        trading=[("C1", "C2"), ("C2", "C3"), ("C3", "C1")],
    )


class TestFinding:
    def test_members_sorted_and_set(self):
        finding = Finding(detector="toy", kind="k", members=("C3", "C1", "C2"))
        assert finding.members == ("C1", "C2", "C3")
        assert finding.member_set == frozenset({"C1", "C2", "C3"})

    def test_score_out_of_range_rejected(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(MiningError, match="score"):
                Finding(detector="toy", kind="k", members=("C1",), score=bad)

    def test_to_dict(self):
        finding = Finding(
            detector="toy",
            kind="k",
            members=("C2", "C1"),
            arcs=(("C2", "C1"), ("C1", "C2")),
            score=0.25,
            summary="two companies",
            details=(("count", 2),),
        )
        payload = finding.to_dict()
        assert payload["detector"] == "toy"
        assert payload["members"] == ["C1", "C2"]
        assert payload["arcs"] == [["C1", "C2"], ["C2", "C1"]]
        assert payload["score"] == 0.25
        assert payload["details"] == {"count": 2}


class TestFrozenTradingView:
    def test_adjacency(self):
        view = DetectionContext(tpiin=_ring_tpiin()).trading
        assert len(view) == 3
        assert set(view.companies) == {"C1", "C2", "C3", "C4"}
        assert view.buyers_of("C1") == ("C2",)
        assert view.sellers_to("C1") == ("C3",)
        assert view.out_degree("C4") == 0
        assert view.in_degree("C4") == 0

    def test_built_once_and_shared(self):
        context = DetectionContext(tpiin=_ring_tpiin())
        assert context.trading is context.trading

    def test_freeze_is_traced(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            context = DetectionContext(tpiin=_ring_tpiin(), tracer=tracer)
            assert len(context.trading) == 3
        names = [child.name for child in root.record.children]
        assert names == ["freeze_trading"]


class TestContextRegistryLookups:
    def test_defaults_without_registry(self):
        context = DetectionContext(tpiin=_ring_tpiin())
        assert context.registered_capital("C1", 42.0) == 42.0
        assert context.industry_of("C1") == "general"

    def test_registry_backed_lookups(self):
        registry = EntityRegistry()
        registry.add_company(
            Company(company_id="C1", industry="wholesale", registered_capital=900.0)
        )
        registry.add_company(Company(company_id="C2"))  # capital undeclared
        tpiin = _ring_tpiin()
        tpiin.registry = registry
        context = DetectionContext(tpiin=tpiin)
        assert context.registered_capital("C1", 42.0) == 900.0
        assert context.industry_of("C1") == "wholesale"
        assert context.registered_capital("C2", 42.0) == 42.0
        assert context.registered_capital("C9", 42.0) == 42.0
        assert context.industry_of("C9") == "general"


class TestConfigSchema:
    def test_scalar_defaults(self):
        schema = config_schema(CircularTradingConfig())
        assert schema["min_cycle_size"]["default"] == 3
        assert schema["min_balance"]["default"] == 0.6

    def test_tuple_default_rendered_as_list(self):
        schema = config_schema(SharedHouseholdConfig())
        assert schema["link_kinds"]["default"] == ["kinship"]

    def test_non_dataclass_rejected(self):
        with pytest.raises(MiningError, match="dataclass"):
            config_schema({"not": "a dataclass"})


def _run(name: str, *findings: Finding) -> DetectorRun:
    return DetectorRun(
        name=name, version="1.0.0", findings=findings, elapsed_seconds=0.002
    )


class TestFindingsReport:
    def test_merge_and_lookup(self):
        one = Finding(detector="a", kind="k", members=("C1",))
        two = Finding(detector="b", kind="k", members=("C2",))
        report = FindingsReport(runs={"a": _run("a", one), "b": _run("b", two)})
        assert len(report) == 2
        assert report.names() == ("a", "b")
        assert "a" in report and "c" not in report
        assert report.findings == (one, two)
        assert report["a"].findings == (one,)
        assert report.to_dict()["total_findings"] == 2

    def test_missing_run_raises(self):
        report = FindingsReport(runs={"a": _run("a")})
        with pytest.raises(MiningError, match="no run for detector"):
            report["missing"]

    def test_summary_one_line_per_run(self):
        report = FindingsReport(runs={"a": _run("a"), "b": _run("b")})
        lines = report.summary().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("detector=a v1.0.0 findings=0")
        assert FindingsReport().summary() == "no detectors ran"
