"""Planted-scenario accuracy: every detector >= 0.9 precision AND recall.

All three fraud scenarios are planted into ONE noisy province (plus its
organic antecedent structure and sparse background trading), then scored
separately: a detector must recover its own scenario without flagging
the others or the background.  The household internal trading rings are
genuinely circular, so they belong to the circular-trading expectation
as well — that overlap is real, not noise.
"""

import pytest

from repro.datagen.config import ProvinceConfig
from repro.datagen.planted import (
    plant_circular_rings,
    plant_missing_trader_chains,
    plant_shared_households,
)
from repro.datagen.province import generate_province
from repro.detectors import accuracy, run_detectors
from repro.errors import DataGenError
from repro.fusion.pipeline import fuse
from repro.model.homogeneous import (
    InfluenceGraph,
    InterdependenceGraph,
    InvestmentGraph,
    TradingGraph,
)

#: The household ring has 4 internal arcs; organic family clusters very
#: rarely reach 3 at the background trading density used here.
DETECTOR_CONFIGS = {"shared-household": {"min_internal_trades": 3}}


def _planted_province(seed: int):
    dataset = generate_province(ProvinceConfig.small(companies=120, seed=seed))
    g1 = dataset.interdependence
    g2 = dataset.influence
    gi = dataset.investment
    g4 = dataset.trading_graph(0.004)
    cycles = plant_circular_rings(g1, g2, gi, g4, count=4, size=4)
    chains = plant_missing_trader_chains(
        g1, g2, gi, g4, count=3, registry=dataset.registry
    )
    households = plant_shared_households(g1, g2, gi, g4, count=3)
    tpiin = fuse(g1, g2, gi, g4, registry=dataset.registry).tpiin
    return tpiin, cycles, chains, households


@pytest.fixture(scope="module")
def planted():
    tpiin, cycles, chains, households = _planted_province(29)
    report = run_detectors(
        tpiin,
        ["circular-trading", "missing-trader", "shared-household"],
        configs=DETECTOR_CONFIGS,
    )
    return tpiin, report, cycles, chains, households


class TestPlantedAccuracy:
    def test_circular_trading(self, planted):
        tpiin, report, cycles, chains, households = planted
        expected = [c.expected_members(tpiin) for c in cycles]
        # The household internal rings are closed trading cycles too.
        expected += [
            frozenset(tpiin.node_map.get(c, c) for c in h.companies)
            for h in households
        ]
        scored = accuracy(expected, report["circular-trading"].findings)
        assert scored.precision >= 0.9, scored.summary()
        assert scored.recall >= 0.9, scored.summary()

    def test_missing_trader(self, planted):
        tpiin, report, cycles, chains, households = planted
        expected = [c.expected_members(tpiin) for c in chains]
        scored = accuracy(expected, report["missing-trader"].findings)
        assert scored.precision >= 0.9, scored.summary()
        assert scored.recall >= 0.9, scored.summary()

    def test_shared_household(self, planted):
        tpiin, report, cycles, chains, households = planted
        expected = [h.expected_members(tpiin) for h in households]
        scored = accuracy(expected, report["shared-household"].findings)
        assert scored.precision >= 0.9, scored.summary()
        assert scored.recall >= 0.9, scored.summary()

    def test_scenarios_do_not_cross_fire(self, planted):
        tpiin, report, cycles, chains, households = planted
        hubs = {c.hub for c in chains}
        for finding in report["circular-trading"].findings:
            assert not hubs & set(map(str, finding.members))
        cycle_companies = {c for cyc in cycles for c in cyc.companies}
        for finding in report["missing-trader"].findings:
            assert not cycle_companies & set(map(str, finding.members))


class TestSeedStability:
    def test_same_seed_same_findings(self):
        runs = []
        for _ in range(2):
            tpiin, _cycles, _chains, _households = _planted_province(31)
            report = run_detectors(
                tpiin,
                ["circular-trading", "missing-trader", "shared-household"],
                configs=DETECTOR_CONFIGS,
            )
            runs.append(
                {
                    name: [f.to_dict() for f in run.findings]
                    for name, run in report.runs.items()
                }
            )
        assert runs[0] == runs[1]


class TestGeneratorValidation:
    def test_invalid_inputs_rejected(self):
        g1, g2, gi, g4 = (
            InterdependenceGraph(),
            InfluenceGraph(),
            InvestmentGraph(),
            TradingGraph(),
        )
        with pytest.raises(DataGenError):
            plant_circular_rings(g1, g2, gi, g4, count=-1)
        with pytest.raises(DataGenError, match="size"):
            plant_circular_rings(g1, g2, gi, g4, count=1, size=1)
        with pytest.raises(DataGenError):
            plant_missing_trader_chains(g1, g2, gi, g4, count=1, fan_in=0)
        with pytest.raises(DataGenError, match="persons"):
            plant_shared_households(g1, g2, gi, g4, count=1, persons=1)
        with pytest.raises(DataGenError, match="companies"):
            plant_shared_households(g1, g2, gi, g4, count=1, companies=1)
