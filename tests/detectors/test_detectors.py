"""Behavior of the three new portfolio detectors on hand-built TPIINs."""

from repro.detectors import (
    CircularTradingConfig,
    CircularTradingDetector,
    DetectionContext,
    MissingTraderConfig,
    MissingTraderDetector,
    SharedHouseholdConfig,
    SharedHouseholdDetector,
)
from repro.fusion.tpiin import TPIIN
from repro.ite.transactions import Transaction, TransactionBook
from repro.model.entities import Company, EntityRegistry, Syndicate


class TestCircularTrading:
    def test_simple_ring_is_perfectly_balanced(self):
        tpiin = TPIIN.build(
            companies=["C1", "C2", "C3", "C9"],
            trading=[("C1", "C2"), ("C2", "C3"), ("C3", "C1"), ("C3", "C9")],
        )
        outcome = CircularTradingDetector().run(DetectionContext(tpiin=tpiin))
        assert len(outcome.findings) == 1
        finding = outcome.findings[0]
        assert finding.kind == "circular-trading-ring"
        assert finding.members == ("C1", "C2", "C3")
        assert finding.score == 1.0
        assert len(finding.arcs) == 3
        assert outcome.attributes["sccs_examined"] == 1

    def test_two_company_pingpong_needs_lower_min_cycle_size(self):
        tpiin = TPIIN.build(
            companies=["C1", "C2"], trading=[("C1", "C2"), ("C2", "C1")]
        )
        context = DetectionContext(tpiin=tpiin)
        assert CircularTradingDetector().run(context).findings == []
        relaxed = CircularTradingDetector(CircularTradingConfig(min_cycle_size=2))
        assert len(relaxed.run(context).findings) == 1

    def test_lopsided_scc_filtered_by_balance(self):
        # A->B->C->A plus the chord A->C: per-member balances 0.5, 1, 0.5
        # (mean 2/3), so the ring survives 0.6 but not 0.7.
        tpiin = TPIIN.build(
            companies=["A", "B", "C"],
            trading=[("A", "B"), ("B", "C"), ("C", "A"), ("A", "C")],
        )
        context = DetectionContext(tpiin=tpiin)
        default = CircularTradingDetector().run(context)
        assert len(default.findings) == 1
        assert abs(default.findings[0].score - 2.0 / 3.0) < 1e-9
        strict = CircularTradingDetector(CircularTradingConfig(min_balance=0.7))
        assert strict.run(context).findings == []


def _hub_tpiin() -> TPIIN:
    sellers = ["S1", "S2", "S3"]
    buyers = ["B1", "B2"]
    return TPIIN.build(
        companies=["HUB", *sellers, *buyers],
        trading=[(s, "HUB") for s in sellers] + [("HUB", b) for b in buyers],
    )


class TestMissingTrader:
    def test_undercapitalized_hub_flagged(self):
        tpiin = _hub_tpiin()
        registry = EntityRegistry()
        registry.add_company(Company(company_id="HUB", registered_capital=100.0))
        tpiin.registry = registry
        outcome = MissingTraderDetector().run(DetectionContext(tpiin=tpiin))
        assert outcome.attributes["candidate_hubs"] == 1
        assert len(outcome.findings) == 1
        finding = outcome.findings[0]
        assert finding.kind == "missing-trader-hub"
        # load 5 on capacity 100/200 = 0.5 -> ratio 10, score 10/11
        assert abs(finding.score - 10.0 / 11.0) < 1e-9
        assert set(finding.members) == {"HUB", "S1", "S2", "S3", "B1", "B2"}
        details = dict(finding.details)
        assert details["fan_in"] == 3 and details["fan_out"] == 2
        assert details["load_ratio"] == 10.0

    def test_well_capitalized_hub_not_flagged(self):
        tpiin = _hub_tpiin()
        registry = EntityRegistry()
        registry.add_company(Company(company_id="HUB", registered_capital=10_000.0))
        tpiin.registry = registry
        outcome = MissingTraderDetector().run(DetectionContext(tpiin=tpiin))
        assert outcome.attributes["candidate_hubs"] == 1
        assert outcome.findings == []

    def test_default_capital_used_without_registry(self):
        context = DetectionContext(tpiin=_hub_tpiin())
        # default 1000 -> capacity 5, ratio 1.0 < 2.0: clean
        assert MissingTraderDetector().run(context).findings == []
        shoestring = MissingTraderDetector(MissingTraderConfig(default_capital=100.0))
        assert len(shoestring.run(context).findings) == 1

    def test_fan_gate(self):
        tpiin = TPIIN.build(
            companies=["HUB", "S1", "S2", "B1"],
            trading=[("S1", "HUB"), ("S2", "HUB"), ("HUB", "B1")],
        )
        outcome = MissingTraderDetector().run(DetectionContext(tpiin=tpiin))
        assert outcome.attributes["candidate_hubs"] == 0
        assert outcome.findings == []

    def test_ite_markup_veto_and_abstention(self):
        def sale(tx_id: str, unit_price: float) -> Transaction:
            return Transaction(
                transaction_id=tx_id,
                seller="HUB",
                buyer="B1",
                industry="general",
                quantity=10.0,
                unit_price=unit_price,
                unit_cost=100.0,
            )

        context = DetectionContext(tpiin=_hub_tpiin())
        config = MissingTraderConfig(default_capital=100.0)

        # Sales at the arm's-length markup (general profile: 12%) veto.
        fair = TransactionBook()
        fair.add(sale("T1", 112.0))
        vetoed = MissingTraderDetector(
            MissingTraderConfig(default_capital=100.0, transactions=fair)
        ).run(context)
        assert vetoed.attributes["ite_checked"] is True
        assert vetoed.findings == []

        # Under-invoiced sales confirm the hub.
        cheap = TransactionBook()
        cheap.add(sale("T2", 100.0))
        confirmed = MissingTraderDetector(
            MissingTraderConfig(default_capital=100.0, transactions=cheap)
        ).run(context)
        assert len(confirmed.findings) == 1
        assert dict(confirmed.findings[0].details)["markup_shortfall"] == 0.12

        # A book with no sales by the hub abstains instead of vetoing.
        empty = TransactionBook()
        abstained = MissingTraderDetector(
            MissingTraderConfig(default_capital=100.0, transactions=empty)
        ).run(context)
        assert len(abstained.findings) == 1
        assert "markup_shortfall" not in dict(abstained.findings[0].details)
        assert MissingTraderDetector(config).run(context).attributes[
            "ite_checked"
        ] is False


def _household_tpiin(*, via: frozenset[str] = frozenset({"kinship"})) -> TPIIN:
    syn = "syn:P1+P2"
    tpiin = TPIIN.build(
        persons=[syn],
        companies=["C1", "C2", "C3", "C9"],
        influence=[(syn, "C1"), (syn, "C2"), (syn, "C3")],
        trading=[("C1", "C2"), ("C2", "C3"), ("C3", "C9")],
    )
    registry = EntityRegistry()
    registry.add_syndicate(
        Syndicate(
            syndicate_id=syn,
            members=frozenset({"P1", "P2"}),
            kind="person",
            via=via,
        )
    )
    tpiin.registry = registry
    return tpiin


class TestSharedHousehold:
    def test_kinship_syndicate_with_internal_trades_flagged(self):
        outcome = SharedHouseholdDetector().run(
            DetectionContext(tpiin=_household_tpiin())
        )
        assert outcome.attributes["households_examined"] == 1
        assert len(outcome.findings) == 1
        finding = outcome.findings[0]
        assert finding.kind == "shared-household-syndicate"
        # C9 trades with the cluster but is not influence-controlled.
        assert finding.members == ("C1", "C2", "C3", "syn:P1+P2")
        assert set(finding.arcs) == {("C1", "C2"), ("C2", "C3")}
        assert finding.score == 1.0
        details = dict(finding.details)
        assert details["persons"] == 2 and details["companies"] == 3

    def test_no_registry_abstains(self):
        tpiin = _household_tpiin()
        tpiin.registry = None
        outcome = SharedHouseholdDetector().run(DetectionContext(tpiin=tpiin))
        assert outcome.findings == []
        assert outcome.attributes == {"no_registry": True}

    def test_link_kind_filter(self):
        tpiin = _household_tpiin(via=frozenset({"interlocking"}))
        context = DetectionContext(tpiin=tpiin)
        default = SharedHouseholdDetector().run(context)
        assert default.attributes["households_examined"] == 0
        widened = SharedHouseholdDetector(
            SharedHouseholdConfig(link_kinds=("kinship", "interlocking"))
        )
        assert len(widened.run(context).findings) == 1

    def test_thresholds(self):
        context = DetectionContext(tpiin=_household_tpiin())
        too_big = SharedHouseholdDetector(SharedHouseholdConfig(min_companies=4))
        assert too_big.run(context).findings == []
        too_chatty = SharedHouseholdDetector(
            SharedHouseholdConfig(min_internal_trades=3)
        )
        assert too_chatty.run(context).findings == []
