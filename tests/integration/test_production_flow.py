"""Integration: the production deployment flow, end to end.

Mimics how a provincial office would actually run the system:

1. nightly: ingest registry extracts (CSV), fuse, persist the TPIIN
   bundle;
2. daytime: load the bundle in a monitoring process, stream incoming
   trading filings through the incremental detector, explain alerts;
3. quarterly: temporal windows over the filing history, a markdown
   audit report, and sampled share estimation for the dashboard.
"""

import pytest

from repro.analysis.audit_report import build_audit_report
from repro.analysis.explain import explain_arc
from repro.datagen.config import ProvinceConfig
from repro.datagen.province import generate_province
from repro.datagen.rng import derive_rng
from repro.io.bundle_io import read_tpiin_bundle, write_tpiin_bundle
from repro.io.registry_io import load_registry_csvs, write_registry_csvs
from repro.mining.detector import detect
from repro.mining.incremental import IncrementalDetector
from repro.mining.sampling import estimate_suspicious_share
from repro.mining.temporal import TimedTrade, sliding_window_detect


@pytest.fixture(scope="module")
def office(tmp_path_factory):
    """Simulated office state: registry dir + fused bundle path."""
    root = tmp_path_factory.mktemp("office")
    dataset = generate_province(ProvinceConfig.small(companies=120, seed=29))
    registry_dir = write_registry_csvs(dataset, root / "registry")
    bundle = load_registry_csvs(registry_dir)
    tpiin = bundle.fuse().tpiin
    bundle_path = write_tpiin_bundle(tpiin, root / "tpiin.json")
    return dataset, bundle_path


class TestProductionFlow:
    def test_nightly_ingest_and_bundle(self, office):
        dataset, bundle_path = office
        loaded = read_tpiin_bundle(bundle_path)
        assert loaded.graph.number_of_nodes() > dataset.config.companies

    def test_daytime_streaming_with_explanations(self, office):
        dataset, bundle_path = office
        tpiin = read_tpiin_bundle(bundle_path)
        monitor = IncrementalDetector(tpiin)
        feed = [
            (s, b)
            for s, b, _c in dataset.trading_graph(0.03).arcs()
        ]
        alerts = []
        for seller, buyer in feed:
            update = monitor.add_trading_arc(seller, buyer)
            if update.suspicious:
                alerts.append(update)
        assert alerts
        result = monitor.result()
        narrative = explain_arc(alerts[0].arc, result, tpiin)
        assert "proof chain" in narrative
        # The streamed state equals batch detection over the same feed.
        batch_tpiin = dataset.overlay_trading(
            dataset.antecedent_tpiin(), 0.03
        )
        batch = detect(batch_tpiin, engine="fast")
        assert monitor.suspicious_arcs == batch.suspicious_trading_arcs

    def test_quarterly_reporting(self, office):
        dataset, bundle_path = office
        tpiin = read_tpiin_bundle(bundle_path)
        rng = derive_rng(29, "filings")
        trades = []
        for s, b, _c in dataset.trading_graph(0.03).arcs():
            start = int(rng.integers(0, 12))
            trades.append(TimedTrade(s, b, start, start + int(rng.integers(2, 8))))
        windows = list(
            sliding_window_detect(tpiin, trades, window=3, start=0, end=12)
        )
        assert len(windows) == 4
        assert any(w.suspicious_arcs for w in windows)

        full = dataset.overlay_trading(dataset.antecedent_tpiin(), 0.03)
        result = detect(full, engine="fast")
        report = build_audit_report(full, result, title="Quarterly audit")
        assert "Quarterly audit" in report
        estimate = estimate_suspicious_share(full, sample_size=200, seed=3)
        assert estimate.low <= result.suspicious_arc_share <= estimate.high
