"""Integration: the full pipeline over a synthetic province.

Generate -> fuse -> mine (all engines) -> score -> ITE -> investigate ->
persist, on one small provincial dataset.
"""

import pytest

from repro.analysis.investigate import investigate_company
from repro.analysis.metrics import compute_table1_row
from repro.io.edge_list_io import read_tpiin_csv, write_tpiin_csv
from repro.io.results_io import read_detection_json, write_detection_json
from repro.ite.pipeline import run_two_phase
from repro.ite.transactions import SimulationConfig, simulate_transactions
from repro.mining.detector import detect
from repro.mining.detector import detect
from repro.weights.scoring import rank_trading_arcs


@pytest.fixture(scope="module")
def detection(request):
    tpiin = request.getfixturevalue("small_province_tpiin")
    return detect(tpiin, engine="fast")


class TestFullPipeline:
    def test_mining_is_consistent(self, small_province_tpiin, detection):
        faithful = detect(small_province_tpiin)
        assert {g.key() for g in faithful.groups} == {
            g.key() for g in detection.groups
        }

    def test_table1_row_accurate(self, small_province_tpiin, detection):
        row = compute_table1_row(
            small_province_tpiin, detection, trading_probability=0.01
        )
        assert row.trade_accuracy == 1.0
        assert row.suspicious_trades > 0
        assert 0 < row.suspicious_percentage < 100

    def test_scoring_and_investigation(self, small_province_tpiin, detection):
        ranked = rank_trading_arcs(detection, small_province_tpiin)
        assert ranked
        top_score, (seller, buyer) = ranked[0]
        assert 0 < top_score <= 1.0
        briefing = investigate_company(small_province_tpiin, detection, seller)
        assert briefing.groups
        text = briefing.render()
        assert str(seller) in text

    def test_two_phase_workload(self, small_province, small_province_tpiin, detection):
        industry_of = {
            c.company_id: c.industry
            for c in small_province.registry.companies.values()
        }
        book = simulate_transactions(
            list(small_province_tpiin.trading_arcs()),
            detection.suspicious_trading_arcs,
            industry_of,
            config=SimulationConfig(seed=1),
        )
        two = run_two_phase(small_province_tpiin, book, msg_result=detection)
        assert two.recall == 1.0
        assert two.workload_share < 0.25

    def test_persistence_roundtrip(self, small_province_tpiin, detection, tmp_path):
        write_tpiin_csv(
            small_province_tpiin, tmp_path / "arcs.csv", tmp_path / "nodes.csv"
        )
        loaded = read_tpiin_csv(tmp_path / "arcs.csv", tmp_path / "nodes.csv")
        reloaded_result = detect(loaded, engine="fast")
        assert (
            reloaded_result.suspicious_trading_arcs
            == detection.suspicious_trading_arcs
        )
        json_path = write_detection_json(detection, tmp_path / "result.json")
        payload = read_detection_json(json_path)
        assert payload["simple_group_count"] == detection.simple_group_count


class TestScsIntegration:
    def test_mutual_investment_province(self):
        from repro.datagen.config import ProvinceConfig
        from repro.datagen.province import generate_province
        from repro.mining.groups import GroupKind
        from repro.mining.oracle import suspicious_arc_oracle

        cfg = ProvinceConfig(
            companies=150,
            legal_persons=85,
            directors=48,
            seed=23,
            mutual_investment_pairs=4,
        )
        ds = generate_province(cfg)
        base = ds.antecedent_tpiin()
        assert base.scs_subgraphs
        tpiin = ds.overlay_trading(base, 0.05)
        result = detect(tpiin)
        if tpiin.intra_scs_trades:
            scs_groups = [g for g in result.groups if g.kind is GroupKind.SCS]
            assert len(scs_groups) == len(set(tpiin.intra_scs_trades))
        assert result.suspicious_trading_arcs == suspicious_arc_oracle(tpiin)
        fast = detect(tpiin, engine="fast")
        assert {g.key() for g in fast.groups} == {g.key() for g in result.groups}
