"""Integration: the paper's figures reproduced end to end.

These tests pin the full Fig. 7 -> Fig. 8 -> Fig. 9 -> Fig. 10 chain:
un-contracted source networks, fusion, patterns tree, component pattern
base and the three suspicious groups — plus the Fig. 6 example and the
three case studies of Section 3.1.
"""

from repro.datagen.cases import (
    FIG10_EXPECTED_PATTERNS,
    fig7_source_graphs,
)
from repro.fusion.pipeline import fuse
from repro.ite.adjudication import adjudicate_transaction
from repro.ite.alp import transactional_net_margin
from repro.ite.transactions import IndustryProfile, Transaction
from repro.mining.detector import detect
from repro.mining.patterns import build_patterns_tree


class TestFig7ToFig10Chain:
    def test_full_chain(self, fig8):
        src = fig7_source_graphs()
        fused = fuse(
            src.interdependence, src.influence, src.investment, src.trading
        )
        tpiin = fused.tpiin

        # Fig. 8: the contracted TPIIN (isomorphic modulo syndicate ids).
        l1 = tpiin.node_map["L6"]
        b2 = tpiin.node_map["B5"]
        rename = {l1: "L1", b2: "B2"}
        arcs = {
            (rename.get(t, t), rename.get(h, h), c)
            for t, h, c in tpiin.graph.arcs()
        }
        assert arcs == set(fig8.graph.arcs())

        # Fig. 9/10: the patterns tree yields the paper's 15 trails.
        tree = build_patterns_tree(tpiin.graph)
        rendered = {
            trail.render().replace(l1, "L1").replace(b2, "B2")
            for trail in tree.trails
        }
        assert rendered == set(FIG10_EXPECTED_PATTERNS)

        # The three groups, with their trading arcs.
        result = detect(tpiin)
        assert result.suspicious_trading_arcs == {
            ("C3", "C5"),
            ("C5", "C6"),
            ("C7", "C8"),
        }

    def test_patterns_tree_renders_fig9_shape(self, fig8):
        tree = build_patterns_tree(fig8.graph)
        text = tree.render_tree()
        # The L1 branch of Fig. 9 contains the C1 -> C3 => C5 descent.
        assert "L1" in text
        lines = text.splitlines()
        l1_index = lines.index("L1")
        subtree = "\n".join(lines[l1_index : l1_index + 8])
        assert "C1" in subtree and "C3" in subtree


class TestCaseStudies:
    def test_case1_proof_chain_and_adjustment(self, case1):
        """Case 1: kin legal persons; TNMM lifts C3 out of its losses."""
        result = detect(case1)
        group = result.groups[0]
        assert group.trading_trail == ("L'", "C1", "C3", "C2")
        assert group.support_trail == ("L'", "C2")
        # ITE-phase: C3's margin is negative against a healthy industry.
        profile = IndustryProfile(
            industry="biochem", net_margin_range=(0.04, 0.12)
        )
        judgment = transactional_net_margin(
            100.0e6, 105.0e6, profile, company_id="C3"
        )
        assert judgment.violated
        assert judgment.adjustment > 0  # the paper adjusted 25.52M RMB

    def test_case2_proof_chain_and_cup(self, case2):
        """Case 2: one investor behind an under-priced cross-border sale."""
        result = detect(case2)
        assert result.groups[0].trading_arc == ("C5", "C6")
        profile = IndustryProfile(
            industry="meters", unit_cost=20.0, standard_markup=0.5
        )
        meters = Transaction(
            transaction_id="case2",
            seller="C5",
            buyer="C6",
            industry="meters",
            quantity=5000.0,
            unit_price=20.0,
            unit_cost=20.0,
        )
        verdict = adjudicate_transaction(meters, {"meters": profile, "general": profile})
        assert verdict.flagged
        assert "CUP" in verdict.methods_violated

    def test_case3_interlocking_directors(self, case3):
        result = detect(case3)
        group = result.groups[0]
        assert group.antecedent == "B"  # the acting-together syndicate
        assert group.trading_arc == ("C7", "C8")
        # C9 (the joint venture) is affiliated but not in the group.
        assert "C9" not in group.members


class TestFig6:
    def test_suspicious_relationship(self, fig6):
        result = detect(fig6)
        assert result.suspicious_trading_arcs == {("C2", "C3")}
        group = result.groups[0]
        # The paper's trails: pi0 = P1 -> C1 -> C2 -TR-> C3, pi2 = P1 -> C3.
        assert group.trading_trail == ("P1", "C1", "C2", "C3")
        assert group.support_trail == ("P1", "C3")
        assert group.is_simple
