"""Shared fixtures: the paper's worked examples and small datasets."""

from __future__ import annotations

import pytest

from repro.datagen.cases import (
    case1_tpiin,
    case2_tpiin,
    case3_tpiin,
    fig6_tpiin,
    fig7_source_graphs,
    fig8_tpiin,
)
from repro.datagen.config import ProvinceConfig
from repro.datagen.province import generate_province


@pytest.fixture()
def fig6():
    return fig6_tpiin()


@pytest.fixture()
def fig8():
    return fig8_tpiin()


@pytest.fixture()
def fig7_sources():
    return fig7_source_graphs()


@pytest.fixture()
def case1():
    return case1_tpiin()


@pytest.fixture()
def case2():
    return case2_tpiin()


@pytest.fixture()
def case3():
    return case3_tpiin()


@pytest.fixture(scope="session")
def small_province():
    """A 150-company provincial dataset shared across the test session."""
    return generate_province(ProvinceConfig.small(companies=150, seed=11))


@pytest.fixture(scope="session")
def small_province_tpiin(small_province):
    """The small province fused with a p=0.01 trading overlay."""
    base = small_province.antecedent_tpiin()
    return small_province.overlay_trading(base, 0.01)
