"""Unit tests for the span tracer (nesting, attributes, exporters)."""

import json

import pytest

from repro.obs.tracing import NULL_SPAN, NULL_TRACER, SpanRecord, Tracer


class TestNullObjects:
    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_null_tracer_always_answers_the_shared_span(self):
        span = NULL_TRACER.span("anything")
        assert span is NULL_SPAN
        with span as inner:
            inner.set(nodes=3)
            inner.add("trails")
        assert span.record is None

    def test_null_record_is_a_noop(self):
        NULL_TRACER.record("worker", 0.5, index=1)


class TestTracer:
    def test_spans_nest_by_call_order(self):
        tracer = Tracer()
        with tracer.span("detect"):
            with tracer.span("segment"):
                pass
            with tracer.span("match"):
                pass
        root = tracer.root
        assert root is not None
        assert root.name == "detect"
        assert [child.name for child in root.children] == ["segment", "match"]
        assert tracer.span_count() == 3

    def test_durations_are_monotonic_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.root
        inner = outer.children[0]
        assert outer.duration >= inner.duration >= 0.0
        assert outer.self_seconds() == pytest.approx(
            outer.duration - inner.duration
        )

    def test_set_and_add_attributes(self):
        tracer = Tracer()
        with tracer.span("stage") as span:
            span.set(nodes=5, engine="fast")
            span.add("trails")
            span.add("trails", 2)
        record = tracer.root
        assert record.attributes == {"nodes": 5, "engine": "fast", "trails": 3}

    def test_record_attaches_pre_timed_child(self):
        tracer = Tracer()
        with tracer.span("fan_out"):
            tracer.record("subtpiin", 0.25, index=4)
        child = tracer.root.children[0]
        assert child.name == "subtpiin"
        assert child.duration == pytest.approx(0.25)
        assert child.attributes == {"index": 4}

    def test_exception_inside_nested_span_closes_cursor(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        # the cursor is back at top level: a new span is a new root
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["outer", "after"]
        assert tracer.root.children[0].end > 0.0

    def test_span_handle_exposes_record(self):
        tracer = Tracer()
        with tracer.span("detect") as span:
            pass
        assert span.record is tracer.root


class TestExporters:
    def _traced(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("detect") as span:
            span.set(engine="faithful")
            with tracer.span("segment") as seg:
                seg.set(subtpiins=2)
        return tracer

    def test_to_jsonl_is_depth_annotated_preorder(self):
        events = [json.loads(line) for line in self._traced().to_jsonl().splitlines()]
        assert [e["name"] for e in events] == ["detect", "segment"]
        assert [e["depth"] for e in events] == [0, 1]
        assert events[0]["attributes"] == {"engine": "faithful"}
        assert all(e["duration_seconds"] >= 0.0 for e in events)

    def test_render_shows_tree_and_attributes(self):
        text = self._traced().render()
        lines = text.splitlines()
        assert lines[0].startswith("detect")
        assert lines[1].startswith("  segment")
        assert "ms" in lines[0]
        assert "[subtpiins=2]" in lines[1]

    def test_to_dict_round_trips_through_json(self):
        root = self._traced().root
        payload = json.loads(json.dumps(root.to_dict()))
        assert payload["name"] == "detect"
        assert payload["children"][0]["name"] == "segment"
        assert payload["children"][0]["attributes"] == {"subtpiins": 2}

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        root = tracer.root
        assert len(root.find("b")) == 2
        assert [name for _, name in ((d, s.name) for d, s in root.walk())] == [
            "a",
            "b",
            "b",
        ]


class TestSpanRecord:
    def test_open_span_duration_is_zero(self):
        record = SpanRecord(name="open", start=10.0)
        assert record.duration == 0.0
