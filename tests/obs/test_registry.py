"""Unit tests for the metrics registry and its two exporters."""

import pytest

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestAccessors:
    def test_counter_is_idempotent_per_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", op="add")
        b = registry.counter("repro_x_total", op="add")
        c = registry.counter("repro_x_total", op="remove")
        assert a is b
        assert a is not c
        a.inc()
        a.inc(2)
        assert a.value == 3.0
        assert c.value == 0.0

    def test_counter_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("repro_x_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4.0

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("repro_x_total")
        with pytest.raises(ValueError, match="is a counter"):
            registry.histogram("repro_x_total")

    def test_histogram_bounds_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("repro_h", buckets=(5.0, 1.0))


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram("repro_h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(106.2)
        assert histogram.cumulative_buckets() == [
            (1.0, 2),
            (10.0, 3),
            (float("inf"), 4),
        ]

    def test_boundary_value_is_inclusive(self):
        histogram = MetricsRegistry().histogram("repro_h", buckets=(1.0, 10.0))
        histogram.observe(1.0)
        assert histogram.cumulative_buckets()[0] == (1.0, 1)

    def test_to_dict_shape(self):
        histogram = MetricsRegistry().histogram("repro_h", buckets=(1.0,))
        histogram.observe(0.5)
        payload = histogram.to_dict()
        assert payload["count"] == 1
        assert payload["mean"] == pytest.approx(0.5)
        assert payload["buckets"] == {"le_1": 1, "le_inf": 1}


class TestExporters:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter(
            "repro_runs_total", help="Detection runs.", engine="fast"
        ).inc(2)
        registry.gauge("repro_uptime_seconds").set(1.5)
        registry.histogram(
            "repro_wall_ms", buckets=(1.0, 10.0), endpoint="result"
        ).observe(3.0)
        return registry

    def test_to_dict_groups_series_by_name(self):
        payload = self._populated().to_dict()
        assert payload["repro_runs_total"]["kind"] == "counter"
        assert payload["repro_runs_total"]["help"] == "Detection runs."
        series = payload["repro_runs_total"]["series"]
        assert series == [{"labels": {"engine": "fast"}, "value": 2.0}]
        histogram_series = payload["repro_wall_ms"]["series"][0]
        assert histogram_series["labels"] == {"endpoint": "result"}
        assert histogram_series["count"] == 1

    def test_prometheus_exposition_format(self):
        text = self._populated().render_prometheus()
        assert "# HELP repro_runs_total Detection runs." in text
        assert "# TYPE repro_runs_total counter" in text
        assert 'repro_runs_total{engine="fast"} 2' in text
        assert "repro_uptime_seconds 1.5" in text
        assert 'repro_wall_ms_bucket{endpoint="result",le="1"} 0' in text
        assert 'repro_wall_ms_bucket{endpoint="result",le="10"} 1' in text
        assert 'repro_wall_ms_bucket{endpoint="result",le="+Inf"} 1' in text
        assert 'repro_wall_ms_sum{endpoint="result"} 3' in text
        assert 'repro_wall_ms_count{endpoint="result"} 1' in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", endpoint='we"ird\n').inc()
        text = registry.render_prometheus()
        assert 'endpoint="we\\"ird\\n"' in text


class TestProcessRegistry:
    def test_swap_and_restore(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
