"""Unit tests for the --profile report over a span tree."""

from repro.obs.profile import SUBTPIIN_SPAN, render_profile, slowest_subtpiins
from repro.obs.tracing import SpanRecord


def _detect_tree() -> SpanRecord:
    root = SpanRecord(name="detect", start=0.0, end=1.0)
    segment = SpanRecord(name="segment", start=0.0, end=0.1)
    subs = []
    for index, duration in enumerate((0.05, 0.4, 0.2)):
        sub = SpanRecord(
            name=SUBTPIIN_SPAN,
            start=0.1,
            end=0.1 + duration,
            attributes={"index": index, "nodes": 10 + index, "trails": 4, "groups": 1},
        )
        subs.append(sub)
    root.children = [segment, *subs]
    return root


class TestSlowest:
    def test_ranks_by_duration_descending(self):
        ranked = slowest_subtpiins(_detect_tree())
        assert [span.attributes["index"] for span in ranked] == [1, 2, 0]

    def test_top_bounds_the_ranking(self):
        ranked = slowest_subtpiins(_detect_tree(), top=2)
        assert len(ranked) == 2
        assert ranked[0].attributes["index"] == 1

    def test_no_subtpiin_spans_is_empty(self):
        root = SpanRecord(name="detect", start=0.0, end=1.0)
        assert slowest_subtpiins(root) == []


class TestRenderProfile:
    def test_report_sections(self):
        text = render_profile(_detect_tree())
        assert text.startswith("stage tree (wall milliseconds)")
        assert "top 3 slowest subTPIINs" in text
        assert "total 1000.000 ms" in text

    def test_stage_times_sum_consistently(self):
        # staged = segment 100ms + subs 50+400+200ms = 750ms of 1000ms wall
        text = render_profile(_detect_tree())
        assert "staged 750.000 ms (75.0% of wall)" in text

    def test_slowest_table_carries_attributes(self):
        lines = render_profile(_detect_tree(), top=1).splitlines()
        table_row = next(line for line in lines if line.strip().startswith("1 "))
        assert "400.000" in table_row
        assert " 11 " in table_row  # nodes of index-1 sub

    def test_empty_ranking_omits_table(self):
        root = SpanRecord(name="detect", start=0.0, end=0.5)
        text = render_profile(root)
        assert "slowest subTPIINs" not in text
        assert "total 500.000 ms" in text

    def test_zero_duration_root_renders(self):
        root = SpanRecord(name="detect", start=0.0, end=0.0)
        assert "(0.0% of wall)" in render_profile(root)
