"""Unit tests for the global-traversal baseline."""

import pytest

from repro.errors import MiningError
from repro.baseline.global_traversal import (
    enumerate_trails_from,
    global_traversal_detect,
)
from repro.mining.detector import detect


class TestTrailEnumeration:
    def test_all_prefixes_emitted(self, fig6):
        trails = enumerate_trails_from(fig6.graph, "P1")
        sequences = {nodes for nodes, _closed in trails}
        assert ("P1",) in sequences
        assert ("P1", "C1") in sequences
        assert ("P1", "C1", "C2") in sequences

    def test_trading_closures_flagged(self, fig6):
        trails = enumerate_trails_from(fig6.graph, "P1")
        closed = {nodes for nodes, closed in trails if closed}
        assert ("P1", "C1", "C2", "C3") in closed
        open_trails = {nodes for nodes, closed in trails if not closed}
        assert ("P1", "C3") in open_trails


class TestRootsMode:
    @pytest.mark.parametrize("fixture", ["fig6", "fig8", "case1", "case2", "case3"])
    def test_matches_detector(self, fixture, request):
        tpiin = request.getfixturevalue(fixture)
        baseline = global_traversal_detect(tpiin, starts="roots")
        faithful = detect(tpiin)
        assert {g.key() for g in baseline.groups} == {
            g.key() for g in faithful.groups
        }
        assert baseline.suspicious_trading_arcs == faithful.suspicious_trading_arcs

    def test_small_province(self, small_province_tpiin):
        baseline = global_traversal_detect(small_province_tpiin, starts="roots")
        faithful = detect(small_province_tpiin)
        assert {g.key() for g in baseline.groups} == {
            g.key() for g in faithful.groups
        }


class TestAllMode:
    def test_superset_of_roots_groups(self, fig8):
        roots_mode = global_traversal_detect(fig8, starts="roots")
        all_mode = global_traversal_detect(fig8, starts="all")
        root_keys = {g.key() for g in roots_mode.groups}
        all_keys = {g.key() for g in all_mode.groups}
        assert root_keys <= all_keys

    def test_same_suspicious_arcs(self, fig8):
        roots_mode = global_traversal_detect(fig8, starts="roots")
        all_mode = global_traversal_detect(fig8, starts="all")
        assert (
            roots_mode.suspicious_trading_arcs == all_mode.suspicious_trading_arcs
        )

    def test_finds_interior_anchored_subgroups(self, fig6):
        # From start C1 the pair {C1,C2,C3 trail, C1..} does not exist in
        # fig6 (C1 has no influence path to C3), so counts stay equal
        # there; build a case where an interior company is an antecedent.
        from repro.fusion.tpiin import TPIIN

        t = TPIIN.build(
            persons=["p"],
            companies=["m", "c1", "c2"],
            influence=[("p", "m"), ("m", "c1"), ("m", "c2")],
            trading=[("c1", "c2")],
        )
        all_mode = global_traversal_detect(t, starts="all")
        roots_mode = global_traversal_detect(t, starts="roots")
        # The m-anchored triangle only appears in "all" mode.
        antecedents_all = {g.antecedent for g in all_mode.groups}
        antecedents_roots = {g.antecedent for g in roots_mode.groups}
        assert "m" in antecedents_all
        assert antecedents_roots == {"p"}

    def test_unknown_mode_rejected(self, fig6):
        with pytest.raises(MiningError, match="starts"):
            global_traversal_detect(fig6, starts="sideways")
