"""Unit tests for the naive polygon-pattern enumeration baseline."""

from repro.baseline.pattern_enum import enumerate_polygon_patterns
from repro.mining.detector import detect


class TestPolygonEnumeration:
    def test_fig8_finds_the_simple_groups(self, fig8):
        result = enumerate_polygon_patterns(fig8)
        got = {(frozenset(g.members), g.antecedent) for g in result.groups}
        expected = {
            (frozenset(g.members), g.antecedent)
            for g in detect(fig8).groups
            if g.is_simple and len(g.members) <= 6
        }
        assert got == expected

    def test_case2_triangle(self, case2):
        result = enumerate_polygon_patterns(case2, max_size=3)
        assert result.group_count == 1
        group = result.groups[0]
        assert group.members == frozenset({"C4", "C5", "C6"})

    def test_candidate_count_grows_with_size(self, fig8):
        small = enumerate_polygon_patterns(fig8, max_size=3)
        large = enumerate_polygon_patterns(fig8, max_size=6)
        assert large.candidates_examined > small.candidates_examined
        assert large.shapes_enumerated > small.shapes_enumerated

    def test_budget_truncation(self, fig8):
        result = enumerate_polygon_patterns(fig8, max_candidates=10)
        assert result.truncated

    def test_no_duplicates(self, fig8):
        result = enumerate_polygon_patterns(fig8)
        keys = [g.key() for g in result.groups]
        assert len(keys) == len(set(keys))

    def test_shapes_count(self, fig8):
        # k-gon has k-2 branch splits; sizes 3..6 give 1+2+3+4 = 10.
        result = enumerate_polygon_patterns(fig8, max_size=6)
        assert result.shapes_enumerated == 10
