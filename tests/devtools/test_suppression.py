"""Per-line suppression edge cases: decorated defs, multi-line spans.

A ``# reprolint: disable=`` comment silences a diagnostic anchored
anywhere on the same physical statement — the decorator lines of a
flagged def, or the closing paren of a multi-line call — but never
from inside a function *body*.
"""

import ast

import pytest

from repro.devtools.diagnostics import node_suppress_lines
from repro.devtools.walker import lint_paths


def _lint(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return lint_paths([path])


class TestNodeSuppressLines:
    def test_decorated_def_includes_decorator_and_signature_lines(self):
        tree = ast.parse(
            "@deco_one\n"  # line 1
            "@deco_two(\n"  # line 2
            "    arg,\n"  # line 3
            ")\n"  # line 4
            "def f(\n"  # line 5
            "    x,\n"  # line 6
            "):\n"  # line 7
            "    return x\n"  # line 8 (body: excluded)
        )
        fn = tree.body[0]
        assert node_suppress_lines(fn) == (1, 2, 3, 4, 5, 6, 7)

    def test_multiline_expression_covers_its_whole_span(self):
        tree = ast.parse("value = call(\n    1,\n    2,\n)\n")
        assert node_suppress_lines(tree.body[0]) == (1, 2, 3, 4)

    def test_none_and_lineless_nodes_yield_nothing(self):
        assert node_suppress_lines(None) == ()
        assert node_suppress_lines(ast.Load()) == ()


class TestDecoratedDefSuppression:
    SOURCE = (
        "import functools\n"
        "\n"
        "__all__ = []\n"
        "\n"
        "@functools.cache{comment}\n"
        "def helper():\n"
        "    return 1\n"
    )

    def test_unsuppressed_decorated_def_is_flagged(self, tmp_path):
        report = _lint(tmp_path, self.SOURCE.format(comment=""))
        assert [d.rule_id for d in report.diagnostics] == ["R004"]
        assert report.diagnostics[0].line == 6  # anchored on the def

    def test_comment_on_decorator_line_silences_def_anchor(self, tmp_path):
        report = _lint(
            tmp_path, self.SOURCE.format(comment="  # reprolint: disable=R004")
        )
        assert report.diagnostics == ()
        assert report.suppressed == 1

    def test_comment_inside_the_body_does_not_silence(self, tmp_path):
        source = (
            "import functools\n"
            "\n"
            "__all__ = []\n"
            "\n"
            "@functools.cache\n"
            "def helper():\n"
            "    return 1  # reprolint: disable=R004\n"
        )
        report = _lint(tmp_path, source)
        assert [d.rule_id for d in report.diagnostics] == ["R004"]


class TestMultiLineStatementSuppression:
    SOURCE = (
        "def _emit(rows):\n"
        "    print(\n"
        "        rows,\n"
        "    ){comment}\n"
    )

    def test_unsuppressed_multiline_call_is_flagged(self, tmp_path):
        report = _lint(tmp_path, self.SOURCE.format(comment=""))
        assert [d.rule_id for d in report.diagnostics] == ["R007"]
        assert report.diagnostics[0].line == 2

    @pytest.mark.parametrize("comment", ["  # reprolint: disable=R007"])
    def test_comment_on_closing_paren_silences(self, tmp_path, comment):
        report = _lint(tmp_path, self.SOURCE.format(comment=comment))
        assert report.diagnostics == ()
        assert report.suppressed == 1

    def test_unrelated_rule_id_does_not_silence(self, tmp_path):
        report = _lint(
            tmp_path, self.SOURCE.format(comment="  # reprolint: disable=R001")
        )
        assert [d.rule_id for d in report.diagnostics] == ["R007"]
