"""The repo gates itself: reprolint (and, when installed, mypy/ruff)
must be clean over ``src/`` so every future PR keeps the invariants."""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import lint_paths, lint_project, render_human

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def _installed(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


class TestReprolintGate:
    def test_src_tree_is_clean(self):
        report = lint_paths([SRC])
        assert report.ok, "\n" + render_human(report)

    def test_all_library_files_were_seen(self):
        report = lint_paths([SRC])
        assert report.files_checked >= 80

    def test_whole_program_pass_is_clean(self):
        # The CI invocation: both phases over every first-party tree,
        # with no help from the baseline.
        report = lint_project(
            [SRC, REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
        )
        assert report.ok, "\n" + render_human(report)


@pytest.mark.skipif(not _installed("mypy"), reason="mypy not installed")
class TestMypyGate:
    def test_strict_src_is_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--strict", "src"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(not _installed("ruff"), reason="ruff not installed")
class TestRuffGate:
    def test_ruff_check_is_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "ruff", "check", "src", "tests"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
