"""Fixture-backed detection tests for the whole-program rules R012-R015.

Each fixture tree under ``fixtures/R01x/`` is a deliberately-planted
violation set; the tests pin the exact findings (and the good twins'
silence), and a CLI-level test proves a planted violation fails the
lint run end to end.
"""

from pathlib import Path

from repro.devtools import lint_project
from repro.devtools.cli import main
from repro.devtools.config import LintConfig
from repro.devtools.project_rules import (
    DeadExportRule,
    HotPathAllocationRule,
    LayeringRule,
    LockDisciplineRule,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _run(rule, fixture_dir, **config_kwargs):
    """Lint one fixture tree with exactly one project rule."""
    root = FIXTURES / fixture_dir
    config = LintConfig(root=root, reference_roots=(), **config_kwargs)
    report = lint_project([root], rules=(), project_rules=(rule,), config=config)
    return report.diagnostics


def _findings(diagnostics):
    return [(Path(d.path).name, d.line, d.rule_id) for d in diagnostics]


class TestLayering:
    def test_upward_import_and_unassigned_packages_flagged(self):
        diags = _run(LayeringRule(), "R012")
        by_file = {}
        for diag in diags:
            by_file.setdefault(Path(diag.path).name, []).append(diag)
        assert set(by_file) == {"bad.py", "orphan.py"}

        bad = sorted(by_file["bad.py"], key=lambda d: d.line)
        assert [d.line for d in bad] == [3, 4]
        assert "layer violation" in bad[0].message
        assert "'graph'" in bad[0].message and "'service'" in bad[0].message
        assert "not assigned to a layer" in bad[1].message

        (orphan,) = by_file["orphan.py"]
        assert "'widgets' is not assigned" in orphan.message

    def test_function_body_imports_are_not_judged(self):
        diags = _run(LayeringRule(), "R012")
        # bad.py's nested ``from repro.service.locks import ...`` sits in
        # a function body (line 10): R010's domain, never R012's.
        assert all(d.line != 10 for d in diags)

    def test_downward_import_is_clean(self):
        diags = _run(LayeringRule(), "R012")
        assert all(Path(d.path).name != "good.py" for d in diags)


class TestDeadExports:
    def test_only_the_dead_surface_is_flagged(self):
        diags = _run(DeadExportRule(), "R013", entry_points=())
        flagged = {(Path(d.path).name, d.message.split("'")[1]) for d in diags}
        assert flagged == {
            ("core.py", "dead_fn"),  # nothing references it at all
            ("__init__.py", "stale_fn"),  # dead through both import paths
        }

    def test_live_reexport_and_signature_liveness_survive(self):
        diags = _run(DeadExportRule(), "R013", entry_points=())
        names = {d.message.split("'")[1] for d in diags}
        # used_fn: imported by user.py; ReportType: a return annotation
        # of core's own interface; the __init__ re-export of used_fn
        # inherits the home symbol's liveness.
        assert names.isdisjoint({"used_fn", "ReportType"})


class TestLockDiscipline:
    def test_every_planted_violation_fires(self):
        diags = _run(
            LockDisciplineRule(),
            "R014",
            blocking_calls=("self._wal.append",),
        )
        assert all(Path(d.path).name == "bad.py" for d in diags)
        messages = sorted(d.message for d in diags)
        assert len(diags) == 5
        assert any("read of lock-guarded 'self._table'" in m for m in messages)
        assert any("mutation of lock-guarded 'self._table'" in m for m in messages)
        assert any("nested acquisition" in m for m in messages)
        assert any("blocking I/O 'self._wal.append'" in m for m in messages)
        assert any("'_compact_locked' (assumes the write lock)" in m for m in messages)

    def test_disciplined_twin_is_clean(self):
        diags = _run(
            LockDisciplineRule(),
            "R014",
            blocking_calls=("self._wal.append",),
        )
        assert all(Path(d.path).name != "good.py" for d in diags)

    def test_classes_without_optin_are_ignored(self, tmp_path):
        service = tmp_path / "repro" / "service"
        service.mkdir(parents=True)
        mod = service / "plain.py"
        mod.write_text(
            "class Plain:\n"
            "    def touch(self):\n"
            "        self._table = {}\n",
            encoding="utf-8",
        )
        config = LintConfig(root=tmp_path, reference_roots=())
        report = lint_project(
            [mod], rules=(), project_rules=(LockDisciplineRule(),), config=config
        )
        assert report.diagnostics == ()


class TestHotPathAllocation:
    HOT = ("repro.hot::kernel",)

    def test_allocations_and_repeated_lookup_flagged(self):
        diags = _run(HotPathAllocationRule(), "R015", hot_functions=self.HOT)
        messages = sorted(d.message for d in diags)
        assert len(diags) == 3
        assert any("ListComp" in m for m in messages)
        assert any("'list()'" in m for m in messages)
        assert any("'table.scale' is looked up 2 times" in m for m in messages)

    def test_unmarked_function_is_never_flagged(self):
        diags = _run(HotPathAllocationRule(), "R015", hot_functions=self.HOT)
        # ``cold`` has the same shapes but is not in the hot set.
        kernel_end = 11
        assert all(d.line <= kernel_end for d in diags)


class TestEndToEnd:
    def test_planted_violation_fails_the_cli(self, capsys):
        bad = FIXTURES / "R014" / "repro" / "service" / "bad.py"
        code = main(["--select", "R014", "--no-baseline", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "R014" in out

    def test_suppression_comment_silences_project_rule(self, tmp_path):
        service = tmp_path / "repro" / "service"
        service.mkdir(parents=True)
        mod = service / "sup.py"
        mod.write_text(
            "class Sup:\n"
            '    _lock_guarded = frozenset({"_table"})\n'
            "\n"
            "    def peek(self):\n"
            "        return self._table  # reprolint: disable=R014\n",
            encoding="utf-8",
        )
        config = LintConfig(root=tmp_path, reference_roots=())
        report = lint_project(
            [mod], rules=(), project_rules=(LockDisciplineRule(),), config=config
        )
        assert report.diagnostics == ()
        assert report.suppressed == 1
