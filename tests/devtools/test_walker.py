"""Walker behavior: suppression comments, parse errors, reports, renderers."""

import json
from pathlib import Path

from repro.devtools import lint_file, lint_paths, render_human, render_json
from repro.devtools.walker import PARSE_ERROR_ID, iter_python_files, suppressed_rules

FIXTURES = Path(__file__).parent / "fixtures"


class TestSuppression:
    def test_disable_comment_silences_matching_rule(self):
        diagnostics = lint_file(FIXTURES / "misc" / "suppressed.py")
        assert [(d.rule_id, d.line) for d in diagnostics] == [("R007", 11)]

    def test_suppressed_count_reported(self):
        report = lint_paths([FIXTURES / "misc" / "suppressed.py"])
        assert report.suppressed == 3
        assert len(report.diagnostics) == 1

    def test_suppression_table_parsing(self):
        table = suppressed_rules(
            "x = 1  # reprolint: disable=R001\n"
            "y = 2\n"
            "z = 3  # reprolint: disable=R002, R007\n"
            "w = 4  # reprolint: disable=all\n"
        )
        assert table == {
            1: frozenset({"R001"}),
            3: frozenset({"R002", "R007"}),
            4: frozenset({"ALL"}),
        }


class TestParseErrors:
    def test_unparseable_file_yields_r000(self):
        diagnostics = lint_file(FIXTURES / "misc" / "unparseable.py")
        assert len(diagnostics) == 1
        assert diagnostics[0].rule_id == PARSE_ERROR_ID
        assert "does not parse" in diagnostics[0].message

    def test_parse_error_marks_report_not_ok(self):
        report = lint_paths([FIXTURES / "misc" / "unparseable.py"])
        assert not report.ok


class TestWalk:
    def test_directory_walk_is_recursive_and_counts_files(self):
        report = lint_paths([FIXTURES / "R002"])
        assert report.files_checked == 3

    def test_duplicate_inputs_deduplicated(self):
        path = FIXTURES / "R007" / "bad.py"
        report = lint_paths([path, path])
        assert report.files_checked == 1

    def test_iter_python_files_sorted(self):
        files = list(iter_python_files([FIXTURES / "R001"]))
        assert files == sorted(files)
        assert all(f.suffix == ".py" for f in files)

    def test_by_rule_summary(self):
        report = lint_paths([FIXTURES / "R007" / "bad.py"])
        assert report.by_rule() == {"R007": 2}


class TestRenderers:
    def test_human_render_clean(self):
        report = lint_paths([FIXTURES / "R007" / "good.py"])
        text = render_human(report)
        assert "1 file(s) clean" in text

    def test_human_render_findings_summary(self):
        report = lint_paths([FIXTURES / "R007" / "bad.py"])
        text = render_human(report)
        assert "R007 x2" in text
        assert "bad.py:5:" in text

    def test_json_render_round_trips(self):
        report = lint_paths([FIXTURES / "R007" / "bad.py"])
        payload = json.loads(render_json(report))
        assert payload["count"] == 2
        assert payload["by_rule"] == {"R007": 2}
        assert payload["files_checked"] == 1
        first = payload["diagnostics"][0]
        assert set(first) == {"path", "line", "col", "rule_id", "message", "hint"}
