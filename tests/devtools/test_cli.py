"""CLI smoke tests for ``repro-lint`` (via ``repro.devtools.cli.main``)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.cli import build_parser, main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def _env_with_src() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


class TestBuildParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.paths == ["src"]
        assert args.format == "human"
        assert not args.no_project and not args.update_baseline

    def test_sarif_format_is_accepted(self):
        args = build_parser().parse_args(["--format", "sarif", "src", "tests"])
        assert args.format == "sarif"
        assert args.paths == ["src", "tests"]


class TestMain:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([str(FIXTURES / "R007" / "good.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one(self, capsys):
        assert main([str(FIXTURES / "R007" / "bad.py")]) == 1
        out = capsys.readouterr().out
        assert "R007" in out

    def test_json_output(self, capsys):
        assert main(["--json", str(FIXTURES / "R007" / "bad.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R009"):
            assert rule_id in out

    def test_select_restricts_rules(self, capsys):
        # R001/bad.py also has R004-able content, but only R007 is asked for
        assert main(["--select", "R007", str(FIXTURES / "R001" / "bad.py")]) == 0
        capsys.readouterr()

    def test_select_unknown_rule_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--select", "R999", str(FIXTURES)])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_select_empty_is_usage_error(self, capsys):
        # '--select ""' must not silently lint with zero rules and pass
        with pytest.raises(SystemExit) as excinfo:
            main(["--select", "", str(FIXTURES / "R007" / "bad.py")])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_missing_path_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([str(FIXTURES / "does_not_exist.py")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "does_not_exist.py" in err

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "repro-lint" in capsys.readouterr().out


class TestSubprocess:
    def test_module_invocation_smoke(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.cli", "--help"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=_env_with_src(),
        )
        assert proc.returncode == 0
        assert "repro-lint" in proc.stdout

    def test_module_invocation_flags_fixture(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.devtools.cli",
                str(FIXTURES / "R006" / "bad.py"),
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=_env_with_src(),
        )
        assert proc.returncode == 1
        assert "R006" in proc.stdout
