"""Baseline workflow: load/apply/update semantics and CLI integration."""

import json
from pathlib import Path

import pytest

from repro.devtools.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.devtools.cli import main
from repro.devtools.diagnostics import Diagnostic

FIXTURES = Path(__file__).parent / "fixtures"


def _diag(message="boom", line=1, rule_id="R007", path="src/mod.py"):
    return Diagnostic(
        path=path, line=line, col=1, rule_id=rule_id, message=message
    )


class TestLoad:
    def test_missing_file_is_the_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_roundtrip_through_render(self, tmp_path):
        diags = (_diag("a"), _diag("a"), _diag("b", line=9))
        path = tmp_path / "bl.json"
        write_baseline(diags, path)
        assert load_baseline(path) == {
            "src/mod.py": {"R007": {"a": 2, "b": 1}}
        }

    def test_bad_version_is_rejected(self, tmp_path):
        path = tmp_path / "bl.json"
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(BaselineError, match="unsupported format"):
            load_baseline(path)

    def test_malformed_document_is_rejected(self, tmp_path):
        path = tmp_path / "bl.json"
        path.write_text(json.dumps({"version": 1, "findings": {"f.py": []}}))
        with pytest.raises(BaselineError, match="malformed"):
            load_baseline(path)


class TestApply:
    def test_counts_are_consumed_per_diagnostic(self):
        baseline = {"src/mod.py": {"R007": {"boom": 2}}}
        diags = (_diag(), _diag(), _diag())
        kept, absorbed = apply_baseline(diags, baseline)
        # Two absorbed by the recorded count; the third is NEW debt.
        assert absorbed == 2
        assert kept == (diags[2],)

    def test_message_matching_survives_line_shifts(self):
        baseline = {"src/mod.py": {"R007": {"boom": 1}}}
        kept, absorbed = apply_baseline((_diag(line=999),), baseline)
        assert absorbed == 1 and kept == ()

    def test_unrelated_findings_pass_through(self):
        baseline = {"src/mod.py": {"R007": {"boom": 1}}}
        other = _diag(message="different", rule_id="R009")
        kept, absorbed = apply_baseline((other,), baseline)
        assert absorbed == 0 and kept == (other,)

    def test_stale_entries_vanish_on_update(self):
        # render_baseline writes only *current* findings: fixing one and
        # regenerating prunes its stale entry.
        doc = json.loads(render_baseline((_diag("still-here"),)))
        assert doc["findings"] == {"src/mod.py": {"R007": {"still-here": 1}}}


class TestCLIWorkflow:
    BAD = str(FIXTURES / "R007" / "bad.py")

    def test_update_then_absorb_then_strict(self, tmp_path, capsys):
        bl = str(tmp_path / "bl.json")
        # 1. Record the current findings as accepted debt.
        assert main([self.BAD, "--no-project", "--baseline", bl, "--update-baseline"]) == 0
        assert "wrote baseline" in capsys.readouterr().out
        # 2. The same findings are absorbed: the run is clean.
        assert main([self.BAD, "--no-project", "--baseline", bl]) == 0
        assert "baselined" in capsys.readouterr().out
        # 3. --no-baseline reports them all again.
        assert main([self.BAD, "--no-project", "--no-baseline"]) == 1
        capsys.readouterr()

    def test_corrupt_baseline_is_a_usage_error(self, tmp_path, capsys):
        bl = tmp_path / "bl.json"
        bl.write_text("{\"version\": 99}")
        with pytest.raises(SystemExit) as excinfo:
            main([self.BAD, "--no-project", "--baseline", str(bl)])
        assert excinfo.value.code == 2
        capsys.readouterr()
