import numpy as np

__all__ = ["sample"]


def sample(seed: int) -> np.random.Generator:
    rng = np.random.default_rng(seed)
    bitgen = np.random.PCG64(seed)
    return np.random.Generator(bitgen) if seed % 2 else rng
