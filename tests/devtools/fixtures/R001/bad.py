import random  # line 1: stdlib random import

import numpy as np
from numpy import random as npr


def sample():
    rng = np.random.default_rng()  # line 8: unseeded default_rng
    np.random.shuffle([1, 2, 3])  # line 9: legacy global-state fn
    npr.rand(3)  # line 10: legacy fn through alias
    return rng, random.random()
