"""Mirrors repro/datagen/rng.py: the one module allowed raw entropy."""

import random

import numpy as np

__all__ = ["derive"]


def derive() -> float:
    rng = np.random.default_rng()
    return rng.random() + random.random()
