"""R015 fixture: per-iteration allocation in a marked hot loop."""


def kernel(rows, table):
    acc = 0
    for row in rows:
        squares = [v * v for v in row]  # comprehension per iteration
        acc += len(list(row))  # list() call per iteration
        acc += table.scale * row[0]  # table.scale looked up ...
        acc += table.scale * len(squares)  # ... twice per iteration
    return acc


def cold(rows):
    # Identical shapes, but not marked hot: never flagged.
    out = []
    for row in rows:
        out.append([v * v for v in row])
    return out
