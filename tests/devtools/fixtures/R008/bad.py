__all__ = ["classify"]


def classify(arc_color, node_color):
    if arc_color == "IN":  # line 5
        kind = "influence"
    elif "TR" != arc_color:  # line 7
        kind = "other"
    if node_color in ("Person", "Company"):  # line 9 (two findings)
        kind = "known"
    return kind
