from repro.model.colors import EColor, VColor

__all__ = ["classify"]


def classify(arc_color, node_color, label):
    if arc_color == EColor.INFLUENCE:
        kind = "influence"
    if node_color in (VColor.PERSON, VColor.COMPANY):
        kind = "known"
    # string-to-string comparisons are fine, as are unrelated literals
    if label == "TRADE" or "IN" == "IN":
        kind = "literal"
    return kind
