__all__ = ["report"]


def report(groups):
    print(f"{len(groups)} groups")  # line 5
    for group in groups:
        print(group)  # line 7
