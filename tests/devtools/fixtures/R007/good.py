__all__ = ["report"]


def report(groups):
    return "\n".join(str(group) for group in groups)
