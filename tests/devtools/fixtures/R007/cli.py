__all__ = ["main"]


def main():
    print("cli.py modules are the sanctioned stdout surface")
    return 0
