"""R013 fixture: live, dead, signature-live and re-exported symbols."""

__all__ = ["used_fn", "dead_fn", "stale_fn", "ReportType"]


class ReportType:
    pass


def used_fn() -> int:
    return 1


def dead_fn() -> int:
    # Nothing anywhere references this: a dead export.
    return 2


def stale_fn() -> int:
    # Only the package __init__ re-exports this; the re-export is the
    # dead surface and is flagged there, not here.
    return 3


def _factory() -> ReportType:
    # ReportType is never imported elsewhere, but it is the return type
    # of this module's own interface: structurally reachable, not dead.
    return ReportType()
