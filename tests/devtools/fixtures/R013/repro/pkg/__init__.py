"""R013 fixture package root: one live re-export, one dead one.

``used_fn`` is referenced through its home module by ``user.py``, so
the aggregated path here is a style choice and stays.  ``stale_fn``
has no reader through either path: the re-export is dead.
"""

from repro.pkg.core import stale_fn, used_fn

__all__ = ["stale_fn", "used_fn"]
