"""R013 fixture: the cross-module reader keeping ``used_fn`` alive."""

from repro.pkg.core import used_fn


def _consume() -> int:
    return used_fn()
