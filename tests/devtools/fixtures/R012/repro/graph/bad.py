"""R012 fixture: a low-layer module importing upward."""

from repro.service.config import ServiceConfig  # graph -> service: violation
import repro.widgets.gizmo  # target package not assigned to any layer


def lowlevel() -> "ServiceConfig":
    def _late():
        # Function-body imports are R010's domain, never R012's.
        from repro.service.locks import ReadWriteLock

        return ReadWriteLock

    return _late()
