"""R012 fixture: a high-layer module importing downward is fine."""

from repro.graph.digraph import DiGraph


def highlevel() -> DiGraph:
    return DiGraph()
