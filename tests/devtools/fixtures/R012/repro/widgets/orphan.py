"""R012 fixture: a module in a package no layer declares."""

VALUE = 1
