from dataclasses import dataclass

__all__ = ["Record"]


@dataclass
class Record:
    """slots is only mandated inside graph/ and mining/."""

    value: int
