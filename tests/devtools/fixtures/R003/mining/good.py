from dataclasses import dataclass

__all__ = ["Lean", "LeanFrozen", "Plain"]


@dataclass(slots=True)
class Lean:
    node: str


@dataclass(frozen=True, slots=True)
class LeanFrozen:
    node: str


class Plain:
    """Non-dataclass classes are out of scope."""
