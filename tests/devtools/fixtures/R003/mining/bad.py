import dataclasses
from dataclasses import dataclass

__all__ = ["Bare", "FrozenOnly", "SlotsOff", "Qualified"]


@dataclass
class Bare:  # line 7: bare decorator
    node: str


@dataclass(frozen=True)
class FrozenOnly:  # line 12: call form without slots
    node: str


@dataclass(slots=False)
class SlotsOff:  # line 17: slots explicitly disabled
    node: str


@dataclasses.dataclass
class Qualified:  # line 22: qualified bare decorator
    node: str
