__all__ = ["load", "tidy"]


def load(path):
    try:
        return open(path).read()
    except:  # line 7: bare except
        return None


def tidy(handle):
    try:
        handle.close()
    except Exception:  # line 14: broad + swallowed
        pass
    try:
        handle.flush()
    except (ValueError, BaseException):  # line 18: broad inside tuple
        """Docstring-only bodies swallow too."""
