import logging

__all__ = ["load", "tidy"]


def load(path, cache):
    try:
        return cache[path]
    except KeyError:  # narrow + pass is idiomatic
        pass
    return None


def tidy(handle):
    try:
        handle.close()
    except Exception as exc:  # broad but handled, not swallowed
        logging.getLogger(__name__).warning("close failed: %s", exc)
