from dataclasses import dataclass, field, replace

__all__ = ["Frozen", "rescaled"]


@dataclass(frozen=True, slots=True)
class Frozen:
    score: float
    doubled: float = field(init=False)

    def __post_init__(self):
        object.__setattr__(self, "doubled", self.score * 2)

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)


def rescaled(record, factor):
    return replace(record, score=record.score * factor)
