from dataclasses import dataclass

__all__ = ["Frozen", "thaw"]


@dataclass(frozen=True, slots=True)
class Frozen:
    score: float

    def rescale(self, factor):
        object.__setattr__(self, "score", self.score * factor)  # line 11


def thaw(record):
    object.__setattr__(record, "score", 0.0)  # line 15
