def visible():
    return 1
