import json

__all__ = ["CONSTANT", "helper", "__version__"]

__version__ = "1.0"

CONSTANT = 3


def helper():
    return json.dumps(CONSTANT)


def _private():
    return 4
