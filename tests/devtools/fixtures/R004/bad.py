__all__ = [
    "exported_but_missing",  # phantom export
    "helper",
    "helper",  # duplicate entry
]


def helper():
    return 1


def forgotten():  # line 12: public but not exported
    return 2
