__all__ = ["walk", "Wrapper"]


def walk(root):
    stack = [root]
    while stack:
        node = stack.pop()
        stack.extend(node.children)


class Wrapper:
    def nodes(self):
        # delegation through an attribute chain is not recursion
        return self.graph.nodes()
