__all__ = ["walk", "Tree"]


def walk(node):
    for child in node.children:
        walk(child)  # line 6: direct recursion


class Tree:
    def count(self):
        total = 1
        for child in self.children:
            total += child.count()  # line 13: recursion via bare-name receiver
        return total
