__all__ = ["walk"]


def walk(node):
    # recursion is only banned inside graph/, fusion/, mining/
    for child in node.children:
        walk(child)
