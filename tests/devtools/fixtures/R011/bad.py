"""Bad: imports and calls the deprecated fast_detect entry point."""

from repro.mining.fast import fast_detect

import repro


def batch(tpiin):
    return fast_detect(tpiin)


def batch_via_package(tpiin):
    return repro.fast_detect(tpiin, collect_groups=False)
