"""Good: uses the consolidated detect() options API."""

from repro.mining.detector import detect
from repro.mining.options import DetectOptions, Engine


def batch(tpiin):
    return detect(tpiin, engine=Engine.FAST)


def batch_with_options(tpiin):
    return detect(tpiin, options=DetectOptions(engine=Engine.FAST, collect_groups=False))


def locally_named(tpiin):
    # A non-first-party helper that merely shares the name is fine.
    def fast_detect(t):
        return t

    return fast_detect(tpiin)
