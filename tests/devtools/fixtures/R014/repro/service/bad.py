"""R014 fixture: every way to get the lock protocol wrong."""


class BadService:
    _lock_guarded = frozenset({"_table", "_closed"})

    def __init__(self, lock, wal):
        # __init__ runs before the instance is shared: exempt.
        self._lock = lock
        self._wal = wal
        self._table = {}
        self._closed = False

    def peek(self):
        return self._table  # read without holding the lock

    def poke(self):
        with self._lock.read():
            self._table = {}  # mutation under the read lock

    def nested(self):
        with self._lock.read():
            with self._lock.write():  # nested acquisition: deadlock
                pass

    def flush(self, record):
        with self._lock.write():
            self._wal.append(record)  # blocking I/O under the lock

    def outside(self):
        self._compact_locked()  # assumes the write lock; none held

    def _compact_locked(self):
        self._table = {}
