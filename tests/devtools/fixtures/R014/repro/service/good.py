"""R014 fixture: the same shapes done by the book."""


class GoodService:
    _lock_guarded = frozenset({"_table", "_closed"})

    def __init__(self, lock, wal):
        self._lock = lock
        self._wal = wal
        self._table = {}
        self._closed = False

    def peek(self):
        with self._lock.read():
            return dict(self._table)

    def poke(self, key, value):
        with self._lock.write():
            self._table[key] = value
            self._compact_locked()

    def flush(self, record):
        with self._lock.write():
            pending = dict(self._table)
        # Blocking I/O happens outside the critical section.
        self._wal.append(pending)

    def is_closed_rlocked(self):
        return self._closed

    def status(self):
        with self._lock.read():
            return self.is_closed_rlocked()

    def _compact_locked(self):
        self._table = {}
