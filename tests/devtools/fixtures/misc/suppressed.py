__all__ = ["report", "noisy"]


def report(groups):
    print(len(groups))  # reprolint: disable=R007
    print("partially silenced")  # reprolint: disable=R001,R007


def noisy(groups):
    print(groups)  # reprolint: disable=all
    print("wrong rule id does not silence")  # reprolint: disable=R001
