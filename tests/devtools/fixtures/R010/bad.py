"""Bad: first-party imports buried in function bodies."""


def load_detector():
    import repro.mining.incremental

    return repro.mining.incremental


def run_detection(tpiin):
    from repro.mining.fast import fast_detect

    return fast_detect(tpiin)


def outer():
    def inner():
        from repro.graph.digraph import DiGraph

        return DiGraph

    return inner


def relative_variant():
    from .detector import detect

    return detect
