"""Good: first-party imports at module scope; lazy stdlib/third-party
imports in function bodies are out of scope for R010; a genuine cycle
breaker is suppressed with a citation."""

from repro.mining.fast import fast_detect

__all__ = ["lazy_stdlib", "run", "suppressed_cycle_breaker"]


def run(tpiin):
    return fast_detect(tpiin)


def lazy_stdlib():
    import json
    from collections import Counter

    return json, Counter


def suppressed_cycle_breaker():
    # detector <-> fast would cycle at module scope
    from repro.mining.fast import fast_detect  # reprolint: disable=R010

    return fast_detect
