import numpy as np
from numpy import linalg

__all__ = ["norm"]


def norm(values):
    # 'scipyish' prefixes must not match the banned module names
    import scipyish  # noqa: F401

    return linalg.norm(np.asarray(values))
