import networkx  # line 1
import networkx as nx  # line 2
from scipy.sparse import csr_matrix  # line 3

__all__ = ["convert"]


def convert(graph):
    import scipy  # line 9: function-level imports are caught too

    return csr_matrix(nx.to_numpy_array(networkx.Graph(graph))), scipy
