"""Unit tests for phase 1: module naming and the project index."""

import ast

import pytest

from repro.devtools.project import build_index, module_name_for


def _index(files, subjects=None):
    triples = [(path, text, ast.parse(text)) for path, text in files.items()]
    return build_index(triples, subjects if subjects is not None else files.keys())


class TestModuleNameFor:
    @pytest.mark.parametrize(
        ("path", "expected"),
        [
            ("src/repro/graph/csr.py", "repro.graph.csr"),
            ("src/repro/graph/__init__.py", "repro.graph"),
            ("tests/mining/test_engine.py", "tests.mining.test_engine"),
            ("benchmarks/bench_mining.py", "benchmarks.bench_mining"),
            # The *last* root marker wins: fixture trees opt in by layout.
            (
                "tests/devtools/fixtures/R012/repro/graph/bad.py",
                "repro.graph.bad",
            ),
            ("setup.py", None),
            ("scripts/tools/helper.py", None),
        ],
    )
    def test_mapping(self, path, expected):
        assert module_name_for(path) == expected


class TestImports:
    def test_module_level_vs_function_body(self):
        idx = _index(
            {
                "src/repro/a.py": (
                    "import repro.b\n"
                    "def f():\n"
                    "    from repro.c import thing\n"
                ),
            }
        )
        edges = idx.modules["repro.a"].imports
        assert [(e.target, e.in_function) for e in edges] == [
            ("repro.b", False),
            ("repro.c", True),
        ]

    def test_third_party_imports_are_ignored(self):
        idx = _index({"src/repro/a.py": "import numpy\nfrom os import path\n"})
        assert idx.modules["repro.a"].imports == ()

    def test_relative_import_resolves_against_package(self):
        idx = _index(
            {"src/repro/pkg/sub.py": "from . import sibling\nfrom .other import x\n"}
        )
        info = idx.modules["repro.pkg.sub"]
        assert {e.target for e in info.imports} == {"repro.pkg", "repro.pkg.other"}


class TestReferences:
    def test_from_import_records_reference_and_binding(self):
        idx = _index(
            {"src/repro/a.py": "from repro.graph.csr import CSRGraph as CG\n"}
        )
        info = idx.modules["repro.a"]
        assert ("repro.graph.csr", "CSRGraph") in info.references
        assert info.import_bindings["CG"] == ("repro.graph.csr", "CSRGraph")

    def test_attribute_chain_through_module_alias(self):
        idx = _index(
            {
                "src/repro/a.py": (
                    "import repro.graph.csr as csr\n"
                    "g = csr.CSRGraph()\n"
                ),
            }
        )
        assert ("repro.graph.csr", "CSRGraph") in idx.modules["repro.a"].references

    def test_references_to_excluding_drops_one_module(self):
        idx = _index(
            {
                "src/repro/pkg/__init__.py": "from repro.pkg.core import helper\n",
                "src/repro/pkg/core.py": "def helper():\n    return 1\n",
            }
        )
        assert idx.references_to("repro.pkg.core", "helper")
        assert not idx.references_to(
            "repro.pkg.core", "helper", excluding="repro.pkg"
        )

    def test_star_import_keeps_every_export_alive(self):
        idx = _index(
            {
                "src/repro/a.py": "from repro.b import *\n",
                "src/repro/b.py": "def anything():\n    return 1\n",
            }
        )
        assert idx.references_to("repro.b", "anything")


class TestSignatureNames:
    def test_annotations_defaults_and_bases_are_harvested(self):
        idx = _index(
            {
                "src/repro/a.py": (
                    "class Base:\n    pass\n"
                    "class Child(Base):\n    pass\n"
                    "DEFAULT = 3\n"
                    "def f(x: Child = None, *, y=DEFAULT) -> 'Forward':\n"
                    "    local: NotASignature = 0\n"
                    "    return x\n"
                ),
            }
        )
        names = idx.modules["repro.a"].signature_names
        assert {"Base", "Child", "DEFAULT", "Forward"} <= names

    def test_string_annotation_tokens_count(self):
        idx = _index(
            {
                "src/repro/a.py": 'def f() -> "dict[str, Payload]":\n    return {}\n'
            }
        )
        assert "Payload" in idx.modules["repro.a"].signature_names


class TestSubjects:
    def test_reference_files_are_indexed_but_not_subjects(self):
        idx = _index(
            {
                "src/repro/a.py": "import repro.b\n",
                "src/repro/b.py": "X = 1\n",
            },
            subjects=["src/repro/a.py"],
        )
        assert idx.is_subject("repro.a")
        assert not idx.is_subject("repro.b")
        assert idx.has_module("repro.b")
        assert [m.module for m in idx.subject_modules()] == ["repro.a"]
