"""Per-rule fixture tests: every rule fires on its bad snippet with the
exact id and line numbers, and stays silent on the matching good one."""

from pathlib import Path

import pytest

from repro.devtools import get_rule, lint_file

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (relative bad fixture, expected diagnostic lines)
BAD_CASES = {
    "R001": ("R001/bad.py", [1, 8, 9, 10]),
    "R002": ("R002/mining/bad.py", [6, 13]),
    "R003": ("R003/mining/bad.py", [7, 12, 17, 22]),
    "R004": ("R004/bad.py", [1, 1, 12]),
    "R005": ("R005/bad.py", [1, 2, 3, 9]),
    "R006": ("R006/bad.py", [7, 14, 18]),
    "R007": ("R007/bad.py", [5, 7]),
    "R008": ("R008/bad.py", [5, 7, 9, 9]),
    "R009": ("R009/bad.py", [11, 15]),
    "R010": ("R010/bad.py", [5, 11, 18, 26]),
    "R011": ("R011/bad.py", [3, 9, 13]),
}

#: rule id -> fixtures that must stay perfectly silent under that rule
GOOD_CASES = {
    "R001": ["R001/good.py", "R001/datagen/rng.py"],
    "R002": ["R002/mining/good.py", "R002/good_outside_scope.py"],
    "R003": ["R003/mining/good.py", "R003/good_outside_scope.py"],
    "R004": ["R004/good.py"],
    "R005": ["R005/good.py"],
    "R006": ["R006/good.py"],
    "R007": ["R007/good.py", "R007/cli.py"],
    "R008": ["R008/good.py"],
    "R009": ["R009/good.py"],
    "R010": ["R010/good.py"],
    "R011": ["R011/good.py"],
}


def _run(rule_id: str, relative: str):
    return lint_file(FIXTURES / relative, rules=[get_rule(rule_id)])


@pytest.mark.parametrize("rule_id", sorted(BAD_CASES))
def test_rule_fires_on_bad_fixture(rule_id):
    relative, expected_lines = BAD_CASES[rule_id]
    diagnostics = _run(rule_id, relative)
    assert [d.rule_id for d in diagnostics] == [rule_id] * len(expected_lines)
    assert [d.line for d in diagnostics] == expected_lines


@pytest.mark.parametrize(
    "rule_id, relative",
    [(rule_id, rel) for rule_id, rels in sorted(GOOD_CASES.items()) for rel in rels],
)
def test_rule_silent_on_good_fixture(rule_id, relative):
    assert _run(rule_id, relative) == []


@pytest.mark.parametrize("rule_id", sorted(BAD_CASES))
def test_diagnostics_carry_location_and_hint(rule_id):
    relative, _ = BAD_CASES[rule_id]
    for diag in _run(rule_id, relative):
        assert diag.path.endswith(relative)
        assert diag.line >= 1 and diag.col >= 1
        assert diag.message
        assert diag.hint
        rendered = diag.render()
        assert f"{diag.line}:{diag.col}" in rendered
        assert rule_id in rendered


def test_every_registered_rule_has_fixture_coverage():
    from repro.devtools import all_rules

    covered = set(BAD_CASES) & set(GOOD_CASES)
    assert {rule.rule_id for rule in all_rules()} == covered
