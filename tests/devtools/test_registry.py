"""The rule registries: every catalogued class, both phases, one id each."""

from repro.devtools import all_project_rules, all_rules, get_rule
from repro.devtools.project_rules import (
    DeadExportRule,
    HotPathAllocationRule,
    LayeringRule,
    LockDisciplineRule,
)
from repro.devtools.rules import (
    DataclassSlotsRule,
    DunderAllRule,
    ForbiddenDependencyRule,
    FrozenMutationRule,
    NoBareExceptRule,
    NoDeprecatedDetectRule,
    NoFunctionBodyImportRule,
    NoPrintRule,
    NoRecursiveTraversalRule,
    RawColorLiteralRule,
    UnseededRandomnessRule,
)

PER_FILE = {
    "R001": UnseededRandomnessRule,
    "R002": NoRecursiveTraversalRule,
    "R003": DataclassSlotsRule,
    "R004": DunderAllRule,
    "R005": ForbiddenDependencyRule,
    "R006": NoBareExceptRule,
    "R007": NoPrintRule,
    "R008": RawColorLiteralRule,
    "R009": FrozenMutationRule,
    "R010": NoFunctionBodyImportRule,
    "R011": NoDeprecatedDetectRule,
}

PROJECT = {
    "R012": LayeringRule,
    "R013": DeadExportRule,
    "R014": LockDisciplineRule,
    "R015": HotPathAllocationRule,
}


class TestCatalogue:
    def test_per_file_registry_is_exactly_the_catalogue(self):
        registered = {rule.rule_id: type(rule) for rule in all_rules()}
        assert registered == PER_FILE

    def test_project_registry_is_exactly_the_catalogue(self):
        registered = {rule.rule_id: type(rule) for rule in all_project_rules()}
        assert registered == PROJECT

    def test_ids_are_unique_across_both_phases(self):
        ids = [r.rule_id for r in (*all_rules(), *all_project_rules())]
        assert len(ids) == len(set(ids))

    def test_get_rule_resolves_both_phases(self):
        assert isinstance(get_rule("R007"), NoPrintRule)
        assert isinstance(get_rule("R014"), LockDisciplineRule)

    def test_every_rule_carries_id_and_title(self):
        for rule in (*all_rules(), *all_project_rules()):
            assert rule.rule_id.startswith("R") and len(rule.rule_id) == 4
            assert rule.title
