"""SARIF 2.1.0 renderer: structure, rule catalogue, determinism."""

import json

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.sarif import render_sarif
from repro.devtools.walker import LintReport


def _diag(rule_id="R007", line=3, hint=""):
    return Diagnostic(
        path="src/repro/sample.py",
        line=line,
        col=5,
        rule_id=rule_id,
        message="something happened",
        hint=hint,
    )


def _log(report):
    return json.loads(render_sarif(report))


class TestStructure:
    def test_top_level_shape(self):
        log = _log(LintReport(diagnostics=(), files_checked=0))
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "reprolint"
        assert run["columnKind"] == "unicodeCodePoints"
        assert run["results"] == []

    def test_rule_catalogue_covers_every_rule(self):
        log = _log(LintReport(diagnostics=(), files_checked=0))
        ids = [entry["id"] for entry in log["runs"][0]["tool"]["driver"]["rules"]]
        assert ids == sorted(ids)
        for rule_id in ("R000", "R001", "R011", "R012", "R013", "R014", "R015"):
            assert rule_id in ids
        for entry in log["runs"][0]["tool"]["driver"]["rules"]:
            assert entry["shortDescription"]["text"]
            assert entry["defaultConfiguration"]["level"] == "error"

    def test_result_location_and_rule_index(self):
        report = LintReport(diagnostics=(_diag(),), files_checked=1)
        log = _log(report)
        run = log["runs"][0]
        (result,) = run["results"]
        assert result["ruleId"] == "R007"
        assert run["tool"]["driver"]["rules"][result["ruleIndex"]]["id"] == "R007"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/sample.py"
        assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert location["region"] == {"startLine": 3, "startColumn": 5}

    def test_hint_is_folded_into_the_message(self):
        report = LintReport(diagnostics=(_diag(hint="do it right"),), files_checked=1)
        (result,) = _log(report)["runs"][0]["results"]
        assert "(fix: do it right)" in result["message"]["text"]


class TestDeterminism:
    def test_same_report_renders_identically(self):
        report = LintReport(
            diagnostics=(_diag(), _diag(rule_id="R014", line=9)), files_checked=2
        )
        assert render_sarif(report) == render_sarif(report)
