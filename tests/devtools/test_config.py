"""``[tool.reprolint]`` parsing and the pyproject/defaults sync contract."""

from pathlib import Path

import pytest

from repro.devtools import load_config
from repro.devtools.config import LintConfig, discover_config

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestLoadConfig:
    def test_explicit_tables_override_defaults(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            """
[tool.reprolint]
reference-roots = ["lib"]
baseline = "debt.json"

[tool.reprolint.layers]
order = [["base"], ["top"]]

[tool.reprolint.hot]
functions = ["repro.x::f"]

[tool.reprolint.lock]
blocking-calls = ["self.sock.send"]

[project.scripts]
tool-a = "repro.x:main"
""",
            encoding="utf-8",
        )
        config = load_config(pyproject)
        assert config.root == tmp_path.resolve()
        assert config.layers == (("base",), ("top",))
        assert config.layer_of("base") == 0
        assert config.layer_of("top") == 1
        assert config.layer_of("unknown") is None
        assert config.hot_functions == ("repro.x::f",)
        assert config.blocking_calls == ("self.sock.send",)
        assert config.reference_roots == ("lib",)
        assert config.entry_points == ("repro.x:main",)
        assert config.default_baseline() == tmp_path.resolve() / "debt.json"

    def test_bare_pyproject_yields_the_embedded_defaults(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[project]\nname = "x"\n', encoding="utf-8")
        config = load_config(pyproject)
        defaults = LintConfig(root=tmp_path)
        assert config.layers == defaults.layers
        assert config.hot_functions == defaults.hot_functions
        assert config.blocking_calls == defaults.blocking_calls

    @pytest.mark.parametrize(
        "snippet",
        [
            "[tool.reprolint.layers]\norder = \"nope\"\n",
            "[tool.reprolint.layers]\norder = [[1, 2]]\n",
            "[tool.reprolint.hot]\nfunctions = [3]\n",
            "[tool.reprolint]\nbaseline = 7\n",
        ],
    )
    def test_malformed_tables_are_rejected(self, tmp_path, snippet):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(snippet, encoding="utf-8")
        with pytest.raises(ValueError):
            load_config(pyproject)


class TestDiscover:
    def test_walks_up_to_the_nearest_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.reprolint]\nbaseline = "found.json"\n', encoding="utf-8"
        )
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        config = discover_config(nested)
        assert config.baseline_path == "found.json"

    def test_no_pyproject_falls_back_to_defaults(self, tmp_path):
        config = discover_config(tmp_path)
        assert config.root == tmp_path.resolve()
        assert config.baseline_path == "lint-baseline.json"


class TestDefaultsSync:
    """The embedded fallback must mirror the repository's pyproject."""

    def test_repo_pyproject_matches_embedded_defaults(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        defaults = LintConfig(root=REPO_ROOT)
        assert config.layers == defaults.layers
        assert config.hot_functions == defaults.hot_functions
        assert config.blocking_calls == defaults.blocking_calls
        assert config.reference_roots == defaults.reference_roots
        assert config.entry_points == defaults.entry_points
        assert config.baseline_path == defaults.baseline_path
