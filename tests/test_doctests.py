"""Run the executable examples embedded in docstrings."""

import doctest

import pytest

import repro.analysis.reporting
import repro.graph.digraph
import repro.model.roles


@pytest.mark.parametrize(
    "module",
    [
        repro.analysis.reporting,
        repro.graph.digraph,
        repro.model.roles,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the docstrings really carry examples
