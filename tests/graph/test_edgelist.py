"""Unit tests for the paper's r x 3 edge-list format."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.graph.digraph import DiGraph
from repro.graph.edgelist import COLOR_INFLUENCE, COLOR_TRADING, EdgeList
from repro.model.colors import VColor


def sample_graph() -> DiGraph:
    g = DiGraph()
    g.add_node("P", color="Person")
    g.add_node("A", color="Company")
    g.add_node("B", color="Company")
    g.add_node("iso", color="Company")
    g.add_arc("P", "A", "IN")
    g.add_arc("A", "B", "TR")
    return g


class TestConstruction:
    def test_from_digraph_layout(self):
        el = EdgeList.from_digraph(sample_graph(), influence_color="IN", trading_color="TR")
        assert el.number_of_arcs == 2
        assert el.first_trading_row == 1
        assert el.array[0, 2] == COLOR_INFLUENCE
        assert el.array[1, 2] == COLOR_TRADING

    def test_unknown_color_rejected(self):
        g = sample_graph()
        g.add_arc("A", "B", "WEIRD")
        with pytest.raises(SerializationError, match="neither"):
            EdgeList.from_digraph(g, influence_color="IN", trading_color="TR")

    def test_bad_shape_rejected(self):
        with pytest.raises(SerializationError, match="shape"):
            EdgeList(np.zeros((3, 2), dtype=np.int64), ["a", "b"])

    def test_out_of_range_index_rejected(self):
        array = np.array([[0, 5, 1]], dtype=np.int64)
        with pytest.raises(SerializationError, match="out-of-range"):
            EdgeList(array, ["a", "b"])

    def test_bad_color_code_rejected(self):
        array = np.array([[0, 1, 7]], dtype=np.int64)
        with pytest.raises(SerializationError, match="color"):
            EdgeList(array, ["a", "b"])

    def test_duplicate_node_ids_rejected(self):
        array = np.empty((0, 3), dtype=np.int64)
        with pytest.raises(SerializationError, match="duplicate"):
            EdgeList(array, ["a", "a"])


class TestLayout:
    def test_layout_violation_detected(self):
        array = np.array([[0, 1, 0], [1, 2, 1]], dtype=np.int64)
        el = EdgeList(array, ["a", "b", "c"])
        with pytest.raises(SerializationError, match="layout"):
            el.first_trading_row

    def test_no_trading_rows(self):
        array = np.array([[0, 1, 1]], dtype=np.int64)
        el = EdgeList(array, ["a", "b"])
        assert el.first_trading_row == 1
        assert el.trading_rows().shape == (0, 3)

    def test_blocks(self):
        el = EdgeList.from_digraph(sample_graph(), influence_color="IN", trading_color="TR")
        assert el.antecedent_rows().shape == (1, 3)
        assert el.trading_rows().shape == (1, 3)


class TestRoundTrip:
    def test_digraph_roundtrip(self):
        g = sample_graph()
        el = EdgeList.from_digraph(g, influence_color="IN", trading_color="TR")
        back = el.to_digraph(influence_color="IN", trading_color="TR")
        assert set(back.arcs()) == set(g.arcs())
        assert set(back.nodes()) == set(g.nodes())  # isolated node survives
        assert back.node_color("P") == VColor.PERSON

    def test_index_lookup(self):
        el = EdgeList.from_digraph(sample_graph(), influence_color="IN", trading_color="TR")
        for node in el.nodes:
            assert el.node_at(el.index_of(node)) == node

    def test_empty_graph(self):
        el = EdgeList.from_digraph(DiGraph(), influence_color="IN", trading_color="TR")
        assert len(el) == 0
        assert el.first_trading_row == 0


class TestToDigraphOptions:
    def test_include_extra_nodes(self):
        g = sample_graph()
        el = EdgeList.from_digraph(g, influence_color="IN", trading_color="TR")
        back = el.to_digraph(
            influence_color="IN", trading_color="TR", include_nodes=["ghost"]
        )
        assert back.has_node("ghost")

    def test_custom_color_labels(self):
        g = sample_graph()
        el = EdgeList.from_digraph(g, influence_color="IN", trading_color="TR")
        back = el.to_digraph(influence_color="blue", trading_color="black")
        assert back.has_arc("P", "A", "blue")
        assert back.has_arc("A", "B", "black")
