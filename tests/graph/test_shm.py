"""Lifecycle tests for the POSIX shared-memory segment wrapper."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.graph.csr import CSRGraph
from repro.graph.shm import (
    SHM_NAME_PREFIX,
    SharedSegment,
    _cleanup_owned_at_exit,
    live_owned_segments,
)
from repro.model.colors import EColor
from repro.obs.registry import get_registry

SHM_DIR = "/dev/shm"


def shm_entries() -> list[str]:
    """``repro_shm_*`` basenames currently present in ``/dev/shm``."""
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux fallback
        return []
    return sorted(
        name for name in os.listdir(SHM_DIR) if name.startswith(SHM_NAME_PREFIX)
    )


def gauge_value() -> float:
    return get_registry().gauge("repro_shm_bytes").value


class TestSharedSegment:
    def test_create_write_attach_read(self):
        payload = b"zero-copy attach"
        with SharedSegment.create(len(payload)) as segment:
            segment.buf[: len(payload)] = payload
            attached = SharedSegment.attach(segment.name)
            try:
                assert bytes(attached.buf[: len(payload)]) == payload
                assert not attached.owner
                assert attached.size == segment.size
            finally:
                attached.close()
        assert shm_entries() == []

    def test_name_carries_prefix_and_pid(self):
        with SharedSegment.create(8) as segment:
            assert segment.name.startswith(f"{SHM_NAME_PREFIX}{os.getpid()}_")

    def test_owner_registry_and_gauge(self):
        before = gauge_value()
        segment = SharedSegment.create(4096)
        assert segment.name in live_owned_segments()
        assert gauge_value() == before + segment.size
        segment.close()
        segment.unlink()
        assert segment.name not in live_owned_segments()
        assert gauge_value() == before
        assert segment.name not in shm_entries()

    def test_unlink_is_idempotent_and_owner_only(self):
        segment = SharedSegment.create(16)
        attached = SharedSegment.attach(segment.name)
        before = gauge_value()
        attached.close()
        attached.unlink()  # no-op: not the owner
        assert segment.name in shm_entries()
        segment.close()
        segment.unlink()
        segment.unlink()  # second unlink is a no-op, gauge decs once
        assert gauge_value() == before - segment.size

    def test_buf_raises_after_close(self):
        segment = SharedSegment.create(8)
        try:
            segment.close()
            with pytest.raises(ValueError):
                segment.buf
        finally:
            segment.unlink()

    def test_context_manager_cleans_up_on_error(self):
        with pytest.raises(RuntimeError):
            with SharedSegment.create(32) as segment:
                name = segment.name
                raise RuntimeError("worker blew up")
        assert name not in shm_entries()
        assert name not in live_owned_segments()

    def test_atexit_hook_reaps_leftovers(self):
        segment = SharedSegment.create(64)
        assert segment.name in live_owned_segments()
        _cleanup_owned_at_exit()
        assert live_owned_segments() == []
        assert segment.name not in shm_entries()


class TestCSRSharedRoundtrip:
    def assert_same_graph(self, original: CSRGraph, restored: CSRGraph) -> None:
        assert restored.decode_table == original.decode_table
        assert restored.arc_color_domain == original.arc_color_domain
        for color in original.arc_color_domain:
            assert restored.number_of_arcs(color) == original.number_of_arcs(color)
            for node in original.nodes():
                assert list(restored.successors(node, color)) == list(
                    original.successors(node, color)
                )
                assert list(restored.predecessors(node, color)) == list(
                    original.predecessors(node, color)
                )
                assert restored.node_color(node) == original.node_color(node)

    def test_roundtrip_preserves_adjacency(self, fig8):
        csr = CSRGraph.freeze(fig8.graph, colors=(EColor.INFLUENCE, EColor.TRADING))
        segment = csr.to_shared()
        try:
            restored = CSRGraph.from_shared(segment)
            self.assert_same_graph(csr, restored)
            del restored
        finally:
            segment.close()
            segment.unlink()
        assert shm_entries() == []

    def test_attached_copy_is_zero_copy_view(self, fig8):
        csr = CSRGraph.freeze(fig8.graph, colors=(EColor.INFLUENCE, EColor.TRADING))
        owner = csr.to_shared()
        try:
            attached = SharedSegment.attach(owner.name)
            restored = CSRGraph.from_shared(attached)
            offs, tgts = restored.out_adjacency(EColor.INFLUENCE)
            assert isinstance(offs, memoryview)
            # The views pin the mapping: close must fail until released.
            with pytest.raises(BufferError):
                attached.close()
            del restored, offs, tgts
            attached.close()
        finally:
            owner.close()
            owner.unlink()

    def test_shared_csr_survives_where_pickle_would_copy(self, small_province_tpiin):
        csr = CSRGraph.freeze(
            small_province_tpiin.graph, colors=(EColor.INFLUENCE, EColor.TRADING)
        )
        pickled = len(pickle.dumps(csr))
        with csr.to_shared() as segment:
            restored = CSRGraph.from_shared(segment)
            self.assert_same_graph(csr, restored)
            # The segment holds one adjacency; it is the same order of
            # magnitude as the pickle but shared by every attacher.
            assert segment.size >= 8
            assert pickled > 0
            del restored
