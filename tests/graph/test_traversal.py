"""Unit tests for traversal: DFS/BFS, weak components, reachability."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    ancestors,
    bfs_order,
    descendants,
    dfs_preorder,
    find_subgraphs,
    has_path,
    restricted_reachable,
    weakly_connected_components,
)


def chain(n: int, color: str = "IN") -> DiGraph:
    g = DiGraph()
    for i in range(n - 1):
        g.add_arc(i, i + 1, color)
    return g


def two_components() -> DiGraph:
    g = DiGraph()
    g.add_arc("a", "b", "IN")
    g.add_arc("c", "b", "IN")
    g.add_arc("x", "y", "IN")
    g.add_node("lonely")
    return g


class TestOrders:
    def test_dfs_preorder_chain(self):
        g = chain(4)
        assert list(dfs_preorder(g, 0)) == [0, 1, 2, 3]

    def test_dfs_respects_color(self):
        g = chain(3, "IN")
        g.add_arc(0, 99, "TR")
        assert 99 not in list(dfs_preorder(g, 0, "IN"))
        assert 99 in list(dfs_preorder(g, 0))

    def test_dfs_first_successor_first(self):
        g = DiGraph()
        g.add_arc("r", "a", "IN")
        g.add_arc("r", "b", "IN")
        g.add_arc("a", "leaf", "IN")
        assert list(dfs_preorder(g, "r")) == ["r", "a", "leaf", "b"]

    def test_bfs_order(self):
        g = DiGraph()
        g.add_arc("r", "a", "IN")
        g.add_arc("r", "b", "IN")
        g.add_arc("a", "c", "IN")
        assert list(bfs_order(g, "r")) == ["r", "a", "b", "c"]

    def test_missing_start(self):
        g = chain(2)
        with pytest.raises(NodeNotFoundError):
            list(dfs_preorder(g, 99))
        with pytest.raises(NodeNotFoundError):
            list(bfs_order(g, 99))

    def test_cycle_terminates(self):
        g = DiGraph()
        g.add_arc("a", "b", "IN")
        g.add_arc("b", "a", "IN")
        assert set(dfs_preorder(g, "a")) == {"a", "b"}


class TestComponents:
    def test_weak_components(self):
        g = two_components()
        comps = {frozenset(c) for c in weakly_connected_components(g)}
        assert comps == {
            frozenset({"a", "b", "c"}),
            frozenset({"x", "y"}),
            frozenset({"lonely"}),
        }

    def test_exclude_isolated(self):
        g = two_components()
        comps = weakly_connected_components(g, include_isolated=False)
        assert all(len(c) > 1 for c in comps)

    def test_color_restricted_components(self):
        g = DiGraph()
        g.add_arc("a", "b", "IN")
        g.add_arc("b", "c", "TR")  # TR must not glue for IN components
        comps = {frozenset(c) for c in weakly_connected_components(g, "IN")}
        assert frozenset({"a", "b"}) in comps
        assert frozenset({"c"}) in comps

    def test_find_subgraphs_induced(self):
        g = two_components()
        subs = find_subgraphs(g)
        assert len(subs) == 3
        by_size = sorted(subs, key=lambda s: -s.number_of_nodes())
        assert by_size[0].has_arc("a", "b", "IN")
        assert by_size[0].has_arc("c", "b", "IN")

    def test_matches_networkx(self):
        import networkx as nx
        import random

        rng = random.Random(5)
        g = DiGraph()
        ng = nx.DiGraph()
        for i in range(60):
            g.add_node(i)
            ng.add_node(i)
        for _ in range(70):
            u, v = rng.randrange(60), rng.randrange(60)
            if u != v:
                g.add_arc(u, v, "IN")
                ng.add_edge(u, v)
        ours = {frozenset(c) for c in weakly_connected_components(g)}
        theirs = {frozenset(c) for c in nx.weakly_connected_components(ng)}
        assert ours == theirs


class TestReachability:
    def test_descendants_ancestors(self):
        g = chain(4)
        assert descendants(g, 0) == {1, 2, 3}
        assert ancestors(g, 3) == {0, 1, 2}
        assert descendants(g, 3) == set()
        assert ancestors(g, 0) == set()

    def test_has_path(self):
        g = chain(3)
        assert has_path(g, 0, 2)
        assert not has_path(g, 2, 0)
        assert has_path(g, 1, 1)

    def test_has_path_missing_nodes(self):
        g = chain(2)
        with pytest.raises(NodeNotFoundError):
            has_path(g, 0, 42)
        with pytest.raises(NodeNotFoundError):
            has_path(g, 42, 0)

    def test_restricted_reachable(self):
        g = chain(5)
        # Only allowed through nodes {1, 2}: node 4 is out of reach.
        assert restricted_reachable(g, 0, [1, 2, 3]) == {1, 2, 3}
        assert restricted_reachable(g, 0, [2]) == set()
