"""Unit tests for the packed root-ancestor index."""

import random

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.bitset import RootAncestorIndex
from repro.graph.dag import ancestor_closure
from repro.graph.digraph import DiGraph


def diamond() -> DiGraph:
    g = DiGraph()
    for u, v in [("r", "a"), ("r", "b"), ("a", "t"), ("b", "t"), ("s", "b")]:
        g.add_arc(u, v, "IN")
    return g


def random_dag(seed: int, n: int = 40) -> DiGraph:
    rng = random.Random(seed)
    g = DiGraph()
    for i in range(n):
        g.add_node(i)
    for _ in range(2 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u < v:  # index order keeps it acyclic
            g.add_arc(u, v, "IN")
    return g


class TestBasics:
    def test_roots_detected(self):
        index = RootAncestorIndex(diamond(), "IN")
        assert set(index.roots) == {"r", "s"}

    def test_root_ancestors(self):
        index = RootAncestorIndex(diamond(), "IN")
        assert index.root_ancestors("t") == {"r", "s"}
        assert index.root_ancestors("a") == {"r"}
        assert index.root_ancestors("r") == {"r"}  # a root is its own ancestor

    def test_shares_root(self):
        index = RootAncestorIndex(diamond(), "IN")
        assert index.shares_root("a", "b")  # both under r
        assert index.shares_root("t", "t")
        assert index.common_roots("a", "b") == {"r"}

    def test_disjoint_components(self):
        g = diamond()
        g.add_arc("p", "q", "IN")
        index = RootAncestorIndex(g, "IN")
        assert not index.shares_root("q", "t")
        assert index.common_roots("q", "t") == set()

    def test_missing_node(self):
        index = RootAncestorIndex(diamond(), "IN")
        with pytest.raises(NodeNotFoundError):
            index.row("zzz")

    def test_graph_without_arcs(self):
        g = DiGraph()
        g.add_node("x")
        g.add_node("y")
        index = RootAncestorIndex(g)
        assert index.shares_root("x", "x")
        assert not index.shares_root("x", "y")


class TestBulk:
    def test_bulk_matches_scalar(self):
        g = random_dag(3)
        index = RootAncestorIndex(g, "IN")
        nodes = list(g.nodes())
        rng = random.Random(4)
        tails = [rng.choice(nodes) for _ in range(200)]
        heads = [rng.choice(nodes) for _ in range(200)]
        bulk = index.shares_root_bulk(tails, heads, chunk=17)
        for t, h, flag in zip(tails, heads, bulk):
            assert flag == index.shares_root(t, h)

    def test_bulk_length_mismatch(self):
        index = RootAncestorIndex(diamond(), "IN")
        with pytest.raises(ValueError):
            index.shares_root_bulk(["a"], ["a", "b"])


class TestAgainstClosure:
    def test_shares_root_iff_closures_intersect(self):
        for seed in range(6):
            g = random_dag(seed)
            index = RootAncestorIndex(g, "IN")
            closure = ancestor_closure(g, "IN")
            nodes = list(g.nodes())
            rng = random.Random(seed + 100)
            for _ in range(150):
                a, b = rng.choice(nodes), rng.choice(nodes)
                expected = bool(closure[a] & closure[b])
                assert index.shares_root(a, b) == expected


class TestCyclicInput:
    def test_cycle_rejected(self):
        from repro.errors import NotADagError

        g = DiGraph()
        g.add_arc("a", "b", "IN")
        g.add_arc("b", "a", "IN")
        with pytest.raises(NotADagError):
            RootAncestorIndex(g, "IN")
