"""Unit tests for the iterative Tarjan SCC implementation."""

import random

import networkx as nx

from repro.graph.digraph import DiGraph
from repro.graph.tarjan import nontrivial_sccs, strongly_connected_components


class TestHandCases:
    def test_single_cycle(self):
        g = DiGraph()
        g.add_arc("a", "b", "I")
        g.add_arc("b", "c", "I")
        g.add_arc("c", "a", "I")
        comps = strongly_connected_components(g)
        assert {frozenset(c) for c in comps} == {frozenset({"a", "b", "c"})}

    def test_dag_gives_singletons(self):
        g = DiGraph()
        g.add_arc("a", "b", "I")
        g.add_arc("b", "c", "I")
        comps = strongly_connected_components(g)
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_two_cycles_bridge(self):
        g = DiGraph()
        for u, v in [("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")]:
            g.add_arc(u, v, "I")
        comps = {frozenset(c) for c in strongly_connected_components(g)}
        assert frozenset({"a", "b"}) in comps
        assert frozenset({"c", "d"}) in comps

    def test_reverse_topological_emission(self):
        # Tarjan emits a component before any component that reaches it.
        g = DiGraph()
        g.add_arc("a", "b", "I")
        g.add_arc("b", "c", "I")
        comps = strongly_connected_components(g)
        order = {next(iter(c)): i for i, c in enumerate(comps)}
        assert order["c"] < order["a"]

    def test_color_filter(self):
        g = DiGraph()
        g.add_arc("a", "b", "I")
        g.add_arc("b", "a", "T")  # back edge in another color
        comps = {frozenset(c) for c in strongly_connected_components(g, "I")}
        assert comps == {frozenset({"a"}), frozenset({"b"})}
        comps_all = {frozenset(c) for c in strongly_connected_components(g)}
        assert comps_all == {frozenset({"a", "b"})}

    def test_deep_chain_no_recursion_limit(self):
        g = DiGraph()
        n = 50_000
        for i in range(n - 1):
            g.add_arc(i, i + 1, "I")
        comps = strongly_connected_components(g)
        assert len(comps) == n


class TestNontrivial:
    def test_excludes_singletons(self):
        g = DiGraph()
        g.add_arc("a", "b", "I")
        assert nontrivial_sccs(g) == []

    def test_includes_self_loop(self):
        g = DiGraph()
        g.add_arc("a", "a", "I")
        g.add_arc("a", "b", "I")
        assert [set(c) for c in nontrivial_sccs(g)] == [{"a"}]

    def test_self_loop_color_filter(self):
        g = DiGraph()
        g.add_arc("a", "a", "T")
        assert nontrivial_sccs(g, "I") == []
        assert [set(c) for c in nontrivial_sccs(g, "T")] == [{"a"}]


class TestAgainstNetworkx:
    def test_random_graphs(self):
        rng = random.Random(13)
        for trial in range(12):
            n = rng.randrange(5, 60)
            g = DiGraph()
            ng = nx.DiGraph()
            for i in range(n):
                g.add_node(i)
                ng.add_node(i)
            for _ in range(int(1.8 * n)):
                u, v = rng.randrange(n), rng.randrange(n)
                g.add_arc(u, v, "I")
                ng.add_edge(u, v)
            ours = {frozenset(c) for c in strongly_connected_components(g)}
            theirs = {frozenset(c) for c in nx.strongly_connected_components(ng)}
            assert ours == theirs, f"trial {trial} diverged"
