"""Unit tests for DAG utilities: topo order, roots, path enumeration."""

import pytest

from repro.errors import NodeNotFoundError, NotADagError
from repro.graph.dag import (
    ancestor_closure,
    count_paths_from_roots,
    enumerate_paths_from,
    is_dag,
    leaves,
    path_arcs,
    roots,
    topological_order,
)
from repro.graph.digraph import DiGraph


def diamond() -> DiGraph:
    g = DiGraph()
    for u, v in [("r", "a"), ("r", "b"), ("a", "t"), ("b", "t")]:
        g.add_arc(u, v, "IN")
    return g


class TestTopologicalOrder:
    def test_valid_order(self):
        g = diamond()
        order = topological_order(g)
        pos = {n: i for i, n in enumerate(order)}
        for tail, head, _c in g.arcs():
            assert pos[tail] < pos[head]

    def test_cycle_raises(self):
        g = DiGraph()
        g.add_arc("a", "b", "IN")
        g.add_arc("b", "a", "IN")
        with pytest.raises(NotADagError):
            topological_order(g)

    def test_color_restriction_ignores_cycle_in_other_color(self):
        g = DiGraph()
        g.add_arc("a", "b", "IN")
        g.add_arc("b", "a", "TR")
        assert is_dag(g, "IN")
        assert not is_dag(g)

    def test_isolated_nodes_included(self):
        g = diamond()
        g.add_node("solo")
        assert "solo" in topological_order(g)


class TestRootsLeaves:
    def test_roots_and_leaves(self):
        g = diamond()
        assert roots(g) == ["r"]
        assert leaves(g) == ["t"]

    def test_color_restricted(self):
        g = diamond()
        g.add_arc("x", "r", "TR")
        assert set(roots(g, "IN")) == {"r", "x"}
        assert set(roots(g)) == {"x"}


class TestPathEnumeration:
    def test_diamond_paths(self):
        g = diamond()
        paths = set(enumerate_paths_from(g, "r"))
        assert paths == {
            ("r",),
            ("r", "a"),
            ("r", "a", "t"),
            ("r", "b"),
            ("r", "b", "t"),
        }

    def test_max_paths_bound(self):
        g = diamond()
        assert len(list(enumerate_paths_from(g, "r", max_paths=3))) == 3

    def test_missing_start(self):
        with pytest.raises(NodeNotFoundError):
            list(enumerate_paths_from(diamond(), "zzz"))

    def test_cyclic_graph_stays_simple(self):
        g = DiGraph()
        g.add_arc("a", "b", "IN")
        g.add_arc("b", "a", "IN")
        assert set(enumerate_paths_from(g, "a")) == {("a",), ("a", "b")}

    def test_path_arcs(self):
        assert path_arcs(("a", "b", "c")) == [("a", "b"), ("b", "c")]
        assert path_arcs(("a",)) == []


class TestPathCounts:
    def test_counts_match_enumeration(self):
        g = diamond()
        g.add_arc("t", "z", "IN")
        counts = count_paths_from_roots(g)
        for node in g.nodes():
            explicit = sum(
                1
                for root in roots(g)
                for path in enumerate_paths_from(g, root)
                if path[-1] == node
            )
            assert counts[node] == explicit

    def test_multiple_roots(self):
        g = DiGraph()
        g.add_arc("r1", "t", "IN")
        g.add_arc("r2", "t", "IN")
        counts = count_paths_from_roots(g)
        assert counts["t"] == 2
        assert counts["r1"] == counts["r2"] == 1


class TestAncestorClosure:
    def test_closure_includes_self(self):
        g = diamond()
        closure = ancestor_closure(g)
        assert closure["r"] == {"r"}
        assert closure["t"] == {"r", "a", "b", "t"}

    def test_disjoint_components(self):
        g = diamond()
        g.add_arc("p", "q", "IN")
        closure = ancestor_closure(g)
        assert closure["q"] == {"p", "q"}
        assert not (closure["q"] & closure["t"])
