"""Unit tests for the undirected interdependence graph core."""

import pickle

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.digraph import UnGraph
from repro.model.colors import VColor


def build_sample() -> UnGraph:
    g = UnGraph()
    g.add_edge("a", "b", "kin")
    g.add_edge("b", "c", "lock")
    g.add_node("iso", color="Person")
    return g


class TestBasics:
    def test_add_edge_creates_nodes(self):
        g = UnGraph()
        assert g.add_edge("a", "b", "kin") is True
        assert "a" in g and "b" in g
        assert len(g) == 2

    def test_duplicate_edge_noop(self):
        g = UnGraph()
        g.add_edge("a", "b", "kin")
        assert g.add_edge("b", "a", "kin") is False
        assert g.number_of_edges() == 1

    def test_self_loop_rejected(self):
        g = UnGraph()
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge("a", "a", "kin")

    def test_none_color_rejected(self):
        g = UnGraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", None)

    def test_symmetry(self):
        g = build_sample()
        assert g.has_edge("a", "b")
        assert g.has_edge("b", "a")
        assert g.edge_colors("b", "a") == frozenset({"kin"})

    def test_edges_emitted_once(self):
        g = build_sample()
        assert len(list(g.edges())) == 2
        assert g.number_of_edges("kin") == 1

    def test_neighbors_and_degree(self):
        g = build_sample()
        assert set(g.neighbors("b")) == {"a", "c"}
        assert g.degree("b") == 2
        with pytest.raises(NodeNotFoundError):
            g.degree("zzz")

    def test_recolor_conflict(self):
        g = UnGraph()
        g.add_node("x", color="Person")
        with pytest.raises(ValueError):
            g.add_node("x", color="Company")

    def test_color_refine(self):
        g = UnGraph()
        g.add_node("x")
        g.add_node("x", color="Person")
        assert g.node_color("x") == VColor.PERSON


class TestComponents:
    def test_connected_components(self):
        g = build_sample()
        components = {frozenset(c) for c in g.connected_components()}
        assert components == {frozenset({"a", "b", "c"}), frozenset({"iso"})}

    def test_empty_graph(self):
        assert UnGraph().connected_components() == []

    def test_pickle_roundtrip(self):
        g = build_sample()
        clone = pickle.loads(pickle.dumps(g))
        assert set(clone.edges()) == set(g.edges())
        assert clone.node_color("iso") == VColor.PERSON
