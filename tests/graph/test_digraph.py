"""Unit tests for the colored digraph core."""

import pickle

import pytest

from repro.errors import ArcNotFoundError, NodeNotFoundError
from repro.graph.digraph import DiGraph
from repro.model.colors import VColor


def build_sample() -> DiGraph:
    g = DiGraph()
    g.add_node("P", color="Person")
    g.add_node("A", color="Company")
    g.add_node("B", color="Company")
    g.add_arc("P", "A", "IN")
    g.add_arc("A", "B", "IN")
    g.add_arc("A", "B", "TR")
    return g


class TestNodes:
    def test_add_and_contains(self):
        g = DiGraph()
        g.add_node("x")
        assert "x" in g
        assert g.has_node("x")
        assert len(g) == 1

    def test_add_is_idempotent(self):
        g = DiGraph()
        g.add_node("x", color="Person")
        g.add_node("x", color="Person")
        assert g.number_of_nodes() == 1

    def test_color_refinement_from_none(self):
        g = DiGraph()
        g.add_node("x")
        g.add_node("x", color="Person")
        assert g.node_color("x") == VColor.PERSON

    def test_recolor_conflict_raises(self):
        g = DiGraph()
        g.add_node("x", color="Person")
        with pytest.raises(ValueError, match="recolor"):
            g.add_node("x", color="Company")

    def test_attrs_merge(self):
        g = DiGraph()
        g.add_node("x", color="Person", name="Li")
        g.add_node("x", industry="tea")
        assert g.node_attrs("x") == {"name": "Li", "industry": "tea"}

    def test_nodes_by_color(self):
        g = build_sample()
        assert set(g.nodes("Company")) == {"A", "B"}
        assert g.number_of_nodes("Person") == 1

    def test_missing_node_errors(self):
        g = DiGraph()
        with pytest.raises(NodeNotFoundError):
            g.node_color("nope")
        with pytest.raises(NodeNotFoundError):
            g.remove_node("nope")
        with pytest.raises(NodeNotFoundError):
            list(g.successors("nope"))

    def test_remove_node_cleans_arcs(self):
        g = build_sample()
        g.remove_node("A")
        assert g.number_of_arcs() == 0
        assert not g.has_node("A")
        assert g.has_node("B")

    def test_remove_node_with_self_loop(self):
        g = DiGraph()
        g.add_arc("x", "x", "IN")
        g.remove_node("x")
        assert g.number_of_arcs() == 0
        assert len(g) == 0


class TestArcs:
    def test_add_arc_creates_endpoints(self):
        g = DiGraph()
        assert g.add_arc("a", "b", "IN") is True
        assert g.has_node("a") and g.has_node("b")

    def test_duplicate_arc_is_noop(self):
        g = DiGraph()
        g.add_arc("a", "b", "IN")
        assert g.add_arc("a", "b", "IN") is False
        assert g.number_of_arcs() == 1

    def test_parallel_colors_coexist(self):
        g = build_sample()
        assert g.arc_colors("A", "B") == frozenset({"IN", "TR"})
        assert g.number_of_arcs() == 3
        assert g.number_of_arcs("TR") == 1

    def test_none_color_rejected(self):
        g = DiGraph()
        with pytest.raises(ValueError, match="color"):
            g.add_arc("a", "b", None)

    def test_add_arcs_bulk(self):
        g = DiGraph()
        added = g.add_arcs([("a", "b"), ("b", "c"), ("a", "b")], "TR")
        assert added == 2
        assert g.number_of_arcs("TR") == 2

    def test_add_arcs_bulk_rejects_none(self):
        g = DiGraph()
        with pytest.raises(ValueError):
            g.add_arcs([("a", "b")], None)

    def test_remove_specific_color(self):
        g = build_sample()
        g.remove_arc("A", "B", "TR")
        assert g.arc_colors("A", "B") == frozenset({"IN"})
        assert g.number_of_arcs() == 2

    def test_remove_all_colors(self):
        g = build_sample()
        g.remove_arc("A", "B")
        assert not g.has_arc("A", "B")
        assert g.number_of_arcs() == 1

    def test_remove_missing_raises(self):
        g = build_sample()
        with pytest.raises(ArcNotFoundError):
            g.remove_arc("P", "B")
        with pytest.raises(ArcNotFoundError):
            g.remove_arc("A", "B", "XX")

    def test_arcs_iteration_with_filter(self):
        g = build_sample()
        assert set(g.arcs("IN")) == {("P", "A", "IN"), ("A", "B", "IN")}
        assert len(list(g.arcs())) == 3

    def test_has_arc_color_filter(self):
        g = build_sample()
        assert g.has_arc("A", "B", "TR")
        assert not g.has_arc("P", "A", "TR")
        assert g.has_arc("P", "A")


class TestAdjacencyAndDegrees:
    def test_successors_predecessors(self):
        g = build_sample()
        assert set(g.successors("A")) == {"B"}
        assert set(g.predecessors("B")) == {"A"}
        assert set(g.successors("A", "TR")) == {"B"}
        assert set(g.predecessors("A", "TR")) == set()

    def test_degrees(self):
        g = build_sample()
        assert g.out_degree("A") == 2  # IN + TR to B
        assert g.out_degree("A", "IN") == 1
        assert g.in_degree("B") == 2
        assert g.in_degree("B", "TR") == 1
        assert g.degree("A") == 3

    def test_in_out_arcs(self):
        g = build_sample()
        assert set(g.out_arcs("A")) == {("A", "B", "IN"), ("A", "B", "TR")}
        assert set(g.in_arcs("A")) == {("P", "A", "IN")}


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = build_sample()
        clone = g.copy()
        clone.add_arc("B", "P2", "IN")
        assert not g.has_node("P2")
        assert set(clone.arcs()) >= set(g.arcs())

    def test_subgraph_induced(self):
        g = build_sample()
        sub = g.subgraph(["A", "B", "ghost"])
        assert set(sub.nodes()) == {"A", "B"}
        assert sub.has_arc("A", "B", "IN")
        assert sub.has_arc("A", "B", "TR")
        assert not sub.has_node("P")

    def test_color_subgraph_keeps_nodes(self):
        g = build_sample()
        sub = g.color_subgraph("IN")
        assert set(sub.nodes()) == {"P", "A", "B"}
        assert sub.number_of_arcs() == 2

    def test_color_subgraph_drop_isolated(self):
        g = build_sample()
        g.add_node("lonely", color="Company")
        sub = g.color_subgraph("TR", keep_all_nodes=False)
        assert set(sub.nodes()) == {"A", "B"}

    def test_reversed(self):
        g = build_sample()
        rev = g.reversed()
        assert rev.has_arc("B", "A", "TR")
        assert rev.has_arc("A", "P", "IN")
        assert rev.node_color("P") == VColor.PERSON

    def test_pickle_roundtrip(self):
        g = build_sample()
        clone = pickle.loads(pickle.dumps(g))
        assert set(clone.arcs()) == set(g.arcs())
        assert clone.node_color("P") == VColor.PERSON
        clone.add_arc("B", "C", "TR")
        assert not g.has_node("C")


class TestReAddAfterRemoval:
    def test_arc_readd(self):
        g = build_sample()
        g.remove_arc("A", "B", "TR")
        assert g.add_arc("A", "B", "TR") is True
        assert g.number_of_arcs("TR") == 1

    def test_node_readd_after_removal(self):
        g = build_sample()
        g.remove_node("A")
        g.add_node("A", color="Company")
        assert g.node_color("A") == VColor.COMPANY
        assert g.in_degree("A") == 0
