"""Unit tests for the frozen CSR kernel (`repro.graph.csr`)."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.model.colors import EColor, VColor


def sample_graph() -> DiGraph:
    g = DiGraph()
    g.add_node("P1", VColor.PERSON)
    for c in ("C1", "C2", "C3"):
        g.add_node(c, VColor.COMPANY)
    g.add_arc("P1", "C1", EColor.INFLUENCE)
    g.add_arc("C1", "C2", EColor.INFLUENCE)
    g.add_arc("C1", "C3", EColor.INFLUENCE)
    # Multi-color parallel arcs: C1 both influences and trades with C2.
    g.add_arc("C1", "C2", EColor.TRADING)
    g.add_arc("C3", "C2", EColor.TRADING)
    return g


class TestFreeze:
    def test_interning_is_str_sorted(self):
        csr = CSRGraph.freeze(sample_graph())
        assert list(csr.decode_table) == ["C1", "C2", "C3", "P1"]
        assert [csr.encode(n) for n in csr.decode_table] == [0, 1, 2, 3]
        assert csr.decode(3) == "P1"

    def test_node_colors_survive(self):
        csr = CSRGraph.freeze(sample_graph())
        assert csr.node_color("P1") is VColor.PERSON
        assert csr.node_color("C2") is VColor.COMPANY
        assert csr.node_color_id(csr.encode("P1")) is VColor.PERSON

    def test_arc_colors_and_parallel_arcs(self):
        csr = CSRGraph.freeze(sample_graph())
        assert csr.arc_colors("C1", "C2") == frozenset(
            {EColor.INFLUENCE, EColor.TRADING}
        )
        assert csr.arc_colors("C3", "C2") == frozenset({EColor.TRADING})
        assert csr.arc_colors("C2", "C1") == frozenset()
        assert csr.has_arc("C1", "C2")
        assert csr.has_arc("C1", "C2", EColor.TRADING)
        assert not csr.has_arc("P1", "C1", EColor.TRADING)

    def test_degrees_match_source(self):
        g = sample_graph()
        csr = CSRGraph.freeze(g)
        for node in g.nodes():
            for color in (None, EColor.INFLUENCE, EColor.TRADING):
                assert csr.out_degree(node, color) == g.out_degree(node, color)
                assert csr.in_degree(node, color) == g.in_degree(node, color)

    def test_successors_are_sorted(self):
        csr = CSRGraph.freeze(sample_graph())
        assert list(csr.successors("C1", EColor.INFLUENCE)) == ["C2", "C3"]
        assert list(csr.predecessors("C2", EColor.TRADING)) == ["C1", "C3"]
        offsets, targets = csr.out_adjacency(EColor.INFLUENCE)
        u = csr.encode("C1")
        row = list(targets[offsets[u] : offsets[u + 1]])
        assert row == sorted(row)

    def test_arc_counts(self):
        csr = CSRGraph.freeze(sample_graph())
        assert csr.number_of_arcs(EColor.INFLUENCE) == 3
        assert csr.number_of_arcs(EColor.TRADING) == 2
        assert csr.number_of_arcs() == 5

    def test_root_ids(self):
        csr = CSRGraph.freeze(sample_graph())
        assert [csr.decode(u) for u in csr.root_ids(EColor.INFLUENCE)] == ["P1"]
        # Under the trading partition, C1 and C3 receive nothing.
        assert [csr.decode(u) for u in csr.root_ids(EColor.TRADING)] == [
            "C1",
            "C3",
            "P1",
        ]

    def test_color_restriction_drops_other_arcs(self):
        csr = CSRGraph.freeze(sample_graph(), colors=(EColor.INFLUENCE,))
        assert csr.arc_color_domain == (EColor.INFLUENCE,)
        assert csr.number_of_arcs() == 3
        with pytest.raises(ValueError):
            csr.out_adjacency(EColor.TRADING)

    def test_unknown_node_raises(self):
        csr = CSRGraph.freeze(sample_graph())
        with pytest.raises(NodeNotFoundError):
            csr.encode("missing")
        with pytest.raises(NodeNotFoundError):
            list(csr.successors("missing", EColor.INFLUENCE))


class TestRoundTrip:
    def test_thaw_reproduces_graph(self):
        g = sample_graph()
        thawed = CSRGraph.freeze(g).to_digraph()
        assert set(thawed.nodes()) == set(g.nodes())
        assert {(t, h, c) for t, h, c in thawed.arcs()} == {
            (t, h, c) for t, h, c in g.arcs()
        }
        for node in g.nodes():
            assert thawed.node_color(node) == g.node_color(node)

    def test_refreeze_is_stable(self):
        csr = CSRGraph.freeze(sample_graph())
        again = CSRGraph.freeze(csr.to_digraph())
        assert again.decode_table == csr.decode_table
        for color in csr.arc_color_domain:
            assert again.out_adjacency(color) == csr.out_adjacency(color)
            assert again.in_adjacency(color) == csr.in_adjacency(color)

    def test_empty_graph(self):
        csr = CSRGraph.freeze(DiGraph())
        assert len(csr) == 0
        assert csr.number_of_arcs() == 0
        assert csr.arc_color_domain == ()

    def test_isolated_nodes_survive(self):
        g = DiGraph()
        g.add_node("lonely", VColor.COMPANY)
        csr = CSRGraph.freeze(g, colors=(EColor.INFLUENCE,))
        assert "lonely" in csr
        assert csr.out_degree("lonely", EColor.INFLUENCE) == 0


class TestPickle:
    def test_pickle_round_trip(self):
        csr = CSRGraph.freeze(sample_graph())
        clone = pickle.loads(pickle.dumps(csr))
        assert clone.decode_table == csr.decode_table
        assert clone.arc_color_domain == csr.arc_color_domain
        for color in csr.arc_color_domain:
            assert clone.out_adjacency(color) == csr.out_adjacency(color)
            assert clone.in_adjacency(color) == csr.in_adjacency(color)
        assert list(clone.successors("C1", EColor.INFLUENCE)) == ["C2", "C3"]

    def test_pickle_is_smaller_than_digraph(self):
        # The IPC motivation: frozen buffers beat dict-of-dict pickles.
        g = DiGraph()
        for i in range(300):
            g.add_node(f"C{i:04d}", VColor.COMPANY)
        for i in range(299):
            g.add_arc(f"C{i:04d}", f"C{i + 1:04d}", EColor.INFLUENCE)
            g.add_arc(f"C{i + 1:04d}", f"C{i:04d}", EColor.TRADING)
        frozen = pickle.dumps(CSRGraph.freeze(g))
        loose = pickle.dumps(g)
        assert len(frozen) < len(loose)

    def test_nbytes_reports_buffer_size(self):
        csr = CSRGraph.freeze(sample_graph())
        # 2 colors x 2 directions x (5 offsets + targets) 8-byte entries.
        assert csr.nbytes == 8 * (2 * 2 * 5 + 2 * (3 + 2))
