"""Unit tests for result persistence (sus files and JSON)."""

import json

import pytest

from repro.errors import SerializationError
from repro.io.results_io import (
    group_from_dict,
    group_to_dict,
    read_detection_json,
    write_detection_json,
)
from repro.mining.detector import detect
from repro.mining.detector import detect
from repro.mining.groups import GroupKind, SuspiciousGroup


class TestGroupPayloads:
    def test_roundtrip(self):
        group = SuspiciousGroup(
            trading_trail=("a", "x", "t"), support_trail=("a", "t")
        )
        assert group_from_dict(group_to_dict(group)) == group

    def test_circle_roundtrip(self):
        group = SuspiciousGroup(
            trading_trail=("c", "d", "c"),
            support_trail=("c",),
            kind=GroupKind.CIRCLE,
        )
        assert group_from_dict(group_to_dict(group)) == group

    def test_malformed_payload(self):
        with pytest.raises(SerializationError):
            group_from_dict({"trading_trail": ["a", "b"]})
        with pytest.raises(SerializationError):
            group_from_dict(
                {
                    "trading_trail": ["a", "b"],
                    "support_trail": ["a", "b"],
                    "kind": "wormhole",
                }
            )


class TestDetectionJson:
    def test_roundtrip(self, fig8, tmp_path):
        result = detect(fig8)
        path = write_detection_json(result, tmp_path / "out.json")
        loaded = read_detection_json(path)
        assert loaded["engine"] == "faithful"
        assert loaded["simple_group_count"] == 3
        assert {g.key() for g in loaded["groups"]} == {
            g.key() for g in result.groups
        }
        assert loaded["suspicious_trading_arcs"] == {
            (str(a), str(b)) for a, b in result.suspicious_trading_arcs
        }

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SerializationError):
            read_detection_json(path)

    def test_count_only_result_serializes(self, fig8, tmp_path):
        result = detect(fig8, engine="fast", collect_groups=False)
        path = write_detection_json(result, tmp_path / "counts.json")
        payload = json.loads(path.read_text())
        assert payload["groups"] == []
        assert payload["simple_group_count"] == 3


class TestSusFiles:
    def test_faithful_writes_per_subtpiin(self, fig8, tmp_path):
        result = detect(fig8)
        paths = result.write_files(tmp_path)
        names = {p.name for p in paths}
        assert names == {"susGroup(0).txt", "susTrade(0).txt"}

    def test_fast_writes_aggregate(self, fig8, tmp_path):
        result = detect(fig8, engine="fast")
        paths = result.write_files(tmp_path)
        names = {p.name for p in paths}
        assert names == {"susGroup(all).txt", "susTrade(all).txt"}
        group_lines = (tmp_path / "susGroup(all).txt").read_text().splitlines()
        assert len(group_lines) == 3

    def test_trade_file_sorted_unique(self, fig8, tmp_path):
        result = detect(fig8)
        result.write_files(tmp_path)
        lines = (tmp_path / "susTrade(0).txt").read_text().splitlines()
        assert lines == sorted(lines)
        assert len(lines) == len(set(lines)) == 3
