"""Unit tests for GraphML and DOT exports."""

import xml.etree.ElementTree as ET

from repro.io.dot import tpiin_to_dot, write_tpiin_dot
from repro.io.graphml import write_graphml, write_ungraph_graphml
from repro.model.homogeneous import InterdependenceGraph

NS = "{http://graphml.graphdrawing.org/xmlns}"


class TestGraphML:
    def test_directed_export_is_valid_xml(self, fig8, tmp_path):
        path = write_graphml(fig8.graph, tmp_path / "tpiin.graphml")
        root = ET.parse(path).getroot()
        graph = root.find(f"{NS}graph")
        assert graph.get("edgedefault") == "directed"
        nodes = graph.findall(f"{NS}node")
        edges = graph.findall(f"{NS}edge")
        assert len(nodes) == fig8.graph.number_of_nodes()
        assert len(edges) == fig8.graph.number_of_arcs()

    def test_colors_attached(self, fig8, tmp_path):
        path = write_graphml(fig8.graph, tmp_path / "tpiin.graphml")
        text = path.read_text()
        assert "Person" in text and "Company" in text
        assert ">IN<" in text and ">TR<" in text

    def test_undirected_export(self, tmp_path):
        g1 = InterdependenceGraph()
        g1.add_link("a", "b", "kinship")
        path = write_ungraph_graphml(g1.graph, tmp_path / "g1.graphml")
        root = ET.parse(path).getroot()
        graph = root.find(f"{NS}graph")
        assert graph.get("edgedefault") == "undirected"
        assert len(graph.findall(f"{NS}edge")) == 1

    def test_escaping(self, tmp_path):
        from repro.graph.digraph import DiGraph

        g = DiGraph()
        g.add_arc("a<b", 'c"d', "IN&")
        path = write_graphml(g, tmp_path / "escaped.graphml")
        ET.parse(path)  # must not raise


class TestDot:
    def test_styling_conventions(self, fig8):
        dot = tpiin_to_dot(fig8)
        assert dot.startswith("digraph TPIIN {")
        assert "color=blue" in dot  # influence arcs
        assert "color=black" in dot  # trading arcs
        assert "fillcolor=salmon" in dot  # companies are red nodes
        assert '"L1"' in dot and '"C5"' in dot

    def test_highlighting(self, fig8):
        dot = tpiin_to_dot(fig8, highlight_arcs={("C3", "C5")})
        assert "penwidth=2.5" in dot
        assert dot.count("color=red, penwidth") == 1

    def test_write(self, fig8, tmp_path):
        path = write_tpiin_dot(fig8, tmp_path / "net.dot")
        assert path.read_text().rstrip().endswith("}")
