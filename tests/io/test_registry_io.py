"""Unit tests for registry-CSV ingestion."""

import pytest

from repro.datagen.config import ProvinceConfig
from repro.datagen.province import generate_province
from repro.errors import SerializationError
from repro.io.registry_io import load_registry_csvs, write_registry_csvs
from repro.mining.detector import detect


def write_sample(directory):
    (directory / "persons.csv").write_text(
        "person_id,name,positions\n"
        "L1,Wang Wei,CEO\n"
        "L2,Li Min,CEO|S\n"
        "D1,Zhao Lei,D\n"
    )
    (directory / "companies.csv").write_text(
        "company_id,name,industry,region,scale\n"
        "C1,Alpha Co,chemicals,domestic,large\n"
        "C2,Beta Co,chemicals,hongkong,small\n"
        "C3,Gamma Co,retail,domestic,small\n"
    )
    (directory / "relations.csv").write_text(
        "kind,source,target,value\n"
        "kinship,L1,L2,\n"
        "legal_person,L1,C1,\n"
        "legal_person,L2,C2,\n"
        "legal_person,L1,C3,\n"
        "director,D1,C3,\n"
        "investment,C1,C3,0.8\n"
        "investment,L1,C1,0.6\n"
        "trading,C3,C2,\n"
    )


class TestLoading:
    def test_loads_and_fuses(self, tmp_path):
        write_sample(tmp_path)
        bundle = load_registry_csvs(tmp_path)
        assert len(bundle.registry.persons) == 3
        assert len(bundle.registry.companies) == 3
        assert bundle.shareholdings.stake("C1", "C3") == pytest.approx(0.8)
        assert bundle.shareholdings.stake("L1", "C1") == pytest.approx(0.6)
        result = detect(bundle.fuse().tpiin)
        # Brothers L1/L2 merge; the C3 -> C2 trade is suspicious.
        assert ("C3", "C2") in result.suspicious_trading_arcs

    def test_legal_person_recorded_on_entity(self, tmp_path):
        write_sample(tmp_path)
        bundle = load_registry_csvs(tmp_path)
        assert bundle.registry.persons["L1"].legal_person_of == ("C1", "C3")
        assert bundle.registry.persons["D1"].legal_person_of == ()

    def test_investment_threshold(self, tmp_path):
        write_sample(tmp_path)
        bundle = load_registry_csvs(tmp_path, investment_threshold=0.9)
        assert bundle.investment.number_of_arcs == 0  # 0.8 below threshold
        assert len(bundle.shareholdings) == 2  # stakes still recorded

    @pytest.mark.parametrize(
        "mutation,match",
        [
            (("relations.csv", "trading,C3,CX,"), "not declared"),
            (("relations.csv", "ownership,C1,C2,"), "unknown relation"),
            (("relations.csv", "investment,C1,C2,high"), "fraction"),
            (("relations.csv", "kinship,L1,C1,"), "not declared"),
            (("persons.csv", "P9,No Positions,"), "position"),
        ],
    )
    def test_malformed_rows_rejected(self, tmp_path, mutation, match):
        write_sample(tmp_path)
        filename, bad_row = mutation
        path = tmp_path / filename
        path.write_text(path.read_text() + bad_row + "\n")
        with pytest.raises(SerializationError, match=match):
            load_registry_csvs(tmp_path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError, match="missing"):
            load_registry_csvs(tmp_path)

    def test_bad_header(self, tmp_path):
        write_sample(tmp_path)
        (tmp_path / "persons.csv").write_text("id,name\nx,y\n")
        with pytest.raises(SerializationError, match="header"):
            load_registry_csvs(tmp_path)


class TestRoundTrip:
    def test_province_roundtrip(self, tmp_path):
        dataset = generate_province(ProvinceConfig.small(companies=60, seed=9))
        write_registry_csvs(dataset, tmp_path, trading_probability=0.05)
        bundle = load_registry_csvs(tmp_path)

        original = dataset.fuse_with(dataset.trading_graph(0.05)).tpiin
        reloaded = bundle.fuse().tpiin
        # Same detection outcome from the exported extract.
        assert detect(reloaded).suspicious_trading_arcs == detect(
            original
        ).suspicious_trading_arcs
        assert set(reloaded.graph.arcs()) == set(original.graph.arcs())

    def test_roundtrip_without_trading(self, tmp_path):
        dataset = generate_province(ProvinceConfig.small(companies=40, seed=10))
        write_registry_csvs(dataset, tmp_path)
        bundle = load_registry_csvs(tmp_path)
        assert bundle.trading.number_of_arcs == 0
        assert (
            bundle.influence.number_of_influences
            == dataset.influence.number_of_influences
        )


class TestAffiliationRelations:
    def test_guarantee_rows_loaded_and_mined(self, tmp_path):
        write_sample(tmp_path)
        path = tmp_path / "relations.csv"
        path.write_text(
            path.read_text()
            + "guarantee,C1,C2,\n"
            + "licensing,C1,C3,\n"
        )
        bundle = load_registry_csvs(tmp_path)
        assert bundle.affiliations.number_of_arcs == 2
        result = detect(bundle.fuse().tpiin)
        # C1 guarantees C2 and licenses C3 (and invests in C3): the
        # C3 -> C2 trade now has C1 as a common antecedent directly.
        assert ("C3", "C2") in result.suspicious_trading_arcs

    def test_affiliation_to_unknown_company_rejected(self, tmp_path):
        write_sample(tmp_path)
        path = tmp_path / "relations.csv"
        path.write_text(path.read_text() + "guarantee,C1,CX,\n")
        with pytest.raises(SerializationError, match="not declared"):
            load_registry_csvs(tmp_path)
