"""Unit tests for the SVG renderer."""

import xml.etree.ElementTree as ET

from repro.io.svg import tpiin_to_svg, write_tpiin_svg
from repro.mining.detector import detect

SVG_NS = "{http://www.w3.org/2000/svg}"


class TestSvg:
    def test_well_formed_xml(self, fig8):
        svg = tpiin_to_svg(fig8)
        root = ET.fromstring(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_node_shapes_follow_conventions(self, fig8):
        root = ET.fromstring(tpiin_to_svg(fig8))
        rects = root.findall(f"{SVG_NS}rect")
        ellipses = root.findall(f"{SVG_NS}ellipse")
        # 8 companies as boxes (+1 background rect), 7 persons as ellipses.
        assert len([r for r in rects if r.get("rx")]) == 8
        assert len(ellipses) == 7

    def test_arc_colors(self, fig8):
        svg = tpiin_to_svg(fig8)
        assert 'stroke="blue"' in svg  # influence
        assert 'stroke="black"' in svg  # trading

    def test_highlighting(self, fig8):
        result = detect(fig8)
        svg = tpiin_to_svg(fig8, highlight_arcs=result.suspicious_trading_arcs)
        assert svg.count('stroke="red"') == 3

    def test_title_escaped(self, fig8):
        svg = tpiin_to_svg(fig8, title="A <&> B")
        assert "A &lt;&amp;&gt; B" in svg
        ET.fromstring(svg)

    def test_write(self, fig8, tmp_path):
        path = write_tpiin_svg(fig8, tmp_path / "net.svg", title="Fig 8")
        assert path.stat().st_size > 500

    def test_long_labels_truncated(self):
        from repro.fusion.tpiin import TPIIN

        tpiin = TPIIN.build(
            persons=["syn:AVeryLongPersonName+Another"],
            companies=["C"],
            influence=[("syn:AVeryLongPersonName+Another", "C")],
        )
        svg = tpiin_to_svg(tpiin)
        assert "…" in svg
        ET.fromstring(svg)

    def test_layers_follow_influence_depth(self, fig6):
        # P1 sits above C1, which sits above C2 (its investee).
        root = ET.fromstring(tpiin_to_svg(fig6))
        texts = {
            t.text: float(t.get("y"))
            for t in root.findall(f"{SVG_NS}text")
            if t.text in {"P1", "C1", "C2"}
        }
        assert texts["P1"] < texts["C1"] < texts["C2"]
