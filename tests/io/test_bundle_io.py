"""Unit tests for the single-file TPIIN bundle."""

import json

import pytest

from repro.errors import SerializationError
from repro.io.bundle_io import read_tpiin_bundle, write_tpiin_bundle
from repro.mining.detector import detect
from repro.mining.detector import detect


def fused_with_scs():
    from repro.datagen.cases import fig7_source_graphs
    from repro.fusion.pipeline import fuse
    from repro.model.colors import InfluenceKind
    from repro.model.homogeneous import (
        InfluenceGraph,
        InterdependenceGraph,
        InvestmentGraph,
        TradingGraph,
    )

    g2 = InfluenceGraph()
    g2.add_influence("p1", "a", InfluenceKind.CEO_OF, legal_person=True)
    g2.add_influence("p2", "b", InfluenceKind.CEO_OF, legal_person=True)
    gi = InvestmentGraph()
    gi.add_investment("a", "b")
    gi.add_investment("b", "a")
    g4 = TradingGraph()
    g4.add_trade("a", "b")
    scs_case = fuse(InterdependenceGraph(), g2, gi, g4).tpiin

    src = fig7_source_graphs()
    fig7 = fuse(src.interdependence, src.influence, src.investment, src.trading).tpiin
    return scs_case, fig7


class TestRoundTrip:
    def test_fig7_bundle(self, tmp_path):
        _scs, fig7 = fused_with_scs()
        path = write_tpiin_bundle(fig7, tmp_path / "fig7.json")
        loaded = read_tpiin_bundle(path)
        assert set(loaded.graph.arcs()) == set(fig7.graph.arcs())
        assert loaded.node_map == {k: v for k, v in fig7.node_map.items()}
        assert loaded.arc_provenance == fig7.arc_provenance
        assert {g.key() for g in detect(loaded).groups} == {
            g.key() for g in detect(fig7).groups
        }

    def test_scs_bundle(self, tmp_path):
        scs_case, _fig7 = fused_with_scs()
        path = write_tpiin_bundle(scs_case, tmp_path / "scs.json")
        loaded = read_tpiin_bundle(path)
        assert loaded.intra_scs_trades == [("a", "b")]
        assert set(loaded.scs_subgraphs) == set(scs_case.scs_subgraphs)
        # The SCS group is minable from the reloaded bundle.
        result = detect(loaded, engine="fast")
        assert ("a", "b") in result.suspicious_trading_arcs

    def test_explanations_survive(self, tmp_path):
        from repro.analysis.explain import explain_group

        _scs, fig7 = fused_with_scs()
        loaded = read_tpiin_bundle(write_tpiin_bundle(fig7, tmp_path / "b.json"))
        result = detect(loaded)
        group = result.groups[0]
        assert "influences" not in explain_group(group, loaded) or True
        # Provenance phrases present (legal representative / major share).
        texts = [explain_group(g, loaded) for g in result.groups]
        assert any("legal representative" in t for t in texts)


class TestValidation:
    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SerializationError):
            read_tpiin_bundle(path)

    def test_wrong_version(self, tmp_path, fig8):
        path = write_tpiin_bundle(fig8, tmp_path / "b.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="version"):
            read_tpiin_bundle(path)

    def test_non_object(self, tmp_path):
        path = tmp_path / "arr.json"
        path.write_text("[1, 2]")
        with pytest.raises(SerializationError, match="object"):
            read_tpiin_bundle(path)

    def test_malformed_graph(self, tmp_path, fig8):
        path = write_tpiin_bundle(fig8, tmp_path / "b.json")
        payload = json.loads(path.read_text())
        payload["graph"]["arcs"].append(["X", "Y", "purple"])
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError):
            read_tpiin_bundle(path)

    def test_loaded_bundle_is_validated(self, tmp_path, fig8):
        path = write_tpiin_bundle(fig8, tmp_path / "b.json")
        payload = json.loads(path.read_text())
        # Corrupt: trading arc into a person.
        payload["graph"]["arcs"].append(["C5", "L1", "TR"])
        path.write_text(json.dumps(payload))
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            read_tpiin_bundle(path)
