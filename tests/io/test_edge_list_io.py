"""Unit tests for CSV persistence of edge lists and TPIINs."""

import pytest

from repro.errors import SerializationError
from repro.io.edge_list_io import (
    read_edge_list_csv,
    read_tpiin_csv,
    write_edge_list_csv,
    write_tpiin_csv,
)


class TestEdgeListCsv:
    def test_roundtrip(self, fig8, tmp_path):
        path = tmp_path / "arcs.csv"
        write_edge_list_csv(fig8.to_edge_list(), path)
        loaded = read_edge_list_csv(path)
        original = fig8.to_edge_list()
        assert loaded.number_of_arcs == original.number_of_arcs
        assert loaded.first_trading_row == original.first_trading_row

    def test_header_enforced(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y,z\nA,B,1\n")
        with pytest.raises(SerializationError, match="header"):
            read_edge_list_csv(path)

    def test_column_count_enforced(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("start,end,color\nA,B\n")
        with pytest.raises(SerializationError, match="3 columns"):
            read_edge_list_csv(path)

    def test_color_must_be_int(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("start,end,color\nA,B,blue\n")
        with pytest.raises(SerializationError, match="integer"):
            read_edge_list_csv(path)

    def test_unknown_color_code(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("start,end,color\nA,B,9\n")
        with pytest.raises(SerializationError, match="unknown color"):
            read_edge_list_csv(path)


class TestTpiinCsv:
    def test_roundtrip(self, fig8, tmp_path):
        arc_path = tmp_path / "arcs.csv"
        node_path = tmp_path / "nodes.csv"
        write_tpiin_csv(fig8, arc_path, node_path)
        loaded = read_tpiin_csv(arc_path, node_path)
        loaded.validate()
        assert set(loaded.graph.arcs()) == set(fig8.graph.arcs())
        assert set(loaded.graph.nodes()) == set(fig8.graph.nodes())
        for node in fig8.graph.nodes():
            assert loaded.graph.node_color(node) == fig8.graph.node_color(node)

    def test_isolated_node_survives(self, fig8, tmp_path):
        from repro.model.colors import VColor

        fig8.graph.add_node("hermit", VColor.COMPANY)
        arc_path = tmp_path / "arcs.csv"
        node_path = tmp_path / "nodes.csv"
        write_tpiin_csv(fig8, arc_path, node_path)
        loaded = read_tpiin_csv(arc_path, node_path)
        assert loaded.graph.has_node("hermit")

    def test_node_header_enforced(self, fig8, tmp_path):
        arc_path = tmp_path / "arcs.csv"
        node_path = tmp_path / "nodes.csv"
        write_tpiin_csv(fig8, arc_path, node_path)
        node_path.write_text("id,kind\nA,Person\n")
        with pytest.raises(SerializationError, match="header"):
            read_tpiin_csv(arc_path, node_path)

    def test_unknown_node_color(self, fig8, tmp_path):
        arc_path = tmp_path / "arcs.csv"
        node_path = tmp_path / "nodes.csv"
        write_tpiin_csv(fig8, arc_path, node_path)
        node_path.write_text("node,color\nL1,Alien\n")
        with pytest.raises(SerializationError, match="color"):
            read_tpiin_csv(arc_path, node_path)

    def test_detection_equal_after_roundtrip(self, fig8, tmp_path):
        from repro.mining.detector import detect

        arc_path = tmp_path / "arcs.csv"
        node_path = tmp_path / "nodes.csv"
        write_tpiin_csv(fig8, arc_path, node_path)
        loaded = read_tpiin_csv(arc_path, node_path)
        assert {g.key() for g in detect(loaded).groups} == {
            g.key() for g in detect(fig8).groups
        }
