"""Unit tests for the TPIIN structure (Definition 1, Property 1)."""

import pytest

from repro.errors import ValidationError
from repro.fusion.tpiin import TPIIN
from repro.model.colors import EColor, VColor


class TestBuildAndViews:
    def test_build_and_stats(self, fig6):
        stats = fig6.stats()
        assert stats.persons == 1
        assert stats.companies == 3
        assert stats.influence_arcs == 3
        assert stats.trading_arcs == 1
        assert stats.nodes == 4
        assert stats.arcs == 4
        assert stats.average_node_degree == pytest.approx(1.0)

    def test_views(self, fig6):
        antecedent = fig6.antecedent_graph()
        assert antecedent.number_of_arcs() == 3
        assert antecedent.number_of_nodes() == 4  # all nodes kept
        trading = fig6.trading_graph()
        assert set(trading.arcs()) == {("C2", "C3", EColor.TRADING)}

    def test_node_iterators(self, fig6):
        assert set(fig6.persons()) == {"P1"}
        assert set(fig6.companies()) == {"C1", "C2", "C3"}
        assert set(fig6.trading_arcs()) == {("C2", "C3")}
        assert ("P1", "C1") in set(fig6.influence_arcs())

    def test_antecedent_roots(self, fig8):
        assert set(fig8.antecedent_roots()) == {
            "L1", "L2", "L3", "L4", "L5", "B1", "B2",
        }


class TestValidation:
    def test_paper_fixtures_validate(self, fig6, fig8, case1, case2, case3):
        for tpiin in (fig6, fig8, case1, case2, case3):
            tpiin.validate()

    def test_person_with_indegree_rejected(self):
        t = TPIIN.build(
            persons=["p", "q"], companies=["c"], influence=[("p", "c")]
        )
        t.graph.add_arc("c", "q", EColor.INFLUENCE)
        with pytest.raises(ValidationError):
            t.validate()

    def test_trading_between_non_companies_rejected(self):
        t = TPIIN.build(persons=["p"], companies=["c"], influence=[("p", "c")])
        t.graph.add_arc("c", "p", EColor.TRADING)
        with pytest.raises(ValidationError):
            t.validate()

    def test_trading_from_person_rejected(self):
        t = TPIIN.build(persons=["p"], companies=["c"])
        t.graph.add_arc("p", "c", EColor.TRADING)
        with pytest.raises(ValidationError, match="companies"):
            t.validate()

    def test_influence_into_person_rejected(self):
        t = TPIIN.build(persons=["p", "q"], companies=["c"])
        t.graph.add_arc("p", "q", EColor.INFLUENCE)
        with pytest.raises(ValidationError):
            t.validate()

    def test_cyclic_antecedent_rejected(self):
        t = TPIIN.build(
            companies=["a", "b"],
            influence=[("a", "b"), ("b", "a")],
        )
        with pytest.raises(ValidationError, match="cycle"):
            t.validate()

    def test_unknown_node_color_rejected(self):
        t = TPIIN.build(companies=["a"])
        t.graph.add_node("weird", "Alien")
        with pytest.raises(ValidationError):
            t.validate()

    def test_self_loop_rejected(self):
        t = TPIIN.build(companies=["a", "b"], influence=[("a", "b")])
        t.graph.add_arc("a", "a", EColor.TRADING)
        with pytest.raises(ValidationError):
            t.validate()


class TestEdgeListConversion:
    def test_roundtrip(self, fig8):
        edge_list = fig8.to_edge_list()
        assert edge_list.first_trading_row == 14
        back = TPIIN.from_edge_list(edge_list)
        assert set(back.graph.arcs()) == set(fig8.graph.arcs())
        assert back.graph.node_color("L1") == VColor.PERSON
        assert back.graph.node_color("C4") == VColor.COMPANY

    def test_inference_without_colors(self, fig8):
        edge_list = fig8.to_edge_list()
        # Drop the color hints: rebuild relies on structural inference.
        stripped = type(edge_list)(edge_list.array, edge_list.nodes)
        back = TPIIN.from_edge_list(stripped)
        back.validate()
        assert back.graph.node_color("L1") == VColor.PERSON
        assert back.graph.node_color("C6") == VColor.COMPANY

    def test_scs_members_property(self, fig8):
        assert fig8.scs_members == {}
