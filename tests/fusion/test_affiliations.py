"""Unit tests for the extra affiliation relationships (future work)."""

import pytest

from repro.errors import FusionError, ValidationError
from repro.fusion.pipeline import fuse
from repro.mining.detector import detect
from repro.mining.oracle import suspicious_arc_oracle
from repro.model.colors import AffiliationKind, InfluenceKind
from repro.model.homogeneous import (
    AffiliationGraph,
    InfluenceGraph,
    InterdependenceGraph,
    InvestmentGraph,
    TradingGraph,
)


def base_sources(companies=("A", "B", "C")):
    g1 = InterdependenceGraph()
    g2 = InfluenceGraph()
    for i, company in enumerate(companies):
        g2.add_influence(
            f"p{i}", company, InfluenceKind.CEO_OF, legal_person=True
        )
    return g1, g2, InvestmentGraph(), TradingGraph()


class TestAffiliationGraph:
    def test_add_and_validate(self):
        graph = AffiliationGraph()
        assert graph.add_affiliation("A", "B", AffiliationKind.GUARANTEE)
        assert graph.add_affiliation("A", "C", "franchise")
        graph.validate()
        assert graph.number_of_arcs == 2

    def test_self_affiliation_rejected(self):
        with pytest.raises(ValidationError, match="distinct"):
            AffiliationGraph().add_affiliation("A", "A", "guarantee")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AffiliationGraph().add_affiliation("A", "B", "friendship")

    def test_parallel_kinds_coexist(self):
        graph = AffiliationGraph()
        graph.add_affiliation("A", "B", "guarantee")
        graph.add_affiliation("A", "B", "licensing")
        assert graph.number_of_arcs == 2


class TestFusionWithAffiliations:
    def test_guarantor_becomes_common_antecedent(self):
        g1, g2, gi, g4 = base_sources()
        affiliations = AffiliationGraph()
        affiliations.add_affiliation("A", "B", AffiliationKind.GUARANTEE)
        affiliations.add_affiliation("A", "C", AffiliationKind.GUARANTEE)
        g4.add_trade("B", "C")
        tpiin = fuse(g1, g2, gi, g4, affiliations=affiliations).tpiin
        result = detect(tpiin)
        assert ("B", "C") in result.suspicious_trading_arcs
        assert any("A" in g.members for g in result.groups)
        assert result.suspicious_trading_arcs == suspicious_arc_oracle(tpiin)

    def test_without_affiliations_not_suspicious(self):
        g1, g2, gi, g4 = base_sources()
        g4.add_trade("B", "C")
        tpiin = fuse(g1, g2, gi, g4).tpiin
        assert detect(tpiin).suspicious_trading_arcs == set()

    def test_affiliation_investment_cycle_contracts(self):
        # A invests in B; B guarantees A: a mixed-kind directed cycle.
        g1, g2, gi, g4 = base_sources()
        gi.add_investment("A", "B")
        affiliations = AffiliationGraph()
        affiliations.add_affiliation("B", "A", AffiliationKind.GUARANTEE)
        g4.add_trade("A", "B")
        result = fuse(g1, g2, gi, g4, affiliations=affiliations)
        assert len(result.company_syndicates) == 1
        tpiin = result.tpiin
        assert tpiin.intra_scs_trades == [("A", "B")]
        detection = detect(tpiin)
        assert ("A", "B") in detection.suspicious_trading_arcs

    def test_unknown_company_rejected(self):
        g1, g2, gi, g4 = base_sources()
        affiliations = AffiliationGraph()
        affiliations.add_affiliation("A", "GHOST", "guarantee")
        with pytest.raises(FusionError, match="GHOST"):
            fuse(g1, g2, gi, g4, affiliations=affiliations)

    def test_stage_report_mentions_affiliations(self):
        g1, g2, gi, g4 = base_sources()
        affiliations = AffiliationGraph()
        affiliations.add_affiliation("A", "B", "licensing")
        result = fuse(g1, g2, gi, g4, affiliations=affiliations)
        assert "affiliation" in result.stage_report()
