"""Unit tests for the multi-network fusion pipeline (Fig. 5)."""

import pytest

from repro.datagen.cases import case1_source_graphs, fig7_source_graphs
from repro.errors import FusionError
from repro.fusion.pipeline import fuse
from repro.model.colors import EColor, InfluenceKind, VColor
from repro.model.entities import EntityRegistry
from repro.model.homogeneous import (
    InfluenceGraph,
    InterdependenceGraph,
    InvestmentGraph,
    TradingGraph,
)


def fuse_fig7():
    src = fig7_source_graphs()
    return fuse(src.interdependence, src.influence, src.investment, src.trading)


class TestFig7Fusion:
    def test_counts_match_fig8(self):
        result = fuse_fig7()
        stats = result.tpiin.stats()
        # Fig. 8: 7 person nodes (2 syndicates + 5 persons), 8 companies,
        # 14 influence arcs, 5 trading arcs.
        assert stats.persons == 7
        assert stats.companies == 8
        assert stats.influence_arcs == 14
        assert stats.trading_arcs == 5

    def test_syndicates_created(self):
        result = fuse_fig7()
        members = {frozenset(s.members) for s in result.person_syndicates.values()}
        assert members == {frozenset({"L6", "LB"}), frozenset({"B5", "B6"})}

    def test_node_map_resolves_merged_persons(self):
        result = fuse_fig7()
        tpiin = result.tpiin
        l1 = tpiin.node_map["L6"]
        assert tpiin.node_map["LB"] == l1
        assert tpiin.graph.has_arc(l1, "C1", EColor.INFLUENCE)
        assert tpiin.graph.has_arc(l1, "C2", EColor.INFLUENCE)
        assert tpiin.graph.has_arc(l1, "C4", EColor.INFLUENCE)

    def test_stage_report(self):
        result = fuse_fig7()
        report = result.stage_report()
        for stage in ("G12", "G12'", "GB", "G123", "TPIIN"):
            assert stage in report

    def test_intermediates_kept_on_request(self):
        src = fig7_source_graphs()
        result = fuse(
            src.interdependence,
            src.influence,
            src.investment,
            src.trading,
            keep_intermediates=True,
        )
        assert set(result.intermediates) == {"G12'", "GB", "G123"}
        # G12' has no investment arcs yet; GB does.
        assert result.intermediates["G12'"].number_of_arcs() < result.intermediates[
            "GB"
        ].number_of_arcs()

    def test_registry_receives_syndicates(self):
        src = fig7_source_graphs()
        registry = EntityRegistry()
        result = fuse(
            src.interdependence,
            src.influence,
            src.investment,
            src.trading,
            registry=registry,
        )
        assert len(registry.syndicates) == 2
        syndicate_id = result.tpiin.node_map["B5"]
        assert registry.expand(syndicate_id) == frozenset({"B5", "B6"})


class TestCase1Fusion:
    def test_brothers_merge_and_group_structure_forms(self):
        src = case1_source_graphs()
        result = fuse(src.interdependence, src.influence, src.investment, src.trading)
        tpiin = result.tpiin
        merged = tpiin.node_map["L1"]
        assert tpiin.node_map["L2"] == merged
        assert tpiin.graph.has_arc(merged, "C1", EColor.INFLUENCE)
        assert tpiin.graph.has_arc(merged, "C2", EColor.INFLUENCE)
        assert tpiin.graph.has_arc("C1", "C3", EColor.INFLUENCE)


class TestSccPath:
    def build_sources(self):
        g1 = InterdependenceGraph()
        g2 = InfluenceGraph()
        g2.add_influence("p1", "a", InfluenceKind.CEO_OF, legal_person=True)
        g2.add_influence("p2", "b", InfluenceKind.CEO_OF, legal_person=True)
        g2.add_influence("p3", "c", InfluenceKind.CEO_OF, legal_person=True)
        gi = InvestmentGraph()
        gi.add_investment("a", "b")
        gi.add_investment("b", "a")  # mutual investment cycle
        gi.add_investment("b", "c")
        g4 = TradingGraph()
        g4.add_trade("a", "b")  # lands inside the SCS
        g4.add_trade("a", "c")
        return g1, g2, gi, g4

    def test_intra_scs_trade_set_aside(self):
        result = fuse(*self.build_sources())
        tpiin = result.tpiin
        assert tpiin.intra_scs_trades == [("a", "b")]
        assert len(tpiin.scs_subgraphs) == 1
        scs_id = next(iter(tpiin.scs_subgraphs))
        assert tpiin.scs_members[scs_id] == frozenset({"a", "b"})
        # The other trading arc is remapped to the syndicate.
        assert tpiin.graph.has_arc(scs_id, "c", EColor.TRADING)
        tpiin.validate()

    def test_influence_reattached_to_syndicate(self):
        result = fuse(*self.build_sources())
        tpiin = result.tpiin
        scs_id = next(iter(tpiin.scs_subgraphs))
        assert tpiin.graph.has_arc("p1", scs_id, EColor.INFLUENCE)
        assert tpiin.graph.has_arc("p2", scs_id, EColor.INFLUENCE)
        assert tpiin.graph.node_color(scs_id) == VColor.COMPANY


class TestValidationGates:
    def test_unknown_company_in_trading_rejected(self):
        g1 = InterdependenceGraph()
        g2 = InfluenceGraph()
        g2.add_influence("p", "a", InfluenceKind.CEO_OF, legal_person=True)
        gi = InvestmentGraph()
        g4 = TradingGraph()
        g4.add_trade("a", "mystery")
        with pytest.raises(FusionError, match="mystery"):
            fuse(g1, g2, gi, g4)

    def test_validation_can_be_skipped(self):
        g1 = InterdependenceGraph()
        g2 = InfluenceGraph()
        g2.add_influence("p", "a", InfluenceKind.CEO_OF, legal_person=True)
        gi = InvestmentGraph()
        g4 = TradingGraph()
        g4.add_trade("a", "mystery")
        result = fuse(g1, g2, gi, g4, validate_inputs=False)
        assert result.tpiin.graph.has_node("mystery")
