"""Unit tests for interdependence edge contraction (G12 -> G12')."""

import pytest

from repro.errors import FusionError
from repro.fusion.contraction import (
    contract_edge_once,
    contract_interdependence,
    fully_contract_by_edges,
)
from repro.graph.digraph import DiGraph, UnGraph
from repro.model.colors import VColor


def influence_fixture() -> DiGraph:
    g = DiGraph()
    for p in ("p1", "p2", "p3", "solo"):
        g.add_node(p, VColor.PERSON)
    for c in ("c1", "c2", "c3"):
        g.add_node(c, VColor.COMPANY)
    g.add_arc("p1", "c1", "Influence")
    g.add_arc("p2", "c2", "Influence")
    g.add_arc("p3", "c2", "Influence")
    g.add_arc("solo", "c3", "Influence")
    return g


def interdependence_fixture() -> UnGraph:
    u = UnGraph()
    u.add_edge("p1", "p2", "kinship")
    u.add_edge("p2", "p3", "interlocking")
    return u


class TestComponentContraction:
    def test_component_merges_into_one_syndicate(self):
        result = contract_interdependence(influence_fixture(), interdependence_fixture())
        assert len(result.syndicates) == 1
        syndicate_id = next(iter(result.syndicates))
        assert result.syndicates[syndicate_id].members == frozenset({"p1", "p2", "p3"})
        assert result.resolve("p1") == syndicate_id
        assert result.resolve("solo") == "solo"

    def test_arcs_reattached_and_deduped(self):
        result = contract_interdependence(influence_fixture(), interdependence_fixture())
        syndicate_id = next(iter(result.syndicates))
        # p2 -> c2 and p3 -> c2 collapse into one arc.
        assert result.graph.out_degree(syndicate_id) == 2
        assert result.graph.has_arc(syndicate_id, "c1")
        assert result.graph.has_arc(syndicate_id, "c2")

    def test_untouched_persons_survive(self):
        result = contract_interdependence(influence_fixture(), interdependence_fixture())
        assert result.graph.has_node("solo")
        assert result.graph.has_arc("solo", "c3")

    def test_companies_never_merge(self):
        result = contract_interdependence(influence_fixture(), interdependence_fixture())
        for c in ("c1", "c2", "c3"):
            assert result.graph.node_color(c) == VColor.COMPANY

    def test_g1_only_person_merges_too(self):
        influence = influence_fixture()
        inter = interdependence_fixture()
        inter.add_edge("p3", "ghost", "kinship")  # ghost has no influence arcs
        result = contract_interdependence(influence, inter)
        syndicate = next(iter(result.syndicates.values()))
        assert "ghost" in syndicate.members

    def test_company_in_g1_rejected(self):
        influence = influence_fixture()
        inter = UnGraph()
        inter.add_edge("p1", "c1", "kinship")
        with pytest.raises(FusionError, match="company"):
            contract_interdependence(influence, inter)

    def test_empty_interdependence_is_identity(self):
        influence = influence_fixture()
        result = contract_interdependence(influence, UnGraph())
        assert set(result.graph.nodes()) == set(influence.nodes())
        assert result.syndicates == {}


class TestPairwiseEquivalence:
    def test_single_step(self):
        graph, inter, syndicate_id = contract_edge_once(
            influence_fixture(), interdependence_fixture(), "p1", "p2"
        )
        assert graph.has_arc(syndicate_id, "c1")
        assert graph.has_arc(syndicate_id, "c2")
        assert inter.has_edge(syndicate_id, "p3")
        assert not graph.has_node("p1")

    def test_missing_link_rejected(self):
        with pytest.raises(FusionError, match="no interdependence link"):
            contract_edge_once(
                influence_fixture(), interdependence_fixture(), "p1", "p3"
            )

    def test_iterated_equals_component_contraction(self):
        component = contract_interdependence(
            influence_fixture(), interdependence_fixture()
        )
        iterated_graph, _members = fully_contract_by_edges(
            influence_fixture(), interdependence_fixture()
        )
        assert set(iterated_graph.nodes()) == set(component.graph.nodes())
        assert set(iterated_graph.arcs()) == set(component.graph.arcs())


class TestEmptyEdgeIteration:
    def test_fully_contract_with_no_links(self):
        graph, members = fully_contract_by_edges(influence_fixture(), UnGraph())
        assert members == {}
        assert set(graph.nodes()) == set(influence_fixture().nodes())

    def test_syndicate_via_records_link_kinds(self):
        result = contract_interdependence(
            influence_fixture(), interdependence_fixture()
        )
        syndicate = next(iter(result.syndicates.values()))
        assert syndicate.via == frozenset({"kinship", "interlocking"})
