"""Unit tests for strongly-connected-subgraph contraction (GB -> G123)."""

from repro.fusion.scc import contract_strongly_connected
from repro.graph.dag import is_dag
from repro.graph.digraph import DiGraph
from repro.model.colors import VColor


def mutual_investment_fixture() -> DiGraph:
    """p -> a; a <-> b mutual investment; b -> c downstream."""
    g = DiGraph()
    g.add_node("p", VColor.PERSON)
    for c in ("a", "b", "c"):
        g.add_node(c, VColor.COMPANY)
    g.add_arc("p", "a", "Influence")
    g.add_arc("a", "b", "Investment")
    g.add_arc("b", "a", "Investment")
    g.add_arc("b", "c", "Investment")
    return g


class TestContraction:
    def test_produces_dag(self):
        result = contract_strongly_connected(
            mutual_investment_fixture(), cycle_color="Investment"
        )
        assert is_dag(result.graph)

    def test_syndicate_membership(self):
        result = contract_strongly_connected(
            mutual_investment_fixture(), cycle_color="Investment"
        )
        assert len(result.syndicates) == 1
        syndicate = next(iter(result.syndicates.values()))
        assert syndicate.members == frozenset({"a", "b"})
        assert syndicate.kind == "company"

    def test_arcs_reattached(self):
        result = contract_strongly_connected(
            mutual_investment_fixture(), cycle_color="Investment"
        )
        scs_id = next(iter(result.syndicates))
        assert result.graph.has_arc("p", scs_id)
        assert result.graph.has_arc(scs_id, "c")
        assert result.resolve("a") == scs_id
        assert result.resolve("c") == "c"

    def test_saved_subgraph_preserves_internal_arcs(self):
        result = contract_strongly_connected(
            mutual_investment_fixture(), cycle_color="Investment"
        )
        scs_id = next(iter(result.syndicates))
        saved = result.saved_subgraphs[scs_id]
        assert saved.has_arc("a", "b", "Investment")
        assert saved.has_arc("b", "a", "Investment")
        assert saved.number_of_nodes() == 2

    def test_syndicate_node_is_company_colored(self):
        result = contract_strongly_connected(
            mutual_investment_fixture(), cycle_color="Investment"
        )
        scs_id = next(iter(result.syndicates))
        assert result.graph.node_color(scs_id) == VColor.COMPANY

    def test_acyclic_graph_untouched(self):
        g = DiGraph()
        g.add_arc("a", "b", "Investment")
        result = contract_strongly_connected(g, cycle_color="Investment")
        assert result.syndicates == {}
        assert set(result.graph.arcs()) == set(g.arcs())

    def test_cycle_in_other_color_ignored(self):
        g = DiGraph()
        g.add_arc("a", "b", "Investment")
        g.add_arc("b", "a", "Trading")
        result = contract_strongly_connected(g, cycle_color="Investment")
        assert result.syndicates == {}

    def test_nested_cycles_merge(self):
        g = DiGraph()
        for u, v in [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"), ("d", "c")]:
            g.add_arc(u, v, "Investment")
        result = contract_strongly_connected(g, cycle_color="Investment")
        assert len(result.syndicates) == 1
        syndicate = next(iter(result.syndicates.values()))
        assert syndicate.members == frozenset({"a", "b", "c", "d"})
