"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_subcommands_present(self):
        parser = build_parser()
        for argv in (
            ["generate"],
            ["mine", "a.csv", "n.csv"],
            ["table1"],
            ["investigate", "C00000"],
            ["serve", "a.csv", "n.csv"],
        ):
            assert parser.parse_args(argv).command == argv[0]

    def test_engine_choices_include_incremental(self):
        parser = build_parser()
        for command in ("mine", "ingest"):
            args = parser.parse_args(
                [command, "a.csv", "--engine", "incremental"]
                if command == "ingest"
                else [command, "a.csv", "n.csv", "--engine", "incremental"]
            )
            assert args.engine == "incremental"
            assert args.processes is None

    def test_mine_accepts_processes(self):
        args = build_parser().parse_args(
            ["mine", "a.csv", "n.csv", "--engine", "parallel", "--processes", "2"]
        )
        assert args.processes == 2

    def test_serve_defaults(self, tmp_path):
        args = build_parser().parse_args(
            [
                "serve",
                "a.csv",
                "n.csv",
                "--port",
                "0",
                "--state-dir",
                str(tmp_path / "state"),
                "--no-fsync",
            ]
        )
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.snapshot_every == 500
        assert args.no_fsync
        assert args.max_cached_roots == 4096


class TestCommands:
    def test_generate_and_mine(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "generate",
                "--out",
                str(tmp_path / "net"),
                "--companies",
                "80",
                "--seed",
                "5",
                "--probability",
                "0.02",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "persons=" in out
        arcs = tmp_path / "net.arcs.csv"
        nodes = tmp_path / "net.nodes.csv"
        assert arcs.exists() and nodes.exists()

        code = main(
            [
                "mine",
                str(arcs),
                str(nodes),
                "--engine",
                "fast",
                "--out-dir",
                str(tmp_path / "out"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine=fast" in out
        assert (tmp_path / "out" / "detection.json").exists()

        code = main(
            [
                "mine",
                str(arcs),
                str(nodes),
                "--engine",
                "incremental",
                "--out-dir",
                str(tmp_path / "out-inc"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine=incremental" in out
        assert (tmp_path / "out-inc" / "detection.json").exists()

    def test_mine_detector_portfolio(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "generate",
                "--out",
                str(tmp_path / "net"),
                "--companies",
                "80",
                "--seed",
                "5",
                "--probability",
                "0.02",
            ]
        )
        assert code == 0
        capsys.readouterr()

        code = main(
            [
                "mine",
                str(tmp_path / "net.arcs.csv"),
                str(tmp_path / "net.nodes.csv"),
                "--detector",
                "all",
                "--out-dir",
                str(tmp_path / "out"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        detector_lines = [l for l in out.splitlines() if l.startswith("detector=")]
        assert len(detector_lines) == 4
        report = json.loads((tmp_path / "out" / "findings.json").read_text())
        assert report["detectors"] == [
            "circular-trading",
            "iat-groups",
            "missing-trader",
            "shared-household",
        ]
        # The IAT reference run still writes the legacy artifacts.
        assert (tmp_path / "out" / "detection.json").exists()

        code = main(
            [
                "mine",
                str(tmp_path / "net.arcs.csv"),
                str(tmp_path / "net.nodes.csv"),
                "--detector",
                "circular-trading",
                "--out-dir",
                str(tmp_path / "rings"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detector=circular-trading" in out
        assert (tmp_path / "rings" / "findings.json").exists()
        assert not (tmp_path / "rings" / "detection.json").exists()

    def test_mine_profile_prints_stage_tree(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "generate",
                "--out",
                str(tmp_path / "net"),
                "--companies",
                "80",
                "--seed",
                "5",
                "--probability",
                "0.02",
            ]
        )
        assert code == 0
        capsys.readouterr()
        code = main(
            [
                "mine",
                str(tmp_path / "net.arcs.csv"),
                str(tmp_path / "net.nodes.csv"),
                "--profile",
                "--out-dir",
                str(tmp_path / "out"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stage tree (wall milliseconds)" in out
        assert "detect" in out
        assert "slowest subTPIINs" in out

    def test_table1_small(self, capsys):
        code = main(
            [
                "table1",
                "--companies",
                "80",
                "--seed",
                "5",
                "--probabilities",
                "0.02",
                "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p(trade)" in out
        assert out.count("100%") >= 4  # two accuracy columns x two rows


class TestNewCommands:
    def test_twophase(self, tmp_path, capsys):
        code = main(
            [
                "twophase",
                "--companies",
                "80",
                "--seed",
                "5",
                "--report",
                str(tmp_path / "audit.md"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "precision" in out
        report = (tmp_path / "audit.md").read_text()
        assert "## ITE-phase outcome" in report

    def test_ingest(self, tmp_path, capsys):
        from repro.datagen.config import ProvinceConfig
        from repro.datagen.province import generate_province
        from repro.io.registry_io import write_registry_csvs

        dataset = generate_province(ProvinceConfig.small(companies=50, seed=6))
        write_registry_csvs(dataset, tmp_path / "registry", trading_probability=0.05)
        code = main(
            [
                "ingest",
                str(tmp_path / "registry"),
                "--engine",
                "fast",
                "--out-dir",
                str(tmp_path / "out"),
            ]
        )
        assert code == 0
        assert (tmp_path / "out" / "detection.json").exists()

    def test_investigate(self, capsys):
        code = main(
            [
                "investigate",
                "C00001",
                "--companies",
                "100",
                "--seed",
                "8",
                "--probability",
                "0.03",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Affiliated transaction analysis: C00001" in out
        assert "Investment tree" in out
