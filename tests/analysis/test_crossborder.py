"""Unit tests for cross-border IAT screening."""

import pytest

from repro.analysis.crossborder import screen_cross_border
from repro.mining.detector import DetectionResult, detect
from repro.mining.groups import SuspiciousGroup
from repro.model.entities import Company, EntityRegistry


def registry_with(regions: dict[str, str]) -> EntityRegistry:
    registry = EntityRegistry()
    for company_id, region in regions.items():
        registry.add_company(Company(company_id=company_id, region=region))
    return registry


def result_with_arcs(arcs) -> DetectionResult:
    groups = [
        SuspiciousGroup(trading_trail=("root", seller, buyer), support_trail=("root", buyer))
        for seller, buyer in arcs
    ]
    return DetectionResult(
        groups=groups,
        total_trading_arcs=len(arcs),
        cross_component_trades=0,
        subtpiin_count=1,
        engine="test",
    )


class TestScreen:
    def test_split_by_region(self):
        registry = registry_with(
            {"A": "domestic", "B": "hongkong", "C": "domestic"}
        )
        result = result_with_arcs([("A", "B"), ("A", "C")])
        screen = screen_cross_border(result, registry)
        assert screen.cross_border_arcs == [("A", "B")]
        assert screen.domestic_arcs == [("A", "C")]
        assert screen.cross_border_share == pytest.approx(0.5)
        assert screen.corridor_counts[("domestic", "hongkong")] == 1

    def test_unknown_endpoints_not_misclassified(self):
        registry = registry_with({"A": "domestic"})
        result = result_with_arcs([("A", "scs:X+Y")])
        screen = screen_cross_border(result, registry)
        assert screen.unknown_region_arcs == [("A", "scs:X+Y")]
        assert screen.cross_border_share == 0.0

    def test_render(self):
        registry = registry_with({"A": "domestic", "B": "usa"})
        screen = screen_cross_border(result_with_arcs([("A", "B")]), registry)
        text = screen.render()
        assert "cross-border: 1" in text
        assert "domestic -> usa" in text

    def test_empty_result(self):
        screen = screen_cross_border(result_with_arcs([]), registry_with({}))
        assert screen.cross_border_share == 0.0

    def test_small_province_screen(self, small_province, small_province_tpiin):
        result = detect(small_province_tpiin, engine="fast")
        screen = screen_cross_border(result, small_province.registry)
        classified = (
            len(screen.cross_border_arcs)
            + len(screen.domestic_arcs)
            + len(screen.unknown_region_arcs)
        )
        assert classified == result.suspicious_arc_count
