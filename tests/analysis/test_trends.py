"""Unit tests for trend tracking over temporal windows."""

import pytest

from repro.analysis.trends import render_trend, sparkline, suspicion_trend
from repro.fusion.tpiin import TPIIN
from repro.mining.temporal import TimedTrade, sliding_window_detect


@pytest.fixture()
def windows(fig8):
    antecedent = TPIIN(graph=fig8.antecedent_graph())
    trades = [
        TimedTrade("C3", "C5", 0, 10),
        TimedTrade("C5", "C6", 5, 20),
        TimedTrade("C8", "C4", 0, 30),
        TimedTrade("C7", "C8", 15, 25),
    ]
    return list(sliding_window_detect(antecedent, trades, window=10, step=10))


class TestTrend:
    def test_points_match_windows(self, windows):
        points = suspicion_trend(windows)
        assert len(points) == len(windows)
        first = points[0]
        assert first.total_arcs == 3  # C3->C5, C5->C6, C8->C4 active
        assert first.suspicious_arcs == 2
        assert first.new_alerts == 2
        assert first.resolved_alerts == 0

    def test_share_computation(self, windows):
        points = suspicion_trend(windows)
        for point in points:
            if point.total_arcs:
                assert point.suspicious_share == pytest.approx(
                    point.suspicious_arcs / point.total_arcs
                )

    def test_render(self, windows):
        text = render_trend(suspicion_trend(windows))
        assert "alert churn" in text
        assert "share trend:" in text
        assert "[0, 10)" in text

    def test_empty(self):
        assert suspicion_trend([]) == []
        assert render_trend([]).startswith("window")


class TestSparkline:
    def test_scaling(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " "
        assert line[2] == "@"

    def test_all_zero(self):
        assert sparkline([0.0, 0.0]) == "  "

    def test_empty(self):
        assert sparkline([]) == ""
