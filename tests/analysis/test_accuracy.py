"""Unit tests for the cross-engine accuracy harness."""

from repro.analysis.accuracy import compare_engines


class TestCompareEngines:
    def test_fig8_all_agree(self, fig8):
        report = compare_engines(fig8)
        assert report.all_agree
        assert set(report.results) == {"faithful", "fast", "global-traversal"}
        assert all(report.arc_agreement.values())
        assert len(report.group_agreement) == 3  # all pairs

    def test_render(self, fig8):
        text = compare_engines(fig8).render()
        assert "OK" in text
        assert "MISMATCH" not in text
        assert "faithful" in text

    def test_engine_subset(self, fig6):
        report = compare_engines(fig6, engines=("faithful", "fast"))
        assert set(report.results) == {"faithful", "fast"}
        assert report.all_agree

    def test_oracle_arcs_populated(self, fig8):
        report = compare_engines(fig8, engines=("fast",))
        assert report.oracle_arcs == {("C3", "C5"), ("C5", "C6"), ("C7", "C8")}
