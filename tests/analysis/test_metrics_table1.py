"""Unit tests for Table-1 metrics and the sweep harness."""

import pytest

from repro.analysis.metrics import Table1Row, compute_table1_row
from repro.analysis.table1 import PAPER_TABLE1, run_table1
from repro.datagen.config import PAPER_TRADING_PROBABILITIES
from repro.mining.detector import detect


class TestRow:
    def test_row_from_fig8(self, fig8):
        result = detect(fig8)
        row = compute_table1_row(fig8, result, trading_probability=0.5)
        assert row.suspicious_trades == 3
        assert row.total_trades == 5
        assert row.trade_accuracy == 1.0
        assert row.group_accuracy == 1.0
        assert row.simple_groups == 3
        assert row.complex_groups == 0
        assert row.suspicious_percentage == pytest.approx(60.0)

    def test_reference_comparison(self, fig8):
        result = detect(fig8)
        row = compute_table1_row(
            fig8, result, trading_probability=0.5, reference_result=result
        )
        assert row.group_accuracy == 1.0

    def test_skip_oracle(self, fig8):
        result = detect(fig8)
        row = compute_table1_row(
            fig8, result, trading_probability=0.5, check_oracle=False
        )
        assert row.trade_accuracy == 1.0

    def test_cells_and_headers_align(self, fig8):
        result = detect(fig8)
        row = compute_table1_row(fig8, result, trading_probability=0.5)
        assert len(row.as_cells()) == len(Table1Row.HEADERS)


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self, small_province):
        return run_table1(small_province, probabilities=(0.01, 0.03, 0.06))

    def test_row_count_and_timings(self, sweep):
        assert len(sweep.rows) == 3
        assert len(sweep.seconds_per_row) == 3
        assert all(s > 0 for s in sweep.seconds_per_row)

    def test_trading_counts_grow_with_probability(self, sweep):
        totals = [row.total_trades for row in sweep.rows]
        assert totals == sorted(totals)
        assert totals[0] < totals[-1]

    def test_perfect_accuracy(self, sweep):
        assert all(row.trade_accuracy == 1.0 for row in sweep.rows)
        assert all(row.group_accuracy == 1.0 for row in sweep.rows)

    def test_suspicious_share_stable(self, sweep):
        shares = [row.suspicious_percentage for row in sweep.rows]
        assert max(shares) - min(shares) < 3.0  # roughly flat, like Table 1

    def test_render(self, sweep):
        text = sweep.render()
        assert "p(trade)" in text
        assert len(text.splitlines()) == 2 + len(sweep.rows)

    def test_faithful_engine_sweep(self, small_province):
        sweep = run_table1(
            small_province, probabilities=(0.01,), engine="faithful"
        )
        assert sweep.rows[0].trade_accuracy == 1.0


class TestPaperReference:
    def test_paper_table_covers_all_probabilities(self):
        assert set(PAPER_TABLE1) == set(PAPER_TRADING_PROBABILITIES)

    def test_paper_suspicious_share_band(self):
        shares = [row[5] for row in PAPER_TABLE1.values()]
        assert min(shares) > 4.9 and max(shares) < 5.4

    def test_render_with_paper(self, small_province):
        sweep = run_table1(small_province, probabilities=(0.01,))
        text = sweep.render_with_paper()
        assert "complex (paper)" in text
        assert "36,702" in text  # the paper's p=0.01 complex count


class TestSweepOptions:
    def test_skip_oracle_verification(self, small_province):
        sweep = run_table1(
            small_province, probabilities=(0.02,), verify_against_oracle=False
        )
        assert sweep.rows[0].trade_accuracy == 1.0  # reported, unchecked

    def test_collect_groups_mode(self, small_province):
        sweep = run_table1(
            small_province, probabilities=(0.02,), collect_groups=True
        )
        assert sweep.rows[0].group_accuracy == 1.0
