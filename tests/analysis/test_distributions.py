"""Unit tests for distributional statistics."""

import pytest

from repro.analysis.distributions import compute_distributions
from repro.mining.detector import detect
from repro.mining.groups import GroupKind


class TestDistributionsFig8:
    @pytest.fixture()
    def dist(self, fig8):
        return compute_distributions(detect(fig8))

    def test_group_sizes(self, dist):
        # (L1,C1,C2,C3,C5) size 5; (B1,C5,C6) and (B2,C7,C8) size 3.
        assert dist.group_size_histogram == {5: 1, 3: 2}
        assert dist.max_group_size == 5
        assert dist.mean_group_size == pytest.approx(11 / 3)

    def test_trail_lengths(self, dist):
        # Trading trails of lengths 4, 3, 3; support trails 3, 2, 2.
        assert dist.trail_length_histogram == {4: 1, 3: 3, 2: 2}

    def test_groups_per_arc(self, dist):
        assert dist.groups_per_arc_histogram == {1: 3}
        assert dist.mean_groups_per_suspicious_arc == 1.0

    def test_kinds_and_tops(self, dist):
        assert dist.kind_counts == {GroupKind.MATCHED: 3}
        antecedents = dict(dist.top_antecedents)
        assert antecedents == {"L1": 1, "B1": 1, "B2": 1}
        assert len(dist.top_arcs) == 3

    def test_render(self, dist):
        text = dist.render()
        assert "mean size" in text
        assert "busiest antecedents" in text


class TestDistributionsEdge:
    def test_empty_result(self, fig8):
        from repro.mining.detector import DetectionResult

        empty = DetectionResult(
            groups=[],
            total_trading_arcs=0,
            cross_component_trades=0,
            subtpiin_count=0,
            engine="x",
        )
        dist = compute_distributions(empty)
        assert dist.mean_group_size == 0.0
        assert dist.mean_groups_per_suspicious_arc == 0.0
        assert "groups: 0" in dist.render()

    def test_small_province_consistency(self, small_province_tpiin):
        from repro.mining.detector import detect

        result = detect(small_province_tpiin, engine="fast")
        dist = compute_distributions(result)
        assert sum(dist.group_size_histogram.values()) == result.group_count
        assert dist.mean_groups_per_suspicious_arc == pytest.approx(
            result.group_count / result.suspicious_arc_count
        )
