"""Unit tests for the markdown audit report."""

from repro.analysis.audit_report import build_audit_report, write_audit_report
from repro.mining.detector import detect


class TestAuditReport:
    def test_fig8_report_sections(self, fig8):
        report = build_audit_report(fig8, detect(fig8))
        assert report.startswith("# Suspicious tax-evasion group audit")
        assert "## Network overview" in report
        assert "## Headline detection metrics" in report
        assert "## Distributions" in report
        assert "## Top 10 suspicious trading relationships" in report
        assert "C3 -> C5" in report
        assert "L1, C1, C3 -> C5" in report

    def test_custom_title_and_top(self, fig8):
        report = build_audit_report(
            fig8, detect(fig8), title="Zhejiang pilot", top=2
        )
        assert report.startswith("# Zhejiang pilot")
        assert "## Top 2" in report

    def test_includes_two_phase_section(
        self, small_province, small_province_tpiin
    ):
        from repro.ite.pipeline import run_two_phase
        from repro.ite.transactions import simulate_transactions
        from repro.mining.detector import detect

        result = detect(small_province_tpiin, engine="fast")
        industry_of = {
            c.company_id: c.industry
            for c in small_province.registry.companies.values()
        }
        book = simulate_transactions(
            list(small_province_tpiin.trading_arcs()),
            result.suspicious_trading_arcs,
            industry_of,
        )
        two = run_two_phase(small_province_tpiin, book, msg_result=result)
        report = build_audit_report(
            small_province_tpiin, result, two_phase=two
        )
        assert "## ITE-phase outcome" in report
        assert "workload share" in report

    def test_write(self, fig8, tmp_path):
        path = write_audit_report(tmp_path / "audit.md", fig8, detect(fig8))
        assert path.exists()
        assert path.read_text().startswith("#")

    def test_count_only_result_skips_group_sections(self, fig8):
        from repro.mining.detector import detect

        result = detect(fig8, engine="fast", collect_groups=False)
        report = build_audit_report(fig8, result)
        assert "## Distributions" not in report
        assert "simple suspicious groups" in report
