"""Unit tests for proof-chain narratives."""

from repro.analysis.explain import explain_arc, explain_group
from repro.datagen.cases import fig7_source_graphs
from repro.fusion.pipeline import fuse
from repro.fusion.tpiin import TPIIN
from repro.mining.detector import detect
from repro.mining.groups import GroupKind, SuspiciousGroup


class TestExplainFused:
    def test_narrative_uses_provenance_and_registry(self):
        from repro.model.entities import EntityRegistry

        src = fig7_source_graphs()
        registry = EntityRegistry()
        tpiin = fuse(
            src.interdependence,
            src.influence,
            src.investment,
            src.trading,
            registry=registry,
        ).tpiin
        result = detect(tpiin)
        l1 = tpiin.node_map["L6"]
        group = next(g for g in result.groups if g.antecedent == l1)
        text = explain_group(group, tpiin)
        assert "kinship" in text  # syndicate merge reason
        assert "L6" in text and "LB" in text  # syndicate members
        assert "legal representative" in text  # is-CEO-of provenance
        assert "major share" in text  # investment provenance
        assert "simple group" in text

    def test_explain_arc_aggregates(self):
        src = fig7_source_graphs()
        tpiin = fuse(
            src.interdependence, src.influence, src.investment, src.trading
        ).tpiin
        result = detect(tpiin)
        text = explain_arc(("C5", "C6"), result, tpiin)
        assert "proof chain" in text
        assert "B1" in text

    def test_unsuspicious_arc(self, fig8):
        result = detect(fig8)
        text = explain_arc(("C8", "C4"), result, fig8)
        assert "not an IAT candidate" in text


class TestExplainShapes:
    def test_unfused_tpiin_falls_back_to_generic_phrase(self, fig8):
        result = detect(fig8)
        group = result.groups[0]
        text = explain_group(group, fig8)
        assert "influences" in text  # no provenance available

    def test_circle_narrative(self):
        tpiin = TPIIN.build(
            persons=["a"],
            companies=["c4", "c5"],
            influence=[("a", "c4"), ("c4", "c5")],
            trading=[("c5", "c4")],
        )
        result = detect(tpiin)
        circle = next(g for g in result.groups if g.kind is GroupKind.CIRCLE)
        text = explain_group(circle, tpiin)
        assert "control circle" in text

    def test_scs_narrative(self):
        group = SuspiciousGroup(
            trading_trail=("a", "b"),
            support_trail=("a", "x", "b"),
            kind=GroupKind.SCS,
        )
        text = explain_group(group, TPIIN.build(companies=["a", "b", "x"]))
        assert "mutual-investment bloc" in text

    def test_syndicate_name_fallback_without_registry(self):
        tpiin = TPIIN.build(
            persons=["syn:L6+LB"],
            companies=["C1", "C2"],
            influence=[("syn:L6+LB", "C1"), ("syn:L6+LB", "C2")],
            trading=[("C1", "C2")],
        )
        result = detect(tpiin)
        text = explain_group(result.groups[0], tpiin)
        assert "person syndicate" in text


class TestCriticalEvidence:
    def test_single_chain_is_all_critical(self, fig8):
        from repro.analysis.explain import critical_evidence

        result = detect(fig8)
        critical = critical_evidence(("C3", "C5"), result)
        # One proof chain: every influence hop in it is critical.
        assert critical == frozenset(
            {("L1", "C1"), ("C1", "C3"), ("L1", "C2"), ("C2", "C5")}
        )

    def test_redundant_chains_have_no_single_point(self):
        from repro.analysis.explain import critical_evidence
        from repro.fusion.tpiin import TPIIN

        # Two independent antecedents behind the same trade.
        tpiin = TPIIN.build(
            persons=["p", "q"],
            companies=["X", "Y"],
            influence=[("p", "X"), ("p", "Y"), ("q", "X"), ("q", "Y")],
            trading=[("X", "Y")],
        )
        result = detect(tpiin)
        assert len(result.groups_for_arc(("X", "Y"))) == 2
        assert critical_evidence(("X", "Y"), result) == frozenset()
        text = explain_arc(("X", "Y"), result, tpiin)
        assert "redundant" in text

    def test_unsuspicious_arc_empty(self, fig8):
        from repro.analysis.explain import critical_evidence

        assert critical_evidence(("C8", "C4"), detect(fig8)) == frozenset()

    def test_critical_listed_in_narrative(self, fig8):
        result = detect(fig8)
        text = explain_arc(("C3", "C5"), result, fig8)
        assert "Critical evidence" in text
        assert "L1 -> C1" in text
