"""Unit tests for table rendering."""

import pytest

from repro.analysis.reporting import format_number, render_table


class TestFormatNumber:
    def test_ints_grouped(self):
        assert format_number(1234567) == "1,234,567"

    def test_floats_trimmed(self):
        assert format_number(5.1000) == "5.1"
        assert format_number(5.0) == "5"
        assert format_number(0.1234567) == "0.1235"

    def test_bools_and_strings(self):
        assert format_number(True) == "True"
        assert format_number("abc") == "abc"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "b"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert lines[0].endswith("b")
        assert lines[2].startswith("  1")
        assert lines[3].startswith("333")

    def test_separator_row(self):
        text = render_table(["col"], [[1]])
        assert "---" in text.splitlines()[1]

    def test_left_alignment(self):
        text = render_table(["name"], [["xy"]], align_right=False)
        assert text.splitlines()[2].startswith("xy")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert len(text.splitlines()) == 2
