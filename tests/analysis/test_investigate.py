"""Unit tests for the per-company investigation drill-down."""

import pytest

from repro.analysis.investigate import investigate_company
from repro.errors import MiningError
from repro.mining.detector import detect


class TestInvestigateFig8:
    @pytest.fixture()
    def c5(self, fig8):
        return investigate_company(fig8, detect(fig8), "C5")

    def test_influencers(self, c5):
        assert c5.influencers == ["B1", "L3"]

    def test_investors_and_holdings(self, c5):
        assert c5.investors == ["C2"]
        assert c5.holdings == []

    def test_affiliated_companies(self, c5):
        # Everything reachable from C5's antecedent cone.
        assert "C1" in c5.affiliated_companies
        assert "C3" in c5.affiliated_companies
        assert "C6" in c5.affiliated_companies  # via B1
        assert "C5" not in c5.affiliated_companies

    def test_groups_and_arcs(self, c5):
        assert len(c5.groups) == 2  # the L1 group and the B1 group
        sales = dict(c5.suspicious_sales)
        purchases = dict(c5.suspicious_purchases)
        assert "C6" in sales
        assert "C3" in purchases
        assert all(0 < s <= 1 for s in sales.values())

    def test_render(self, c5):
        text = c5.render()
        assert "C5" in text
        assert "suspicious sales" in text
        assert "B1" in text

    def test_investment_tree(self, fig8):
        result = detect(fig8)
        c1 = investigate_company(fig8, result, "C1")
        tree = c1.investment_tree(fig8)
        assert tree.splitlines()[0] == "C1"
        assert "-> C3" in tree


class TestErrors:
    def test_unknown_company(self, fig8):
        with pytest.raises(MiningError, match="not in the TPIIN"):
            investigate_company(fig8, detect(fig8), "C99")

    def test_person_rejected(self, fig8):
        with pytest.raises(MiningError, match="not a company"):
            investigate_company(fig8, detect(fig8), "L1")


class TestNeighborhood:
    def test_radius_one(self, fig8):
        from repro.analysis.investigate import extract_neighborhood

        ego = extract_neighborhood(fig8, "C5", radius=1)
        nodes = set(ego.graph.nodes())
        assert nodes == {"C5", "C2", "L3", "B1", "C3", "C6", "C7"}
        # Induced arcs only.
        assert ego.graph.has_arc("C3", "C5")
        assert not ego.graph.has_node("C8")

    def test_radius_zero(self, fig8):
        from repro.analysis.investigate import extract_neighborhood

        ego = extract_neighborhood(fig8, "C5", radius=0)
        assert set(ego.graph.nodes()) == {"C5"}

    def test_provenance_carried(self):
        from repro.analysis.investigate import extract_neighborhood
        from repro.datagen.cases import fig7_source_graphs
        from repro.fusion.pipeline import fuse

        src = fig7_source_graphs()
        tpiin = fuse(
            src.interdependence, src.influence, src.investment, src.trading
        ).tpiin
        ego = extract_neighborhood(tpiin, "C5", radius=1)
        assert ego.provenance_of("C2", "C5")  # investment label survives

    def test_errors(self, fig8):
        from repro.analysis.investigate import extract_neighborhood
        from repro.errors import MiningError

        with pytest.raises(MiningError):
            extract_neighborhood(fig8, "ZZZ")
        with pytest.raises(MiningError):
            extract_neighborhood(fig8, "C5", radius=-1)
