"""Unit tests for combined transaction/company adjudication."""

import pytest

from repro.ite.adjudication import (
    ENTERPRISE_INCOME_TAX_RATE,
    adjudicate_company,
    adjudicate_transaction,
)
from repro.ite.transactions import IndustryProfile, Transaction

PROFILES = {
    "general": IndustryProfile(industry="general", unit_cost=100.0, standard_markup=0.12),
    "widgets": IndustryProfile(industry="widgets", unit_cost=50.0, standard_markup=0.20),
}


def tx(price: float, *, industry: str = "widgets", resale=None, tid="T1"):
    return Transaction(
        transaction_id=tid,
        seller="s",
        buyer="b",
        industry=industry,
        quantity=10.0,
        unit_price=price,
        unit_cost=50.0,
        resale_unit_price=resale,
    )


class TestTransactionVerdicts:
    def test_underpriced_flagged_by_multiple_methods(self):
        verdict = adjudicate_transaction(tx(40.0, resale=75.0), PROFILES)
        assert verdict.flagged
        assert set(verdict.methods_violated) >= {"CUP", "cost-plus"}
        assert verdict.adjustment > 0
        assert verdict.recovered_tax == pytest.approx(
            verdict.adjustment * ENTERPRISE_INCOME_TAX_RATE
        )

    def test_adjustment_is_max_over_methods(self):
        verdict = adjudicate_transaction(tx(40.0, resale=75.0), PROFILES)
        assert verdict.adjustment == max(j.adjustment for j in verdict.judgments)

    def test_fair_transaction_clears(self):
        verdict = adjudicate_transaction(tx(60.0, resale=72.0), PROFILES)
        assert not verdict.flagged
        assert verdict.adjustment == 0.0
        assert verdict.methods_violated == ()

    def test_resale_method_included_only_with_data(self):
        with_resale = adjudicate_transaction(tx(60.0, resale=72.0), PROFILES)
        without = adjudicate_transaction(tx(60.0), PROFILES)
        assert len(with_resale.judgments) == 3
        assert len(without.judgments) == 2

    def test_unknown_industry_falls_back_to_general(self):
        verdict = adjudicate_transaction(tx(60.0, industry="quantum"), PROFILES)
        assert verdict.judgments  # judged against the general profile


class TestCompanyVerdicts:
    def test_loss_making_company_flagged(self):
        sales = [tx(40.0, tid=f"T{i}") for i in range(5)]
        verdict = adjudicate_company("s", sales, PROFILES)
        assert verdict.flagged
        assert verdict.recovered_tax > 0
        assert verdict.judgment.method == "TNMM"

    def test_profitable_company_clears(self):
        sales = [tx(60.0, tid=f"T{i}") for i in range(5)]
        verdict = adjudicate_company("s", sales, PROFILES)
        assert not verdict.flagged

    def test_empty_book(self):
        verdict = adjudicate_company("s", [], PROFILES)
        assert not verdict.flagged
