"""Unit tests for the arm's-length-principle judgment methods."""

import pytest

from repro.errors import EvaluationError
from repro.ite.alp import (
    comparable_uncontrolled_price,
    cost_plus,
    resale_price,
    transactional_net_margin,
)
from repro.ite.transactions import IndustryProfile, Transaction

PROFILE = IndustryProfile(
    industry="meters",
    unit_cost=20.0,
    standard_markup=0.50,  # fair price 30, like Case 2's $30 domestic price
    markup_tolerance=0.05,
    net_margin_range=(0.05, 0.13),
    resale_margin=0.25,
)


def tx(price: float, *, quantity: float = 5000.0, cost: float = 20.0, resale=None):
    return Transaction(
        transaction_id="T",
        seller="C5",
        buyer="C6",
        industry="meters",
        quantity=quantity,
        unit_price=price,
        unit_cost=cost,
        resale_unit_price=resale,
    )


class TestCUP:
    def test_case2_underpricing_flagged(self):
        # Case 2: 5,000 smart meters at $20 against a $30 comparable.
        judgment = comparable_uncontrolled_price(tx(20.0), PROFILE)
        assert judgment.violated
        assert judgment.adjustment == pytest.approx(5000 * 10.0)
        assert "below" in judgment.rationale

    def test_fair_price_passes(self):
        judgment = comparable_uncontrolled_price(tx(30.0), PROFILE)
        assert not judgment.violated
        assert judgment.adjustment == 0.0

    def test_tolerance_boundary(self):
        # 10% tolerance: 27.0 exactly at the edge passes.
        assert not comparable_uncontrolled_price(tx(27.0), PROFILE).violated
        assert comparable_uncontrolled_price(tx(26.5), PROFILE).violated

    def test_bad_profile_rejected(self):
        broken = IndustryProfile(industry="x", unit_cost=0.0, standard_markup=0.0)
        with pytest.raises(EvaluationError):
            comparable_uncontrolled_price(tx(10.0), broken)


class TestCostPlus:
    def test_depressed_markup_flagged(self):
        judgment = cost_plus(tx(22.0), PROFILE)  # markup 10% vs standard 50%
        assert judgment.violated
        assert judgment.adjustment == pytest.approx(5000 * 8.0)

    def test_within_tolerance_passes(self):
        judgment = cost_plus(tx(29.5), PROFILE)  # markup 47.5% >= 45%
        assert not judgment.violated

    def test_case3_shape(self):
        # Case 3: 90M revenue on 100M of cost+expense against a 9% rate.
        profile = IndustryProfile(
            industry="bmx", unit_cost=100.0, standard_markup=0.09, markup_tolerance=0.0
        )
        transaction = Transaction(
            transaction_id="T",
            seller="C7",
            buyer="C8",
            industry="bmx",
            quantity=1_000_000.0,
            unit_price=90.0,
            unit_cost=100.0,
        )
        judgment = cost_plus(transaction, profile)
        assert judgment.violated
        # Fair revenue 109M against 90M booked: a 19M taxable adjustment,
        # the same order as the paper's 19.89M RMB reassessment.
        assert judgment.adjustment == pytest.approx(19_000_000.0)


class TestResalePrice:
    def test_requires_resale_data(self):
        with pytest.raises(EvaluationError, match="resale"):
            resale_price(tx(20.0), PROFILE)

    def test_underpriced_against_resale(self):
        # Buyer resells at 37.5 -> implied arm's-length price 30.
        judgment = resale_price(tx(20.0, resale=37.5), PROFILE)
        assert judgment.violated
        assert judgment.adjustment == pytest.approx(5000 * 10.0)

    def test_consistent_price_passes(self):
        judgment = resale_price(tx(29.0, resale=37.5), PROFILE)
        assert not judgment.violated


class TestTNMM:
    def test_case1_loss_maker_flagged(self):
        # Case 1's C3: persistent losses against a profitable industry.
        judgment = transactional_net_margin(100.0e6, 104.0e6, PROFILE, company_id="C3")
        assert judgment.violated
        # Adjustment lifts the margin to the interval midpoint (9%).
        assert judgment.adjustment == pytest.approx(9.0e6 + 4.0e6)

    def test_healthy_margin_passes(self):
        judgment = transactional_net_margin(100.0, 90.0, PROFILE)
        assert not judgment.violated

    def test_no_revenue_with_costs(self):
        judgment = transactional_net_margin(0.0, 50.0, PROFILE, company_id="X")
        assert judgment.violated
        assert judgment.adjustment > 0

    def test_no_activity(self):
        judgment = transactional_net_margin(0.0, 0.0, PROFILE)
        assert not judgment.violated


class TestProfitSplit:
    def test_under_allocated_producer_flagged(self):
        from repro.ite.alp import profit_split

        judgment = profit_split(
            {"C3": -1.0e6, "C2": 21.0e6},
            {"C3": 0.4, "C2": 0.6},
        )
        assert judgment.violated
        # C3 entitled to 40% of 20M = 8M; booked -1M -> 9M adjustment.
        assert judgment.adjustment == pytest.approx(9.0e6)
        assert "C3" in judgment.rationale

    def test_fair_split_passes(self):
        from repro.ite.alp import profit_split

        judgment = profit_split(
            {"a": 40.0, "b": 60.0}, {"a": 0.4, "b": 0.6}
        )
        assert not judgment.violated

    def test_focus_party(self):
        from repro.ite.alp import profit_split

        judgment = profit_split(
            {"a": 10.0, "b": 90.0},
            {"a": 0.5, "b": 0.5},
            focus="b",
        )
        assert not judgment.violated  # b is over-allocated, not under

    def test_unknown_focus(self):
        from repro.ite.alp import profit_split

        with pytest.raises(EvaluationError):
            profit_split({"a": 1.0}, {"a": 1.0}, focus="zzz")

    def test_mismatched_parties(self):
        from repro.ite.alp import profit_split

        with pytest.raises(EvaluationError, match="same parties"):
            profit_split({"a": 1.0}, {"b": 1.0})

    def test_non_positive_combined_profit(self):
        from repro.ite.alp import profit_split

        judgment = profit_split({"a": -5.0, "b": 2.0}, {"a": 0.5, "b": 0.5})
        assert not judgment.violated
        assert "not informative" in judgment.rationale

    def test_bad_weights(self):
        from repro.ite.alp import profit_split

        with pytest.raises(EvaluationError, match="positive"):
            profit_split({"a": 1.0}, {"a": 0.0})

    def test_empty(self):
        from repro.ite.alp import profit_split

        with pytest.raises(EvaluationError):
            profit_split({}, {})
