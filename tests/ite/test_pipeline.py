"""Unit tests for the two-phase MSG + ITE pipeline."""

import pytest

from repro.ite.pipeline import run_two_phase
from repro.ite.transactions import SimulationConfig, simulate_transactions
from repro.mining.detector import detect


@pytest.fixture(scope="module")
def setup(request):
    small_province = request.getfixturevalue("small_province")
    tpiin = request.getfixturevalue("small_province_tpiin")
    result = detect(tpiin, engine="fast")
    industry_of = {
        c.company_id: c.industry for c in small_province.registry.companies.values()
    }
    book = simulate_transactions(
        list(tpiin.trading_arcs()),
        result.suspicious_trading_arcs,
        industry_of,
        config=SimulationConfig(evasion_rate=0.5, seed=3),
    )
    return tpiin, result, book


class TestTwoPhase:
    def test_full_recall_on_planted_evasion(self, setup):
        tpiin, result, book = setup
        two = run_two_phase(tpiin, book, msg_result=result)
        # Evasion is planted only on IAT arcs the MSG-phase finds, and the
        # under-invoicing is aggressive enough for the ALP methods.
        assert two.recall == 1.0
        assert two.true_positives == len(book.evading_ids)

    def test_high_precision(self, setup):
        tpiin, result, book = setup
        two = run_two_phase(tpiin, book, msg_result=result)
        # A handful of aggressively discounted honest transactions are
        # expected false positives; precision stays well above chance.
        assert two.precision >= 0.7
        assert 0.0 <= two.f1 <= 1.0

    def test_workload_reduction(self, setup):
        tpiin, result, book = setup
        two = run_two_phase(tpiin, book, msg_result=result)
        assert two.transactions_total == len(book)
        assert two.workload_share < 0.25  # only suspicious arcs examined
        assert two.transactions_examined < two.transactions_total

    def test_recovered_tax_positive(self, setup):
        tpiin, result, book = setup
        two = run_two_phase(tpiin, book, msg_result=result)
        assert two.recovered_tax > 0
        assert len(two.flagged) >= two.true_positives

    def test_summary_text(self, setup):
        tpiin, result, book = setup
        summary = run_two_phase(tpiin, book, msg_result=result).summary()
        assert "precision" in summary and "recall" in summary

    def test_runs_detection_when_not_supplied(self, setup):
        tpiin, _result, book = setup
        two = run_two_phase(tpiin, book, engine="fast")
        assert two.msg_result.engine == "fast"
        assert two.recall == 1.0

    def test_empty_book(self, setup):
        tpiin, result, _book = setup
        from repro.ite.transactions import TransactionBook

        two = run_two_phase(tpiin, TransactionBook(), msg_result=result)
        assert two.workload_share == 0.0
        assert two.precision == 1.0
        assert two.recall == 1.0
