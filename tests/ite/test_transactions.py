"""Unit tests for transaction records and the simulator."""

import pytest

from repro.errors import EvaluationError
from repro.ite.transactions import (
    DEFAULT_PROFILES,
    SimulationConfig,
    Transaction,
    TransactionBook,
    simulate_transactions,
)


def tx(**overrides) -> Transaction:
    base = dict(
        transaction_id="T1",
        seller="a",
        buyer="b",
        industry="general",
        quantity=100.0,
        unit_price=10.0,
        unit_cost=8.0,
    )
    base.update(overrides)
    return Transaction(**base)


class TestTransaction:
    def test_derived_quantities(self):
        t = tx()
        assert t.revenue == 1000.0
        assert t.total_cost == 800.0
        assert t.gross_profit == 200.0
        assert t.markup == pytest.approx(0.25)

    def test_zero_cost_markup_guard(self):
        assert tx(unit_cost=0.0).markup == float("inf")

    def test_validation(self):
        with pytest.raises(EvaluationError):
            tx(quantity=0)
        with pytest.raises(EvaluationError):
            tx(unit_price=-1)


class TestBook:
    def test_indexing(self):
        book = TransactionBook()
        book.add(tx(transaction_id="T1"))
        book.add(tx(transaction_id="T2", buyer="c"), evading=True)
        assert len(book) == 2
        assert set(book.by_arc()) == {("a", "b"), ("a", "c")}
        assert set(book.by_seller()) == {"a"}
        assert book.is_evading(book.transactions[1])
        assert not book.is_evading(book.transactions[0])

    def test_for_arcs(self):
        book = TransactionBook()
        book.add(tx(transaction_id="T1"))
        book.add(tx(transaction_id="T2", buyer="c"))
        got = book.for_arcs({("a", "c")})
        assert [t.transaction_id for t in got] == ["T2"]


class TestSimulator:
    ARCS = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]
    INDUSTRY = {"a": "chemicals", "b": "retail", "c": "chemicals", "d": "food"}

    def test_every_arc_gets_transactions(self):
        book = simulate_transactions(self.ARCS, set(), self.INDUSTRY)
        assert set(book.by_arc()) == set(self.ARCS)
        assert all(t.quantity > 0 for t in book)

    def test_evasion_only_on_suspicious_arcs(self):
        suspicious = {("a", "b"), ("b", "c")}
        book = simulate_transactions(
            self.ARCS,
            suspicious,
            self.INDUSTRY,
            config=SimulationConfig(evasion_rate=1.0, seed=5),
        )
        for t in book:
            if book.is_evading(t):
                assert (t.seller, t.buyer) in suspicious

    def test_evading_prices_below_fair(self):
        book = simulate_transactions(
            self.ARCS,
            set(self.ARCS),
            self.INDUSTRY,
            config=SimulationConfig(evasion_rate=1.0, seed=5),
        )
        for t in book:
            profile = DEFAULT_PROFILES[t.industry]
            assert t.unit_price < profile.fair_unit_price

    def test_zero_evasion_rate(self):
        book = simulate_transactions(
            self.ARCS,
            set(self.ARCS),
            self.INDUSTRY,
            config=SimulationConfig(evasion_rate=0.0, seed=5),
        )
        assert book.evading_ids == set()

    def test_deterministic(self):
        cfg = SimulationConfig(seed=9)
        a = simulate_transactions(self.ARCS, set(), self.INDUSTRY, config=cfg)
        b = simulate_transactions(self.ARCS, set(), self.INDUSTRY, config=cfg)
        assert [t.transaction_id for t in a] == [t.transaction_id for t in b]
        assert [t.unit_price for t in a] == [t.unit_price for t in b]

    def test_config_validation(self):
        with pytest.raises(EvaluationError):
            SimulationConfig(mean_transactions_per_arc=0)
        with pytest.raises(EvaluationError):
            SimulationConfig(underpricing_range=(0.9, 0.5))
        with pytest.raises(EvaluationError):
            SimulationConfig(evasion_rate=2.0)
