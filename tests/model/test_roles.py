"""Unit tests for the role algebra (Section 4.1's 15 -> 7 reduction)."""

import pytest

from repro.model.roles import (
    FULL_ROLE_COMBINATIONS,
    LEGAL_PERSON_ROLES,
    REDUCED_ROLE_COMBINATIONS,
    Position,
    Role,
    admissible_legal_person,
    reduce_positions,
)


class TestCombinatorics:
    def test_fifteen_full_combinations(self):
        assert len(FULL_ROLE_COMBINATIONS) == 15
        assert len(set(FULL_ROLE_COMBINATIONS)) == 15

    def test_seven_reduced_combinations(self):
        assert len(REDUCED_ROLE_COMBINATIONS) == 7
        assert len(set(REDUCED_ROLE_COMBINATIONS)) == 7

    def test_every_full_combination_reduces_into_the_seven(self):
        reduced = {reduce_positions(combo) for combo in FULL_ROLE_COMBINATIONS}
        assert reduced == set(REDUCED_ROLE_COMBINATIONS)

    def test_six_legal_person_roles(self):
        assert len(LEGAL_PERSON_ROLES) == 6
        assert Role.D not in LEGAL_PERSON_ROLES  # a pure director cannot be LP


class TestFromPositions:
    def test_shareholder_absorbed_into_director(self):
        assert Role.from_positions("S") == Role.D
        assert Role.from_positions("CEO", "S") == Role.CEO | Role.D
        assert Role.from_positions(Position.S, Position.D) == Role.D

    def test_all_positions(self):
        role = Role.from_positions("CB", "CEO", "S", "D")
        assert role == Role.CB | Role.CEO | Role.D

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            Role.from_positions()

    def test_unknown_position_raises(self):
        with pytest.raises(ValueError):
            Role.from_positions("CTO")


class TestPredicates:
    def test_flags(self):
        role = Role.CEO | Role.D
        assert role.is_ceo and role.is_director and not role.is_chairman

    def test_admissible_legal_person(self):
        assert admissible_legal_person(Role.CEO)
        assert admissible_legal_person(Role.CB)
        assert admissible_legal_person(Role.CEO | Role.D)
        assert not admissible_legal_person(Role.D)

    def test_labels(self):
        assert Role.CEO.label() == "CEO"
        assert (Role.CEO | Role.D | Role.CB).label() == "CEO+D+CB"
        assert (Role.D | Role.CB).label() == "D+CB"
