"""Unit tests for entity records and the registry."""

import pytest

from repro.errors import DuplicateNodeError
from repro.model.entities import Company, EntityRegistry, Person, Syndicate
from repro.model.roles import Role


class TestPerson:
    def test_legal_person_requires_admissible_role(self):
        with pytest.raises(ValueError, match="legal-person"):
            Person(person_id="p", role=Role.D, legal_person_of=("c",))

    def test_ceo_can_be_legal_person(self):
        person = Person(person_id="p", role=Role.CEO, legal_person_of=("c1", "c2"))
        assert person.is_legal_person

    def test_plain_director(self):
        person = Person(person_id="p", role=Role.D)
        assert not person.is_legal_person


class TestCompany:
    def test_cross_border(self):
        assert Company(company_id="c", region="hongkong").is_cross_border
        assert not Company(company_id="c").is_cross_border


class TestSyndicate:
    def test_requires_two_members(self):
        with pytest.raises(ValueError, match="at least two"):
            Syndicate(syndicate_id="s", members=frozenset({"a"}), kind="person")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Syndicate(syndicate_id="s", members=frozenset({"a", "b"}), kind="blob")

    def test_iterates_sorted(self):
        s = Syndicate(syndicate_id="s", members=frozenset({"b", "a"}), kind="person")
        assert list(s) == ["a", "b"]


class TestRegistry:
    def make(self) -> EntityRegistry:
        reg = EntityRegistry()
        reg.add_person(Person(person_id="p1", role=Role.CEO, legal_person_of=("c1",)))
        reg.add_company(Company(company_id="c1", industry="tea"))
        reg.add_syndicate(
            Syndicate(syndicate_id="s1", members=frozenset({"p1", "p2"}), kind="person")
        )
        return reg

    def test_contains(self):
        reg = self.make()
        assert "p1" in reg and "c1" in reg and "s1" in reg
        assert "zzz" not in reg

    def test_duplicates_rejected(self):
        reg = self.make()
        with pytest.raises(DuplicateNodeError):
            reg.add_person(Person(person_id="p1"))
        with pytest.raises(DuplicateNodeError):
            reg.add_company(Company(company_id="c1"))
        with pytest.raises(DuplicateNodeError):
            reg.add_company(Company(company_id="p1"))  # cross-kind clash
        with pytest.raises(DuplicateNodeError):
            reg.add_person(Person(person_id="c1"))

    def test_describe(self):
        reg = self.make()
        assert "LP" in reg.describe("p1")
        assert "tea" in reg.describe("c1")
        assert "p2" in reg.describe("s1")
        assert reg.describe("???").startswith("Unknown")

    def test_expand_recursive(self):
        reg = self.make()
        reg.add_syndicate(
            Syndicate(
                syndicate_id="s2", members=frozenset({"s1", "p3"}), kind="person"
            )
        )
        assert reg.expand("s2") == frozenset({"p1", "p2", "p3"})
        assert reg.expand("c1") == frozenset({"c1"})
