"""Unit tests for the homogeneous source graphs G1, G2, GI, G4."""

import pytest

from repro.errors import ValidationError
from repro.model.colors import InfluenceKind, InterdependenceKind, VColor
from repro.model.homogeneous import (
    InfluenceGraph,
    InterdependenceGraph,
    InvestmentGraph,
    TradingGraph,
)


class TestInterdependence:
    def test_single_link_per_pair(self):
        g1 = InterdependenceGraph()
        assert g1.add_link("a", "b", InterdependenceKind.KINSHIP)
        # A second (even different-kind) link on the same pair is dropped,
        # per Section 4.1: "we only keep one".
        assert not g1.add_link("a", "b", InterdependenceKind.INTERLOCKING)
        assert g1.number_of_links == 1

    def test_accepts_string_kind(self):
        g1 = InterdependenceGraph()
        assert g1.add_link("a", "b", "kinship")
        with pytest.raises(ValueError):
            g1.add_link("c", "d", "friendship")

    def test_validate_passes(self):
        g1 = InterdependenceGraph()
        g1.add_link("a", "b", InterdependenceKind.KINSHIP)
        g1.validate()

    def test_counts(self):
        g1 = InterdependenceGraph()
        g1.add_person("solo")
        g1.add_link("a", "b", InterdependenceKind.INTERLOCKING)
        assert g1.number_of_persons == 3
        assert g1.number_of_links == 1


def valid_g2() -> InfluenceGraph:
    g2 = InfluenceGraph()
    g2.add_influence("p1", "c1", InfluenceKind.CEO_OF, legal_person=True)
    g2.add_influence("p2", "c1", InfluenceKind.D_OF)
    g2.add_influence("p1", "c2", InfluenceKind.CB_OF, legal_person=True)
    return g2


class TestInfluence:
    def test_valid_graph(self):
        g2 = valid_g2()
        g2.validate()
        assert g2.number_of_persons == 2
        assert g2.number_of_companies == 2
        assert g2.number_of_influences == 3
        assert g2.legal_person("c1") == "p1"
        assert g2.legal_person_map == {"c1": "p1", "c2": "p1"}

    def test_company_without_lp_fails_validation(self):
        g2 = InfluenceGraph()
        g2.add_influence("p1", "c1", InfluenceKind.D_OF)
        with pytest.raises(ValidationError, match="legal person"):
            g2.validate()

    def test_second_lp_rejected(self):
        g2 = valid_g2()
        with pytest.raises(ValidationError, match="already has legal person"):
            g2.add_influence("p2", "c1", InfluenceKind.CEO_OF, legal_person=True)

    def test_same_lp_reasserted_ok(self):
        g2 = valid_g2()
        g2.add_influence("p1", "c1", InfluenceKind.D_OF, legal_person=True)
        g2.validate()

    def test_person_with_indegree_fails(self):
        g2 = valid_g2()
        # Corrupt the graph directly: an arc into a person.
        g2.graph.add_arc("c1", "p2", InfluenceKind.D_OF)
        with pytest.raises(ValidationError):
            g2.validate()

    def test_unknown_kind_rejected(self):
        g2 = InfluenceGraph()
        with pytest.raises(ValueError):
            g2.add_influence("p", "c", "owns")


class TestCompanyArcGraphs:
    def test_investment_self_arc_rejected(self):
        gi = InvestmentGraph()
        with pytest.raises(ValidationError, match="itself"):
            gi.add_investment("c1", "c1")

    def test_investment_cycles_allowed(self):
        gi = InvestmentGraph()
        gi.add_investment("c1", "c2")
        gi.add_investment("c2", "c1")
        gi.validate()
        assert gi.number_of_arcs == 2

    def test_trading_graph(self):
        g4 = TradingGraph()
        g4.add_trade("c1", "c2")
        g4.add_trade("c2", "c1")  # both directions are distinct relations
        g4.validate()
        assert g4.number_of_companies == 2
        assert g4.number_of_arcs == 2

    def test_nodes_are_companies(self):
        g4 = TradingGraph()
        g4.add_trade("c1", "c2")
        assert all(
            g4.graph.node_color(n) == VColor.COMPANY for n in g4.graph.nodes()
        )
