"""Unit tests for generator configuration validation."""

import pytest

from repro.datagen.config import (
    PAPER_TRADING_PROBABILITIES,
    ProvinceConfig,
    TradingConfig,
)
from repro.errors import DataGenError


class TestProvinceConfig:
    def test_paper_scale_defaults(self):
        cfg = ProvinceConfig()
        assert cfg.companies == 2452
        assert cfg.legal_persons == 1350
        assert cfg.directors == 776

    def test_small_helper_scales(self):
        cfg = ProvinceConfig.small(companies=100)
        assert cfg.companies == 100
        assert 0 < cfg.legal_persons <= 100
        assert cfg.directors >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"companies": 0},
            {"legal_persons": 0},
            {"directors": -1},
            {"target_suspicious_share": 1.5},
            {"max_cluster_fraction": 0.0},
            {"family_size_range": (0, 2)},
            {"family_size_range": (3, 2)},
            {"director_companies_range": (0, 2)},
            {"family_direct_lp_share": 1.2},
            {"investment_extra_arc_share": 3.0},
            {"dual_holding_attach_both": -0.1},
            {"anchor_base": -1},
            {"anchor_divisor": 0},
            {"director_interlock_probability": 2.0},
            {"mutual_investment_pairs": -2},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(DataGenError):
            ProvinceConfig(**kwargs)

    def test_frozen(self):
        cfg = ProvinceConfig()
        with pytest.raises(AttributeError):
            cfg.companies = 10


class TestTradingConfig:
    def test_probability_bounds(self):
        TradingConfig(probability=0.0)
        TradingConfig(probability=1.0)
        with pytest.raises(DataGenError):
            TradingConfig(probability=1.1)
        with pytest.raises(DataGenError):
            TradingConfig(probability=-0.1)

    def test_paper_probabilities(self):
        assert len(PAPER_TRADING_PROBABILITIES) == 20
        assert PAPER_TRADING_PROBABILITIES[0] == 0.002
        assert PAPER_TRADING_PROBABILITIES[-1] == 0.1
        assert list(PAPER_TRADING_PROBABILITIES) == sorted(
            PAPER_TRADING_PROBABILITIES
        )
