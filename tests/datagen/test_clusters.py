"""Unit tests for cluster-size planning."""

import numpy as np
import pytest

from repro.datagen.clusters import ordered_pair_share, plan_cluster_sizes
from repro.errors import DataGenError


class TestPlanning:
    def test_sizes_sum_to_total(self):
        sizes = plan_cluster_sizes(2452, 0.05, rng=np.random.default_rng(0))
        assert sum(sizes) == 2452

    def test_share_near_target(self):
        sizes = plan_cluster_sizes(2452, 0.05, rng=np.random.default_rng(0))
        share = ordered_pair_share(sizes, 2452)
        assert share == pytest.approx(0.05, rel=0.12)

    def test_max_fraction_respected(self):
        sizes = plan_cluster_sizes(
            2000, 0.05, max_fraction=0.1, rng=np.random.default_rng(1)
        )
        assert max(sizes) <= 200

    def test_zero_share_gives_singletons(self):
        sizes = plan_cluster_sizes(50, 0.0, rng=np.random.default_rng(2))
        assert sizes == [1] * 50

    def test_small_population(self):
        sizes = plan_cluster_sizes(5, 0.3, rng=np.random.default_rng(3))
        assert sum(sizes) == 5

    def test_deterministic_given_rng_seed(self):
        a = plan_cluster_sizes(500, 0.05, rng=np.random.default_rng(9))
        b = plan_cluster_sizes(500, 0.05, rng=np.random.default_rng(9))
        assert a == b

    def test_invalid_inputs(self):
        with pytest.raises(DataGenError):
            plan_cluster_sizes(0, 0.05)
        with pytest.raises(DataGenError):
            plan_cluster_sizes(10, 1.5)


class TestShare:
    def test_ordered_pair_share(self):
        assert ordered_pair_share([2], 2) == 1.0
        assert ordered_pair_share([1, 1], 2) == 0.0
        assert ordered_pair_share([3, 1], 4) == pytest.approx(6 / 12)

    def test_tiny_population(self):
        assert ordered_pair_share([1], 1) == 0.0
