"""Seed-derivation contract: stable, label-separated, numpy-compatible."""

import numpy as np

from repro.datagen.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic_across_calls(self):
        assert derive_seed(42, "influence") == derive_seed(42, "influence")

    def test_labels_decorrelate_streams(self):
        seeds = {derive_seed(42, label) for label in ("a", "b", "c", "trading")}
        assert len(seeds) == 4

    def test_root_seed_changes_every_stream(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_fits_numpy_seed_range(self):
        for label in ("influence", "trading", "people"):
            seed = derive_seed(123456789, label)
            assert 0 <= seed < 2**64
            np.random.default_rng(seed)  # must not raise


class TestDeriveRng:
    def test_matches_explicit_seed_derivation(self):
        a = derive_rng(7, "companies").integers(0, 2**32, size=8)
        b = np.random.default_rng(derive_seed(7, "companies")).integers(
            0, 2**32, size=8
        )
        assert (a == b).all()
