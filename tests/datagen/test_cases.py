"""Unit tests for the paper fixtures themselves."""

from repro.datagen.cases import (
    FIG10_EXPECTED_GROUPS,
    FIG10_EXPECTED_PATTERNS,
    case1_source_graphs,
    fig7_source_graphs,
)
from repro.fusion.pipeline import fuse
from repro.mining.detector import detect


class TestFixtureWellFormedness:
    def test_all_tpiins_validate(self, fig6, fig8, case1, case2, case3):
        for tpiin in (fig6, fig8, case1, case2, case3):
            tpiin.validate()

    def test_expected_constants(self):
        assert len(FIG10_EXPECTED_PATTERNS) == 15
        assert len(FIG10_EXPECTED_GROUPS) == 3

    def test_source_graphs_validate(self):
        for sources in (fig7_source_graphs(), case1_source_graphs()):
            sources.interdependence.validate()
            sources.influence.validate()
            sources.investment.validate()
            sources.trading.validate()


class TestFig7MatchesFig8:
    def test_fusion_reproduces_contracted_network(self, fig8):
        src = fig7_source_graphs()
        fused = fuse(
            src.interdependence, src.influence, src.investment, src.trading
        ).tpiin
        # Isomorphic up to syndicate naming: map the two syndicates onto
        # the paper's L1 / B2 labels and compare arcs exactly.
        rename = {
            fused.node_map["L6"]: "L1",
            fused.node_map["B5"]: "B2",
        }
        arcs = {
            (rename.get(t, t), rename.get(h, h), c) for t, h, c in fused.graph.arcs()
        }
        assert arcs == set(fig8.graph.arcs())

    def test_fused_detection_matches_paper_groups(self):
        src = fig7_source_graphs()
        fused = fuse(
            src.interdependence, src.influence, src.investment, src.trading
        ).tpiin
        result = detect(fused)
        l1 = fused.node_map["L6"]
        b2 = fused.node_map["B5"]
        got = {(frozenset(g.members), g.antecedent) for g in result.groups}
        assert got == {
            (frozenset({l1, "C1", "C2", "C3", "C5"}), l1),
            (frozenset({"B1", "C5", "C6"}), "B1"),
            (frozenset({b2, "C7", "C8"}), b2),
        }


class TestCase1Fusion:
    def test_case1_group_after_fusion(self):
        src = case1_source_graphs()
        fused = fuse(
            src.interdependence, src.influence, src.investment, src.trading
        ).tpiin
        result = detect(fused)
        merged = fused.node_map["L1"]
        arcs = result.suspicious_trading_arcs
        # Both the product sale C3 -> C2 and the raw-material supply
        # C1 -> C3 run between commonly controlled parties.
        assert ("C3", "C2") in arcs
        assert ("C1", "C3") in arcs
        assert any(g.antecedent == merged for g in result.groups)
