"""Unit tests for the entity factories."""

import numpy as np
import pytest

from repro.datagen.companies import INDUSTRIES, REGIONS, make_company
from repro.datagen.people import make_director, make_legal_person
from repro.model.roles import Role


class TestPeopleFactories:
    def test_legal_person_roles(self):
        rng = np.random.default_rng(0)
        lp = make_legal_person("L1", ("C1", "C2"), rng)
        assert lp.is_legal_person
        assert lp.legal_person_of == ("C1", "C2")
        assert lp.role == Role.CEO | Role.D

    def test_chairman_variant(self):
        rng = np.random.default_rng(0)
        lp = make_legal_person("L1", ("C1",), rng, chairman=True)
        assert lp.role == Role.CEO | Role.CB

    def test_director(self):
        rng = np.random.default_rng(0)
        d = make_director("D1", rng)
        assert d.role == Role.D
        assert not d.is_legal_person
        assert d.name  # cosmetic name assigned

    def test_names_deterministic_per_stream(self):
        a = make_director("D1", np.random.default_rng(5)).name
        b = make_director("D1", np.random.default_rng(5)).name
        assert a == b


class TestCompanyFactory:
    def test_sampled_fields(self):
        rng = np.random.default_rng(1)
        company = make_company("C1", rng)
        assert company.industry in INDUSTRIES
        assert company.region in REGIONS
        assert company.company_id == "C1"
        assert "C1" in company.name

    def test_explicit_industry(self):
        rng = np.random.default_rng(1)
        company = make_company("C1", rng, industry="chemicals", scale="large")
        assert company.industry == "chemicals"
        assert company.scale == "large"

    def test_mostly_domestic(self):
        rng = np.random.default_rng(2)
        regions = [make_company(f"C{i}", rng).region for i in range(300)]
        domestic = sum(1 for r in regions if r == "domestic")
        assert domestic > 240  # ~90% weighting
