"""Unit tests for the entity factories."""

import numpy as np
import pytest

from repro.datagen.companies import (
    INDUSTRIES,
    REGIONS,
    derive_registered_capital,
    make_company,
)
from repro.datagen.people import make_director, make_legal_person
from repro.model.roles import Role


class TestPeopleFactories:
    def test_legal_person_roles(self):
        rng = np.random.default_rng(0)
        lp = make_legal_person("L1", ("C1", "C2"), rng)
        assert lp.is_legal_person
        assert lp.legal_person_of == ("C1", "C2")
        assert lp.role == Role.CEO | Role.D

    def test_chairman_variant(self):
        rng = np.random.default_rng(0)
        lp = make_legal_person("L1", ("C1",), rng, chairman=True)
        assert lp.role == Role.CEO | Role.CB

    def test_director(self):
        rng = np.random.default_rng(0)
        d = make_director("D1", rng)
        assert d.role == Role.D
        assert not d.is_legal_person
        assert d.name  # cosmetic name assigned

    def test_names_deterministic_per_stream(self):
        a = make_director("D1", np.random.default_rng(5)).name
        b = make_director("D1", np.random.default_rng(5)).name
        assert a == b


class TestCompanyFactory:
    def test_sampled_fields(self):
        rng = np.random.default_rng(1)
        company = make_company("C1", rng)
        assert company.industry in INDUSTRIES
        assert company.region in REGIONS
        assert company.company_id == "C1"
        assert "C1" in company.name

    def test_explicit_industry(self):
        rng = np.random.default_rng(1)
        company = make_company("C1", rng, industry="chemicals", scale="large")
        assert company.industry == "chemicals"
        assert company.scale == "large"

    def test_mostly_domestic(self):
        rng = np.random.default_rng(2)
        regions = [make_company(f"C{i}", rng).region for i in range(300)]
        domestic = sum(1 for r in regions if r == "domestic")
        assert domestic > 240  # ~90% weighting


class TestRegisteredCapital:
    def test_derivation_is_hash_stable_and_rng_free(self):
        # Capital comes from the company id alone: same id -> same value,
        # and deriving it must not advance any random stream.
        assert derive_registered_capital("C1") == derive_registered_capital("C1")
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        derive_registered_capital("C1")
        assert rng.bit_generator.state == before

    def test_scale_bands(self):
        small = derive_registered_capital("C1", scale="small")
        large = derive_registered_capital("C1", scale="large")
        assert 400.0 <= small <= 2000.0
        assert 2500.0 <= large <= 12500.0

    def test_make_company_declares_capital(self):
        rng = np.random.default_rng(1)
        company = make_company("C1", rng)
        assert company.registered_capital == derive_registered_capital("C1")

    def test_capital_does_not_shift_sampled_streams(self):
        # Guard for seed stability: adding capital must not change what
        # make_company draws from the rng.
        fields_a = make_company("C7", np.random.default_rng(9))
        fields_b = make_company("C7", np.random.default_rng(9))
        assert fields_a == fields_b
