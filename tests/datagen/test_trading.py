"""Unit tests for the random trading-network generator."""

import pytest

from repro.datagen.config import TradingConfig
from repro.datagen.trading import random_trading_arcs, random_trading_graph


COMPANIES = [f"C{i}" for i in range(300)]


class TestSampling:
    def test_expected_count(self):
        p = 0.01
        arcs = random_trading_arcs(COMPANIES, TradingConfig(probability=p, seed=1))
        expected = p * len(COMPANIES) * (len(COMPANIES) - 1)
        assert len(arcs) == pytest.approx(expected, rel=0.25)

    def test_no_self_loops(self):
        arcs = random_trading_arcs(COMPANIES, TradingConfig(probability=0.05, seed=2))
        assert all(a != b for a, b in arcs)

    def test_no_duplicates(self):
        arcs = random_trading_arcs(COMPANIES, TradingConfig(probability=0.05, seed=3))
        assert len(arcs) == len(set(arcs))

    def test_deterministic(self):
        cfg = TradingConfig(probability=0.02, seed=11)
        assert random_trading_arcs(COMPANIES, cfg) == random_trading_arcs(
            COMPANIES, cfg
        )

    def test_different_probability_different_stream(self):
        a = random_trading_arcs(COMPANIES, TradingConfig(probability=0.02, seed=11))
        b = random_trading_arcs(COMPANIES, TradingConfig(probability=0.021, seed=11))
        assert set(a) != set(b)

    def test_zero_probability(self):
        assert random_trading_arcs(COMPANIES, TradingConfig(probability=0.0)) == []

    def test_tiny_population(self):
        assert random_trading_arcs(["only"], TradingConfig(probability=0.5)) == []


class TestGraphWrapper:
    def test_graph_has_all_companies(self):
        g4 = random_trading_graph(COMPANIES[:50], TradingConfig(probability=0.02, seed=4))
        assert g4.number_of_companies == 50
        g4.validate()

    def test_arcs_match_sampler(self):
        cfg = TradingConfig(probability=0.03, seed=5)
        arcs = set(random_trading_arcs(COMPANIES[:80], cfg))
        g4 = random_trading_graph(COMPANIES[:80], cfg)
        assert {(t, h) for t, h, _c in g4.arcs()} == arcs


class TestScaleFree:
    def test_basic_properties(self):
        from repro.datagen.trading import scale_free_trading_arcs

        arcs = scale_free_trading_arcs(COMPANIES, arcs_per_company=3, seed=7)
        assert arcs  # non-empty
        assert all(a != b for a, b in arcs)
        assert len(arcs) == len(set(arcs))
        # Roughly 3 arcs per newcomer (duplicates collapse a few).
        assert len(arcs) > 2 * (len(COMPANIES) - 1)

    def test_hubs_emerge(self):
        from collections import Counter

        from repro.datagen.trading import scale_free_trading_arcs

        arcs = scale_free_trading_arcs(COMPANIES, arcs_per_company=3, seed=7)
        degree = Counter()
        for a, b in arcs:
            degree[a] += 1
            degree[b] += 1
        degrees = sorted(degree.values(), reverse=True)
        # Heavy tail: the top node far exceeds the median.
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_deterministic(self):
        from repro.datagen.trading import scale_free_trading_arcs

        a = scale_free_trading_arcs(COMPANIES, seed=9)
        b = scale_free_trading_arcs(COMPANIES, seed=9)
        assert a == b
        c = scale_free_trading_arcs(COMPANIES, seed=10)
        assert a != c

    def test_degenerate_inputs(self):
        from repro.datagen.trading import scale_free_trading_arcs

        assert scale_free_trading_arcs(["only"]) == []
        assert scale_free_trading_arcs(COMPANIES, arcs_per_company=0) == []
