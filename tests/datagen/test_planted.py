"""Unit tests for planted evasion rings and structure recovery."""

import numpy as np
import pytest

from repro.datagen.config import ProvinceConfig
from repro.datagen.planted import (
    RING_SHAPES,
    plant_evasion_rings,
    recovered_rings,
)
from repro.datagen.province import generate_province
from repro.errors import DataGenError
from repro.fusion.pipeline import fuse
from repro.mining.detector import detect
from repro.model.homogeneous import (
    InfluenceGraph,
    InterdependenceGraph,
    InvestmentGraph,
    TradingGraph,
)


def empty_sources():
    return (
        InterdependenceGraph(),
        InfluenceGraph(),
        InvestmentGraph(),
        TradingGraph(),
    )


class TestPlanting:
    def test_all_shapes_recovered_in_isolation(self):
        g1, g2, gi, g4 = empty_sources()
        rings = plant_evasion_rings(
            g1, g2, gi, g4, count=len(RING_SHAPES), rng=np.random.default_rng(1)
        )
        assert [r.shape for r in rings] == list(RING_SHAPES)
        tpiin = fuse(g1, g2, gi, g4).tpiin
        result = detect(tpiin)
        recovery = recovered_rings(rings, result, tpiin)
        assert all(recovery.values()), recovery

    def test_membership_is_exact(self):
        g1, g2, gi, g4 = empty_sources()
        rings = plant_evasion_rings(
            g1, g2, gi, g4, count=1, shapes=("pentagon",), rng=np.random.default_rng(2)
        )
        tpiin = fuse(g1, g2, gi, g4).tpiin
        result = detect(tpiin)
        ring = rings[0]
        groups = result.groups_for_arc(ring.trading_arc)
        assert any(g.members == ring.expected_members(tpiin) for g in groups)
        # A pentagon's simple group has 5 distinct members.
        assert len(ring.expected_members(tpiin)) == 5

    def test_interlocking_persons_merge(self):
        g1, g2, gi, g4 = empty_sources()
        rings = plant_evasion_rings(
            g1, g2, gi, g4, count=1, shapes=("interlocking",),
            rng=np.random.default_rng(3),
        )
        tpiin = fuse(g1, g2, gi, g4).tpiin
        ring = rings[0]
        merged = tpiin.node_map[ring.persons[0]]
        assert tpiin.node_map[ring.persons[1]] == merged
        assert merged in ring.expected_members(tpiin)

    def test_invalid_inputs(self):
        g1, g2, gi, g4 = empty_sources()
        with pytest.raises(DataGenError):
            plant_evasion_rings(g1, g2, gi, g4, count=-1)
        with pytest.raises(DataGenError, match="unknown"):
            plant_evasion_rings(g1, g2, gi, g4, count=1, shapes=("blob",))


class TestRecoveryInNoise:
    def test_rings_survive_a_noisy_province(self):
        dataset = generate_province(ProvinceConfig.small(companies=150, seed=19))
        g1 = dataset.interdependence
        g2 = dataset.influence
        gi = dataset.investment
        g4 = dataset.trading_graph(0.02)
        rings = plant_evasion_rings(
            g1, g2, gi, g4, count=10, rng=np.random.default_rng(4)
        )
        tpiin = fuse(g1, g2, gi, g4, validate_inputs=True).tpiin
        result = detect(tpiin)
        recovery = recovered_rings(rings, result, tpiin)
        assert all(recovery.values()), {
            k: v for k, v in recovery.items() if not v
        }

    def test_unplanted_arc_not_attributed_to_ring(self):
        g1, g2, gi, g4 = empty_sources()
        rings = plant_evasion_rings(
            g1, g2, gi, g4, count=2, shapes=("triangle",),
            rng=np.random.default_rng(5),
        )
        # A cross-ring trade has no common antecedent.
        g4.add_trade(rings[0].companies[0], rings[1].companies[0])
        tpiin = fuse(g1, g2, gi, g4).tpiin
        result = detect(tpiin)
        cross = (rings[0].companies[0], rings[1].companies[0])
        assert cross not in result.suspicious_trading_arcs
