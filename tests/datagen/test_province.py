"""Unit tests for the provincial dataset generator."""

import pytest

from repro.datagen.config import ProvinceConfig
from repro.datagen.province import generate_province
from repro.model.colors import EColor


@pytest.fixture(scope="module")
def province():
    return generate_province(ProvinceConfig.small(companies=200, seed=3))


class TestEntityCounts:
    def test_exact_counts(self, province):
        cfg = province.config
        assert len(province.registry.companies) == cfg.companies
        lp_count = sum(len(c.lp_ids) for c in province.clusters)
        d_count = sum(len(c.director_ids) for c in province.clusters)
        assert lp_count == cfg.legal_persons
        assert d_count == cfg.directors
        assert len(province.registry.persons) == cfg.legal_persons + cfg.directors

    def test_paper_scale_counts(self):
        ds = generate_province()  # full default: paper scale
        assert len(ds.registry.companies) == 2452
        assert sum(len(c.lp_ids) for c in ds.clusters) == 1350
        assert sum(len(c.director_ids) for c in ds.clusters) == 776

    def test_company_ids_unique_and_ordered(self, province):
        ids = province.company_ids
        assert len(ids) == len(set(ids)) == province.config.companies


class TestStructure:
    def test_source_graphs_validate(self, province):
        province.interdependence.validate()
        province.influence.validate()
        province.investment.validate()

    def test_every_company_has_lp(self, province):
        for company in province.company_ids:
            assert company in province.lp_of
            assert province.influence.legal_person(company) == province.lp_of[company]

    def test_investment_acyclic_by_default(self, province):
        from repro.graph.tarjan import nontrivial_sccs

        assert nontrivial_sccs(province.investment.graph) == []

    def test_planned_share_close_to_target(self, province):
        assert province.planned_suspicious_share == pytest.approx(
            province.config.target_suspicious_share, rel=0.25
        )

    def test_figure_stats_strings(self, province):
        stats = province.figure_stats()
        assert set(stats) == {"G1 (Fig. 11)", "G2 (Fig. 12)", "G3 (Fig. 13)"}


class TestFusionPaths:
    def test_fuse_with_validates(self, province):
        trading = province.trading_graph(0.01)
        result = province.fuse_with(trading, validate=True)
        result.tpiin.validate()

    def test_overlay_equals_full_fusion(self, province):
        trading = province.trading_graph(0.01)
        fused = province.fuse_with(trading).tpiin
        base = province.antecedent_tpiin()
        overlaid = province.overlay_trading(base, 0.01)
        assert set(overlaid.graph.arcs()) == set(fused.graph.arcs())
        assert set(overlaid.graph.nodes()) == set(fused.graph.nodes())
        assert overlaid.intra_scs_trades == fused.intra_scs_trades

    def test_determinism(self):
        cfg = ProvinceConfig.small(companies=120, seed=42)
        a = generate_province(cfg)
        b = generate_province(cfg)
        assert set(a.influence.graph.arcs()) == set(b.influence.graph.arcs())
        assert set(a.investment.graph.arcs()) == set(b.investment.graph.arcs())
        assert {
            (u, v, k) for u, v, k in a.interdependence.graph.edges()
        } == {(u, v, k) for u, v, k in b.interdependence.graph.edges()}

    def test_seed_changes_structure(self):
        a = generate_province(ProvinceConfig.small(companies=120, seed=1))
        b = generate_province(ProvinceConfig.small(companies=120, seed=2))
        assert set(a.influence.graph.arcs()) != set(b.influence.graph.arcs())


class TestMutualInvestment:
    def test_cycles_injected_and_contracted(self):
        cfg = ProvinceConfig.small(companies=120, seed=5)
        cfg = ProvinceConfig(
            companies=cfg.companies,
            legal_persons=cfg.legal_persons,
            directors=cfg.directors,
            seed=cfg.seed,
            mutual_investment_pairs=3,
        )
        ds = generate_province(cfg)
        from repro.graph.tarjan import nontrivial_sccs

        assert nontrivial_sccs(ds.investment.graph) != []
        base = ds.antecedent_tpiin()
        assert base.scs_subgraphs  # contraction recorded provenance
        base.validate()
