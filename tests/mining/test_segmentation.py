"""Unit tests for subTPIIN segmentation (Definition 4)."""

from repro.fusion.tpiin import TPIIN
from repro.mining.segmentation import segment


def two_component_tpiin() -> TPIIN:
    return TPIIN.build(
        persons=["p", "q"],
        companies=["a", "b", "x", "y"],
        influence=[("p", "a"), ("p", "b"), ("q", "x"), ("q", "y")],
        trading=[("a", "b"), ("a", "x"), ("x", "y")],
    )


class TestSegmentation:
    def test_fig8_is_one_subtpiin(self, fig8):
        result = segment(fig8)
        assert result.number_of_subtpiins == 1
        sub = result.subtpiins[0]
        assert sub.influence_arc_count == 14
        assert sub.trading_arc_count == 5
        assert result.cross_component_trades == []

    def test_components_split_on_influence_only(self):
        result = segment(two_component_tpiin())
        assert result.number_of_subtpiins == 2
        sizes = sorted(len(s.nodes) for s in result.subtpiins)
        assert sizes == [3, 3]

    def test_cross_component_trades_dismissed(self):
        result = segment(two_component_tpiin())
        assert result.cross_component_trades == [("a", "x")]
        total_kept = sum(s.trading_arc_count for s in result.subtpiins)
        assert total_kept == 2

    def test_trading_arcs_attached_to_own_component(self):
        result = segment(two_component_tpiin())
        for sub in result.subtpiins:
            if "a" in sub.nodes:
                assert sub.graph.has_arc("a", "b")
            else:
                assert sub.graph.has_arc("x", "y")

    def test_isolated_nodes_form_singletons(self):
        t = two_component_tpiin()
        t.graph.add_node("hermit", "Company")
        result = segment(t)
        assert result.number_of_subtpiins == 3

    def test_skip_trivial(self):
        t = two_component_tpiin()
        t.graph.add_node("hermit", "Company")
        result = segment(t, skip_trivial=True)
        assert result.number_of_subtpiins == 2
        assert all(s.trading_arc_count > 0 for s in result.subtpiins)

    def test_indices_are_sequential(self):
        result = segment(two_component_tpiin())
        assert [s.index for s in result.subtpiins] == [0, 1]

    def test_iteration(self):
        result = segment(two_component_tpiin())
        assert list(result) == result.subtpiins
