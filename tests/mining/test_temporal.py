"""Unit tests for sliding-window temporal detection."""

import pytest

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.mining.detector import detect
from repro.mining.temporal import (
    TimedTrade,
    active_in,
    sliding_window_detect,
)
from repro.model.colors import EColor


def antecedent(fig8) -> TPIIN:
    return TPIIN(graph=fig8.antecedent_graph())


def fig8_timed_trades() -> list[TimedTrade]:
    """Fig. 8's five trades spread over periods 0..30."""
    return [
        TimedTrade("C3", "C5", 0, 10),
        TimedTrade("C5", "C6", 5, 20),
        TimedTrade("C5", "C7", 0, None),  # open-ended
        TimedTrade("C7", "C8", 15, 25),
        TimedTrade("C8", "C4", 20, 30),
    ]


class TestTimedTrade:
    def test_overlap_semantics(self):
        trade = TimedTrade("a", "b", 5, 10)
        assert trade.overlaps(0, 6)
        assert trade.overlaps(9, 20)
        assert not trade.overlaps(0, 5)  # half-open: ends before start
        assert not trade.overlaps(10, 20)

    def test_open_ended(self):
        trade = TimedTrade("a", "b", 5, None)
        assert trade.overlaps(100, 200)
        assert not trade.overlaps(0, 5)

    def test_empty_interval_rejected(self):
        with pytest.raises(MiningError, match="empty validity"):
            TimedTrade("a", "b", 5, 5)

    def test_active_in(self):
        trades = fig8_timed_trades()
        assert active_in(trades, 0, 5) == {("C3", "C5"), ("C5", "C7")}
        assert ("C8", "C4") in active_in(trades, 20, 25)


class TestSlidingWindows:
    def test_each_window_matches_batch(self, fig8):
        trades = fig8_timed_trades()
        for window_result in sliding_window_detect(
            antecedent(fig8), trades, window=10, step=5, collect_groups=True
        ):
            expected_tpiin = TPIIN(graph=fig8.antecedent_graph())
            for arc in active_in(
                trades, window_result.window_start, window_result.window_end
            ):
                expected_tpiin.graph.add_arc(*arc, EColor.TRADING)
            batch = detect(expected_tpiin, engine="fast")
            assert (
                window_result.suspicious_arcs == batch.suspicious_trading_arcs
            ), f"window {window_result.window_start}"
            assert {g.key() for g in window_result.result.groups} == {
                g.key() for g in batch.groups
            }

    def test_alert_deltas(self, fig8):
        trades = fig8_timed_trades()
        windows = list(
            sliding_window_detect(antecedent(fig8), trades, window=10, step=10)
        )
        # Window [0,10): C3->C5 suspicious.  Window [10,20): C5->C6 only
        # until 20... C5->C6 active (5..20 overlaps), C7->C8 active.
        first = windows[0]
        assert first.new_suspicious == {("C3", "C5"), ("C5", "C6")}
        second = windows[1]
        assert ("C3", "C5") in second.resolved_suspicious

    def test_tumbling_default_step(self, fig8):
        windows = list(
            sliding_window_detect(antecedent(fig8), fig8_timed_trades(), window=10)
        )
        starts = [w.window_start for w in windows]
        assert starts == [0, 10, 20]

    def test_duplicate_trades_refcounted(self, fig8):
        # Two filings for the same arc with staggered periods: the arc
        # stays active until both expire.
        trades = [
            TimedTrade("C3", "C5", 0, 10),
            TimedTrade("C3", "C5", 5, 15),
        ]
        windows = list(
            sliding_window_detect(antecedent(fig8), trades, window=5, step=5)
        )
        assert [(w.window_start, ("C3", "C5") in w.suspicious_arcs) for w in windows] == [
            (0, True),
            (5, True),
            (10, True),
        ]

    def test_empty_trades(self, fig8):
        assert list(
            sliding_window_detect(antecedent(fig8), [], window=5)
        ) == []

    def test_requires_antecedent_only(self, fig8):
        with pytest.raises(MiningError, match="antecedent-only"):
            list(sliding_window_detect(fig8, fig8_timed_trades(), window=5))

    def test_invalid_window(self, fig8):
        with pytest.raises(MiningError, match="window"):
            list(
                sliding_window_detect(
                    antecedent(fig8), fig8_timed_trades(), window=0
                )
            )

    def test_explicit_range(self, fig8):
        windows = list(
            sliding_window_detect(
                antecedent(fig8),
                fig8_timed_trades(),
                window=5,
                start=20,
                end=30,
            )
        )
        assert [w.window_start for w in windows] == [20, 25]
        assert all(("C3", "C5") not in w.suspicious_arcs for w in windows)
