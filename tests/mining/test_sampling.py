"""Unit tests for sampled suspicious-share estimation."""

import pytest

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.mining.detector import detect
from repro.mining.sampling import estimate_suspicious_share


class TestEstimation:
    def test_full_population_is_exact(self, fig8):
        estimate = estimate_suspicious_share(fig8, sample_size=100)
        exact = detect(fig8, engine="fast", collect_groups=False).suspicious_arc_share
        assert estimate.point == pytest.approx(exact)
        assert estimate.sample_size == 5
        assert estimate.low <= estimate.point <= estimate.high

    def test_sampled_interval_covers_truth(self, small_province_tpiin):
        exact = detect(
            small_province_tpiin, engine="fast", collect_groups=False
        ).suspicious_arc_share
        covered = 0
        for seed in range(10):
            estimate = estimate_suspicious_share(
                small_province_tpiin, sample_size=150, seed=seed
            )
            if estimate.low <= exact <= estimate.high:
                covered += 1
        # 95% intervals: allow one miss out of ten.
        assert covered >= 9

    def test_interval_narrows_with_sample_size(self, small_province_tpiin):
        small = estimate_suspicious_share(
            small_province_tpiin, sample_size=50, seed=1
        )
        large = estimate_suspicious_share(
            small_province_tpiin, sample_size=350, seed=1
        )
        assert large.width < small.width

    def test_intra_scs_counted_suspicious(self):
        tpiin = TPIIN.build(companies=["x"])
        tpiin.intra_scs_trades.extend([("a", "b"), ("b", "c")])
        estimate = estimate_suspicious_share(tpiin, sample_size=10)
        assert estimate.point == 1.0

    def test_empty_population(self):
        estimate = estimate_suspicious_share(TPIIN.build(companies=["x"]))
        assert estimate.sample_size == 0
        assert estimate.point == 0.0

    def test_render(self, fig8):
        text = estimate_suspicious_share(fig8, sample_size=10).render()
        assert "confidence" in text and "%" in text

    def test_index_reuse(self, fig8):
        from repro.graph.bitset import RootAncestorIndex
        from repro.model.colors import EColor

        index = RootAncestorIndex(fig8.graph, EColor.INFLUENCE)
        a = estimate_suspicious_share(fig8, sample_size=10, index=index)
        b = estimate_suspicious_share(fig8, sample_size=10)
        assert a.point == b.point

    def test_validation(self, fig8):
        with pytest.raises(MiningError):
            estimate_suspicious_share(fig8, sample_size=0)
        with pytest.raises(MiningError, match="confidence"):
            estimate_suspicious_share(fig8, confidence=0.5)
