"""Unit tests for the suspicious-arc oracles."""

import pytest

from repro.fusion.tpiin import TPIIN
from repro.mining.detector import detect
from repro.mining.oracle import suspicious_arc_oracle, suspicious_arc_oracle_closure


class TestOracleOnFixtures:
    @pytest.mark.parametrize("fixture", ["fig6", "fig8", "case1", "case2", "case3"])
    def test_both_oracles_agree(self, fixture, request):
        tpiin = request.getfixturevalue(fixture)
        assert suspicious_arc_oracle(tpiin) == suspicious_arc_oracle_closure(tpiin)

    @pytest.mark.parametrize("fixture", ["fig6", "fig8", "case1", "case2", "case3"])
    def test_oracle_matches_detector(self, fixture, request):
        tpiin = request.getfixturevalue(fixture)
        assert suspicious_arc_oracle(tpiin) == detect(tpiin).suspicious_trading_arcs

    def test_fig8_values(self, fig8):
        assert suspicious_arc_oracle(fig8) == {
            ("C3", "C5"),
            ("C5", "C6"),
            ("C7", "C8"),
        }


class TestOracleShapes:
    def test_circle_arc_is_suspicious(self):
        t = TPIIN.build(
            companies=["c1", "c2"],
            influence=[("c2", "c1")],
            trading=[("c1", "c2")],
        )
        assert suspicious_arc_oracle(t) == {("c1", "c2")}

    def test_investor_trading_with_investee(self):
        t = TPIIN.build(
            companies=["c1", "c2"],
            influence=[("c1", "c2")],
            trading=[("c1", "c2")],
        )
        assert suspicious_arc_oracle(t) == {("c1", "c2")}

    def test_unrelated_arc_not_suspicious(self):
        t = TPIIN.build(
            persons=["p", "q"],
            companies=["c1", "c2"],
            influence=[("p", "c1"), ("q", "c2")],
            trading=[("c1", "c2")],
        )
        assert suspicious_arc_oracle(t) == set()

    def test_intra_scs_always_suspicious(self):
        t = TPIIN.build(companies=["x"])
        t.intra_scs_trades.append(("a", "b"))
        assert suspicious_arc_oracle(t) == {("a", "b")}
        assert suspicious_arc_oracle_closure(t) == {("a", "b")}

    def test_empty_tpiin(self):
        t = TPIIN.build(companies=["x"])
        assert suspicious_arc_oracle(t) == set()

    def test_small_province_consistency(self, small_province_tpiin):
        oracle = suspicious_arc_oracle(small_province_tpiin)
        closure = suspicious_arc_oracle_closure(small_province_tpiin)
        detected = detect(small_province_tpiin).suspicious_trading_arcs
        assert oracle == closure == detected
