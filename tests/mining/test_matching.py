"""Unit tests for component-pattern matching (Appendix B)."""

import pytest

from repro.mining.groups import GroupKind
from repro.mining.matching import (
    extract_circle,
    match_component_patterns,
    match_pairs_naive,
)
from repro.mining.patterns import PatternTrail, build_patterns_tree


def fig10_trails(fig8):
    return build_patterns_tree(fig8.graph, build_tree=False).trails


class TestFig10Matching:
    def test_three_groups_found(self, fig8):
        groups = match_component_patterns(fig10_trails(fig8))
        got = {(frozenset(g.members), g.antecedent) for g in groups}
        assert got == {
            (frozenset({"L1", "C1", "C2", "C3", "C5"}), "L1"),
            (frozenset({"B1", "C5", "C6"}), "B1"),
            (frozenset({"B2", "C7", "C8"}), "B2"),
        }

    def test_all_simple(self, fig8):
        groups = match_component_patterns(fig10_trails(fig8))
        assert all(g.is_simple for g in groups)
        assert all(g.kind is GroupKind.MATCHED for g in groups)

    def test_component_patterns_of_l1_group(self, fig8):
        groups = match_component_patterns(fig10_trails(fig8))
        l1 = next(g for g in groups if g.antecedent == "L1")
        assert l1.trading_trail == ("L1", "C1", "C3", "C5")
        assert l1.support_trail == ("L1", "C2", "C5")
        assert l1.trading_arc == ("C3", "C5")

    def test_naive_agrees(self, fig8):
        trails = fig10_trails(fig8)
        indexed = {g.key() for g in match_component_patterns(trails)}
        naive = {g.key() for g in match_pairs_naive(trails)}
        assert indexed == naive


class TestHandPatterns:
    def test_same_antecedent_required(self):
        trails = [
            PatternTrail(("a", "x"), trading_target="t"),
            PatternTrail(("b", "t")),  # different antecedent: no match
        ]
        assert match_component_patterns(trails) == []

    def test_match_on_contained_end_node(self):
        trails = [
            PatternTrail(("a", "x"), trading_target="t"),
            PatternTrail(("a", "t", "z")),  # contains t before z
        ]
        groups = match_component_patterns(trails)
        assert len(groups) == 1
        assert groups[0].support_trail == ("a", "t")

    def test_prefix_deduplication(self):
        # Two type-(b) patterns share the support prefix (a, t).
        trails = [
            PatternTrail(("a", "x"), trading_target="t"),
            PatternTrail(("a", "t"), trading_target="u"),
            PatternTrail(("a", "t"), trading_target="v"),
        ]
        groups = match_component_patterns(trails)
        matched = [g for g in groups if g.trading_arc == ("x", "t")]
        assert len(matched) == 1

    def test_type_b_support_side(self):
        # The support may come from a type-(b) pattern's influence prefix.
        trails = [
            PatternTrail(("a", "x"), trading_target="t"),
            PatternTrail(("a", "t"), trading_target="w"),
        ]
        groups = match_component_patterns(trails)
        arcs = {g.trading_arc for g in groups}
        assert ("x", "t") in arcs

    def test_two_trading_closers_to_same_end_not_paired(self):
        # Both patterns end with a trading arc into t; Appendix-B matching
        # requires the support side to reach t by influence.
        trails = [
            PatternTrail(("a", "x"), trading_target="t"),
            PatternTrail(("a", "y"), trading_target="t"),
        ]
        assert match_component_patterns(trails) == []

    def test_parallel_influence_and_trading_arc(self):
        # a -> t influence and x -> t trading: the two node sequences
        # coincide except for the closing arc color; still a valid group.
        trails = [
            PatternTrail(("a",), trading_target="t"),
            PatternTrail(("a", "t")),
        ]
        groups = match_component_patterns(trails)
        assert len(groups) == 1
        assert groups[0].trading_trail == ("a", "t")
        assert groups[0].support_trail == ("a", "t")
        assert groups[0].is_simple


class TestCircles:
    def test_extract_circle(self):
        trail = PatternTrail(("a", "c4", "c5"), trading_target="c4")
        assert extract_circle(trail) == ("c4", "c5", "c4")

    def test_extract_circle_requires_circle(self):
        with pytest.raises(ValueError):
            extract_circle(PatternTrail(("a", "b"), trading_target="t"))

    def test_circle_group_emitted_once(self):
        trails = [
            PatternTrail(("a", "c4", "c5"), trading_target="c4"),
            PatternTrail(("b", "c4", "c5"), trading_target="c4"),  # same circle
        ]
        groups = match_component_patterns(trails)
        circles = [g for g in groups if g.kind is GroupKind.CIRCLE]
        assert len(circles) == 1
        assert circles[0].trading_trail == ("c4", "c5", "c4")
        assert circles[0].support_trail == ("c4",)
        assert circles[0].is_simple

    def test_circular_pattern_not_pair_matched(self):
        # The walk visits c4 twice; only the circle group comes out of it.
        trails = [
            PatternTrail(("a", "c4", "c5"), trading_target="c4"),
            PatternTrail(("a", "c4")),
        ]
        groups = match_component_patterns(trails)
        assert all(g.kind is GroupKind.CIRCLE for g in groups)

    def test_naive_handles_circles_identically(self):
        trails = [
            PatternTrail(("a", "c4", "c5"), trading_target="c4"),
            PatternTrail(("b", "c4", "c5"), trading_target="c4"),
            PatternTrail(("a", "x"), trading_target="c5"),
            PatternTrail(("a", "c4", "c5")),
        ]
        indexed = {g.key() for g in match_component_patterns(trails)}
        naive = {g.key() for g in match_pairs_naive(trails)}
        assert indexed == naive
