"""Unit tests for the CSR mining engine (`repro.mining.csr_engine`)."""

from __future__ import annotations

from repro.mining.csr_engine import (
    build_patterns_tree_csr,
    csr_detect,
    freeze_subtpiin,
    merged_out_arcs,
    mine_frozen,
)
from repro.mining.detector import detect
from repro.mining.patterns import build_patterns_tree
from repro.mining.segmentation import segment
from repro.model.colors import EColor


class TestTrailEnumerator:
    def test_trails_equal_faithful_in_order(self, fig8):
        for sub in segment(fig8).subtpiins:
            faithful = build_patterns_tree(sub.graph, build_tree=False)
            csr = build_patterns_tree_csr(sub.graph, build_tree=False)
            assert csr.trails == faithful.trails
            assert csr.list_d == faithful.list_d
            assert not csr.truncated

    def test_forest_rendering_matches(self, fig8):
        for sub in segment(fig8).subtpiins:
            faithful = build_patterns_tree(sub.graph)
            csr = build_patterns_tree_csr(sub.graph)
            assert csr.render_tree() == faithful.render_tree()
            assert csr.render_base() == faithful.render_base()

    def test_accepts_prefrozen_kernel(self, fig8):
        sub = segment(fig8).subtpiins[0]
        frozen = freeze_subtpiin(sub.graph)
        assert (
            build_patterns_tree_csr(frozen, build_tree=False).trails
            == build_patterns_tree(sub.graph, build_tree=False).trails
        )

    def test_max_trails_truncation_matches_faithful(self, fig8):
        sub = segment(fig8).subtpiins[0]
        faithful = build_patterns_tree(sub.graph, max_trails=4, build_tree=False)
        csr = build_patterns_tree_csr(sub.graph, max_trails=4, build_tree=False)
        assert csr.trails == faithful.trails
        assert csr.truncated and faithful.truncated

    def test_merged_arcs_interleave_influence_before_trading(self, fig8):
        sub = segment(fig8).subtpiins[0]
        frozen = freeze_subtpiin(sub.graph)
        in_offs, _ = frozen.out_adjacency(EColor.INFLUENCE)
        for u, arcs in enumerate(merged_out_arcs(frozen)):
            assert list(arcs) == sorted(arcs)  # (target, influence-first)
            influence = [v for v, trading in arcs if not trading]
            assert len(influence) == in_offs[u + 1] - in_offs[u]


class TestCsrDetect:
    def test_equals_faithful_on_fig8(self, fig8):
        faithful = detect(fig8, engine="faithful")
        csr = csr_detect(fig8)
        assert {g.key() for g in csr.groups} == {g.key() for g in faithful.groups}
        assert csr.suspicious_trading_arcs == faithful.suspicious_trading_arcs
        assert csr.pattern_trail_count == faithful.pattern_trail_count
        assert csr.subtpiin_count == faithful.subtpiin_count
        assert csr.engine == "csr"
        assert not csr.truncated

    def test_equals_faithful_on_province(self, small_province_tpiin):
        faithful = detect(small_province_tpiin, engine="faithful")
        csr = detect(small_province_tpiin, engine="csr")
        assert {g.key() for g in csr.groups} == {g.key() for g in faithful.groups}
        assert csr.pattern_trail_count == faithful.pattern_trail_count
        assert len(csr.sub_results) == len(faithful.sub_results)

    def test_engine_dispatch(self, fig8):
        result = detect(fig8, engine="csr")
        assert result.engine == "csr"

    def test_truncated_surfaces_in_result_and_summary(self, fig8):
        capped = detect(fig8, engine="csr", max_trails_per_subtpiin=2)
        assert capped.truncated
        assert "truncated" in capped.summary()
        uncapped = detect(fig8, engine="csr")
        assert not uncapped.truncated
        assert "truncated" not in uncapped.summary()

    def test_mine_frozen_counts(self, fig8):
        sub = segment(fig8).subtpiins[0]
        trail_count, truncated, groups = mine_frozen(freeze_subtpiin(sub.graph))
        tree = build_patterns_tree(sub.graph, build_tree=False)
        assert trail_count == len(tree.trails)
        assert not truncated
        assert groups  # fig8 hosts suspicious groups
