"""Unit tests for the shared-memory parallel detector."""

from __future__ import annotations

import os

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

import repro.mining.parallel as parallel_mod
from repro.graph.shm import SHM_NAME_PREFIX, live_owned_segments
from repro.mining.compact import LazyGroups
from repro.mining.detector import detect
from repro.mining.parallel import (
    DEFAULT_MIN_POOL_WORK,
    _lpt_buckets,
    parallel_detect,
)
from repro.obs.registry import get_registry
from repro.obs.tracing import Tracer


def shm_entries() -> list[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux fallback
        return []
    return sorted(
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(SHM_NAME_PREFIX)
    )


def assert_no_shm_leak() -> None:
    assert shm_entries() == []
    assert live_owned_segments() == []
    assert get_registry().gauge("repro_shm_bytes").value == 0.0


def mine_span(tracer: Tracer):
    (span,) = [root for root in tracer.roots if root.name == "mine"]
    return span


def _crash_worker(payload):  # pragma: no cover - runs in the child
    os._exit(1)


class _InterruptingPool:
    """Stand-in pool whose map() dies like a Ctrl-C mid-flight."""

    def __init__(self, *args, **kwargs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None

    def map(self, fn, payloads):
        raise KeyboardInterrupt


class TestParallel:
    def test_matches_faithful_on_fig8(self, fig8):
        # Single subTPIIN: takes the in-process fallback path.
        faithful = detect(fig8)
        parallel = parallel_detect(fig8)
        assert {g.key() for g in parallel.groups} == {
            g.key() for g in faithful.groups
        }
        assert parallel.engine == "parallel"

    def test_matches_faithful_on_small_province(self, small_province_tpiin):
        faithful = detect(small_province_tpiin)
        parallel = parallel_detect(small_province_tpiin, processes=2)
        assert {g.key() for g in parallel.groups} == {
            g.key() for g in faithful.groups
        }
        assert parallel.suspicious_trading_arcs == faithful.suspicious_trading_arcs
        assert parallel.pattern_trail_count == faithful.pattern_trail_count
        assert parallel.subtpiin_count == faithful.subtpiin_count

    def test_engine_dispatch(self, fig8):
        result = detect(fig8, engine="parallel")
        assert result.engine == "parallel"

    def test_engine_dispatch_forwards_processes(self, small_province_tpiin):
        faithful = detect(small_province_tpiin)
        result = detect(small_province_tpiin, engine="parallel", processes=2)
        assert {g.key() for g in result.groups} == {g.key() for g in faithful.groups}

    def test_incremental_engine_dispatch(self, fig8):
        faithful = detect(fig8)
        result = detect(fig8, engine="incremental")
        assert result.engine == "incremental"
        assert {g.key() for g in result.groups} == {g.key() for g in faithful.groups}

    def test_sub_results_sorted_by_index(self, small_province_tpiin):
        result = parallel_detect(small_province_tpiin, processes=2)
        indices = [sub.index for sub in result.sub_results]
        assert indices == sorted(indices)

    def test_groups_are_lazy_sequences(self, small_province_tpiin):
        result = parallel_detect(small_province_tpiin)
        assert isinstance(result.groups, LazyGroups)
        assert result.group_count == len(result.groups)
        for sub in result.sub_results:
            assert isinstance(sub.groups, LazyGroups)
        assert sum(len(sub.groups) for sub in result.sub_results) + len(
            [g for g in result.groups if g.kind.name == "SCS"]
        ) == len(result.groups)


class TestPoolGating:
    def test_small_work_stays_in_process(self, small_province_tpiin):
        # The default threshold dwarfs any test fixture: pool spin-up
        # costs ~100 ms, so small jobs must mine in-process.
        assert DEFAULT_MIN_POOL_WORK >= 1_000_000
        tracer = Tracer()
        parallel_detect(small_province_tpiin, processes=8, tracer=tracer)
        span = mine_span(tracer)
        assert span.attributes["pooled"] is False
        assert span.attributes["workers"] == 1
        assert_no_shm_leak()

    def test_zero_threshold_forces_pool(self, small_province_tpiin):
        tracer = Tracer()
        result = parallel_detect(
            small_province_tpiin, processes=2, min_pool_work=0, tracer=tracer
        )
        span = mine_span(tracer)
        assert span.attributes["pooled"] is True
        assert span.attributes["workers"] == 2
        assert span.attributes["shm_bytes"] > 0
        faithful = detect(small_province_tpiin)
        assert {g.key() for g in result.groups} == {
            g.key() for g in faithful.groups
        }
        assert result.kind_counts() == faithful.kind_counts()
        assert_no_shm_leak()

    def test_single_worker_never_pools(self, small_province_tpiin):
        tracer = Tracer()
        parallel_detect(
            small_province_tpiin, processes=1, min_pool_work=0, tracer=tracer
        )
        assert mine_span(tracer).attributes["pooled"] is False

    def test_detect_forwards_min_pool_work(self, small_province_tpiin):
        faithful = detect(small_province_tpiin)
        result = detect(
            small_province_tpiin, engine="parallel", processes=2, min_pool_work=0
        )
        assert {g.key() for g in result.groups} == {
            g.key() for g in faithful.groups
        }
        assert_no_shm_leak()


class TestLptBuckets:
    def test_balances_heaviest_first(self):
        comps = np.array([10, 11, 12, 13, 14, 15])
        weights = np.array([9.0, 1.0, 1.0, 1.0, 1.0, 9.0])
        buckets = _lpt_buckets(comps, weights, 2)
        assert sorted(comp for bucket in buckets for comp in bucket) == [
            10,
            11,
            12,
            13,
            14,
            15,
        ]
        loads = sorted(
            sum(weights[comps.tolist().index(c)] for c in bucket)
            for bucket in buckets
        )
        assert loads == [11.0, 11.0]

    def test_giant_component_gets_own_bucket(self):
        comps = np.array([0, 1, 2])
        weights = np.array([100.0, 1.0, 1.0])
        buckets = _lpt_buckets(comps, weights, 2)
        assert [0] in buckets
        assert sorted(len(b) for b in buckets) == [1, 2]

    def test_drops_empty_buckets(self):
        comps = np.array([3, 4])
        weights = np.array([2.0, 1.0])
        buckets = _lpt_buckets(comps, weights, 8)
        assert len(buckets) == 2
        assert all(bucket for bucket in buckets)


class TestCrashSafety:
    def test_worker_crash_leaks_nothing(self, small_province_tpiin, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_mine_bucket", _crash_worker)
        with pytest.raises(BrokenProcessPool):
            parallel_detect(small_province_tpiin, processes=2, min_pool_work=0)
        assert_no_shm_leak()

    def test_keyboard_interrupt_leaks_nothing(
        self, small_province_tpiin, monkeypatch
    ):
        monkeypatch.setattr(
            parallel_mod, "ProcessPoolExecutor", _InterruptingPool
        )
        with pytest.raises(KeyboardInterrupt):
            parallel_detect(small_province_tpiin, processes=2, min_pool_work=0)
        assert_no_shm_leak()
