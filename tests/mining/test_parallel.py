"""Unit tests for the multiprocessing detector."""

from repro.mining.detector import detect
from repro.mining.parallel import parallel_detect


class TestParallel:
    def test_matches_faithful_on_fig8(self, fig8):
        # Single subTPIIN: takes the in-process fallback path.
        faithful = detect(fig8)
        parallel = parallel_detect(fig8)
        assert {g.key() for g in parallel.groups} == {
            g.key() for g in faithful.groups
        }
        assert parallel.engine == "parallel"

    def test_matches_faithful_on_small_province(self, small_province_tpiin):
        faithful = detect(small_province_tpiin)
        parallel = parallel_detect(small_province_tpiin, processes=2)
        assert {g.key() for g in parallel.groups} == {
            g.key() for g in faithful.groups
        }
        assert parallel.suspicious_trading_arcs == faithful.suspicious_trading_arcs
        assert parallel.pattern_trail_count == faithful.pattern_trail_count
        assert parallel.subtpiin_count == faithful.subtpiin_count

    def test_engine_dispatch(self, fig8):
        result = detect(fig8, engine="parallel")
        assert result.engine == "parallel"

    def test_engine_dispatch_forwards_processes(self, small_province_tpiin):
        faithful = detect(small_province_tpiin)
        result = detect(small_province_tpiin, engine="parallel", processes=2)
        assert {g.key() for g in result.groups} == {g.key() for g in faithful.groups}

    def test_incremental_engine_dispatch(self, fig8):
        faithful = detect(fig8)
        result = detect(fig8, engine="incremental")
        assert result.engine == "incremental"
        assert {g.key() for g in result.groups} == {g.key() for g in faithful.groups}

    def test_sub_results_sorted_by_index(self, small_province_tpiin):
        result = parallel_detect(small_province_tpiin, processes=2)
        indices = [sub.index for sub in result.sub_results]
        assert indices == sorted(indices)
