"""Unit tests for the consolidated detect() options API."""

import pytest

from repro.errors import MiningError
from repro.mining.options import DetectOptions, Engine
from repro.obs.tracing import NULL_TRACER, Tracer


class TestEngine:
    def test_is_a_string(self):
        assert Engine.FAST == "fast"
        assert str(Engine.CSR) == "csr"
        assert f"{Engine.FAITHFUL}" == "faithful"

    def test_coerce_accepts_names_and_members(self):
        assert Engine.coerce("parallel") is Engine.PARALLEL
        assert Engine.coerce(Engine.FAST) is Engine.FAST

    def test_coerce_rejects_typos_with_choices(self):
        with pytest.raises(MiningError, match="unknown engine 'fastt'"):
            Engine.coerce("fastt")
        with pytest.raises(MiningError, match="choices: faithful, fast"):
            Engine.coerce("nope")


class TestDetectOptions:
    def test_defaults(self):
        opts = DetectOptions()
        assert opts.engine is Engine.FAITHFUL
        assert opts.collect_groups is True
        assert opts.trace is False

    def test_engine_coerced_on_construction(self):
        assert DetectOptions(engine="csr").engine is Engine.CSR
        with pytest.raises(MiningError, match="unknown engine"):
            DetectOptions(engine="warp")

    def test_frozen(self):
        opts = DetectOptions()
        with pytest.raises(AttributeError):
            opts.engine = Engine.FAST  # type: ignore[misc]

    def test_validates_bounds(self):
        with pytest.raises(MiningError, match="max_trails_per_subtpiin"):
            DetectOptions(max_trails_per_subtpiin=0)
        with pytest.raises(MiningError, match="processes"):
            DetectOptions(processes=0)

    def test_with_overrides_drops_nones(self):
        base = DetectOptions(engine=Engine.FAST, processes=4)
        same = base.with_overrides(engine=None, processes=None)
        assert same is base
        changed = base.with_overrides(engine="csr", collect_groups=None)
        assert changed.engine is Engine.CSR
        assert changed.processes == 4
        assert base.engine is Engine.FAST  # original untouched

    def test_with_overrides_coerces_engine(self):
        with pytest.raises(MiningError, match="unknown engine"):
            DetectOptions().with_overrides(engine="nope")


class TestResolveTracer:
    def test_false_and_none_are_null(self):
        assert DetectOptions(trace=False).resolve_tracer() is NULL_TRACER
        assert DetectOptions(trace=None).resolve_tracer() is NULL_TRACER  # type: ignore[arg-type]

    def test_true_is_a_fresh_tracer(self):
        first = DetectOptions(trace=True).resolve_tracer()
        second = DetectOptions(trace=True).resolve_tracer()
        assert isinstance(first, Tracer)
        assert first is not second
        assert first.enabled

    def test_caller_owned_tracer_passes_through(self):
        tracer = Tracer()
        assert DetectOptions(trace=tracer).resolve_tracer() is tracer
