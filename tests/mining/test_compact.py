"""Unit tests for the compact mining plan, kernels and lazy groups."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.mining.compact import (
    CompactMine,
    LazyGroups,
    build_plan,
    count_mine,
    make_group_store,
    merge_counts,
)
from repro.mining.csr_engine import (
    _FRONTIER_MIN_TREE,
    mine_components,
    mine_frontier_compact,
    mine_stack_compact,
)
from repro.mining.detector import detect
from repro.model.colors import EColor


def frozen(tpiin) -> CSRGraph:
    return CSRGraph.freeze(tpiin.graph, colors=(EColor.INFLUENCE, EColor.TRADING))


class TestMiningPlan:
    def test_components_match_faithful_segmentation(self, small_province_tpiin):
        csr = frozen(small_province_tpiin)
        plan = build_plan(csr, small_province_tpiin.graph.nodes())
        faithful = detect(small_province_tpiin)
        assert plan.n_components == faithful.subtpiin_count
        assert plan.cross_count == faithful.cross_component_trades
        assert int(plan.comp_sizes.sum()) == len(csr)
        # Every faithful sub-result corresponds to one nontrivial
        # component with the same node and trading-arc counts.
        selected = plan.nontrivial()
        faithful_shapes = sorted(
            (sub.node_count, sub.trading_arc_count) for sub in faithful.sub_results
        )
        plan_shapes = sorted(
            (int(plan.comp_sizes[comp]), int(plan.trading_by_comp[comp]))
            for comp in selected.tolist()
        )
        assert plan_shapes == faithful_shapes

    def test_estimate_is_exact_for_acyclic_components(self, small_province_tpiin):
        csr = frozen(small_province_tpiin)
        plan = build_plan(csr, small_province_tpiin.graph.nodes())
        selected = plan.nontrivial()
        acyclic = selected[~plan.cyclic[selected]]
        assert acyclic.size > 0
        mine = mine_components(csr, plan, acyclic)
        per_comp = np.bincount(
            plan.comp_id[mine.node], minlength=plan.n_components
        )
        assert np.array_equal(per_comp[acyclic], plan.est_tree[acyclic])

    def test_nontrivial_requires_intra_trading(self, fig8):
        csr = frozen(fig8)
        plan = build_plan(csr, fig8.graph.nodes())
        selected = plan.nontrivial()
        assert np.all(plan.trading_by_comp[selected] > 0)
        skipped = np.setdiff1d(np.arange(plan.n_components), selected)
        assert np.all(plan.trading_by_comp[skipped] == 0)


class TestKernels:
    def test_frontier_equals_stack_on_acyclic(self, small_province_tpiin):
        csr = frozen(small_province_tpiin)
        plan = build_plan(csr, small_province_tpiin.graph.nodes())
        selected = plan.nontrivial()
        acyclic = selected[~plan.cyclic[selected]]
        front = mine_frontier_compact(csr, plan, acyclic)
        stack = mine_stack_compact(csr, plan, acyclic)
        assert np.array_equal(front.rule1_by_comp, stack.rule1_by_comp)
        front_counts = count_mine(front, plan)
        stack_counts = count_mine(stack, plan)
        assert np.array_equal(
            front_counts.trails_by_comp, stack_counts.trails_by_comp
        )
        assert np.array_equal(
            front_counts.matched_by_comp, stack_counts.matched_by_comp
        )
        assert np.array_equal(
            front_counts.suspicious_arcs, stack_counts.suspicious_arcs
        )
        decode = csr.decode_table
        front_groups = make_group_store(front, decode, plan.comp_id).groups_for(None)
        stack_groups = make_group_store(stack, decode, plan.comp_id).groups_for(None)
        assert {g.key() for g in front_groups} == {g.key() for g in stack_groups}

    def test_kernel_selection_prefers_frontier_for_big_trees(
        self, small_province_tpiin
    ):
        csr = frozen(small_province_tpiin)
        plan = build_plan(csr, small_province_tpiin.graph.nodes())
        selected = plan.nontrivial()
        frontier_mask = ~plan.cyclic[selected] & (
            plan.est_tree[selected] >= _FRONTIER_MIN_TREE
        )
        merged = mine_components(csr, plan, selected)
        counts = count_mine(merged, plan)
        stack_only = mine_stack_compact(csr, plan, selected)
        stack_counts = count_mine(stack_only, plan)
        assert np.array_equal(counts.trails_by_comp, stack_counts.trails_by_comp)
        assert np.array_equal(counts.suspicious_arcs, stack_counts.suspicious_arcs)
        assert frontier_mask.dtype == np.bool_

    def test_counts_match_faithful(self, small_province_tpiin):
        csr = frozen(small_province_tpiin)
        plan = build_plan(csr, small_province_tpiin.graph.nodes())
        mine = mine_components(csr, plan, plan.nontrivial())
        counts = count_mine(mine, plan)
        faithful = detect(small_province_tpiin)
        assert int(counts.trails_by_comp.sum()) == faithful.pattern_trail_count

    def test_merge_shifts_parent_indices(self, small_province_tpiin):
        csr = frozen(small_province_tpiin)
        plan = build_plan(csr, small_province_tpiin.graph.nodes())
        selected = plan.nontrivial().tolist()
        assert len(selected) >= 2
        split = len(selected) // 2
        left = mine_components(csr, plan, np.asarray(selected[:split]))
        right = mine_components(csr, plan, np.asarray(selected[split:]))
        merged = CompactMine.merge([left, right], plan.n_components)
        whole = mine_components(csr, plan, np.asarray(selected))
        merged_counts = count_mine(merged, plan)
        whole_counts = count_mine(whole, plan)
        assert np.array_equal(
            merged_counts.trails_by_comp, whole_counts.trails_by_comp
        )
        assert np.array_equal(
            merged_counts.suspicious_arcs, whole_counts.suspicious_arcs
        )
        split_counts = merge_counts(
            [count_mine(left, plan), count_mine(right, plan)], plan.n_components
        )
        assert np.array_equal(
            split_counts.matched_by_comp, whole_counts.matched_by_comp
        )


class TestLazyGroups:
    def build_store(self, tpiin):
        csr = frozen(tpiin)
        plan = build_plan(csr, tpiin.graph.nodes())
        mine = mine_components(csr, plan, plan.nontrivial())
        counts = count_mine(mine, plan)
        store = make_group_store(mine, csr.decode_table, plan.comp_id)
        return plan, counts, store

    def test_len_before_materialization(self, fig8):
        plan, counts, store = self.build_store(fig8)
        total = int((counts.matched_by_comp + counts.circle_by_comp).sum())
        lazy = LazyGroups(store, None, total)
        assert len(lazy) == total  # O(1), no materialization needed yet
        assert {g.key() for g in lazy} == {
            g.key() for g in detect(fig8).groups
        }

    def test_sequence_protocol(self, fig8):
        plan, counts, store = self.build_store(fig8)
        total = int((counts.matched_by_comp + counts.circle_by_comp).sum())
        lazy = LazyGroups(store, None, total)
        assert list(lazy)[0] == lazy[0]
        assert lazy[-1] == list(lazy)[-1]
        assert lazy.count(lazy[0]) == 1

    def test_pickle_roundtrip(self, fig8):
        plan, counts, store = self.build_store(fig8)
        total = int((counts.matched_by_comp + counts.circle_by_comp).sum())
        lazy = LazyGroups(store, None, total)
        restored = pickle.loads(pickle.dumps(lazy))
        assert {g.key() for g in restored} == {g.key() for g in lazy}
        assert len(restored) == len(lazy)

    def test_length_drift_raises(self, fig8):
        plan, counts, store = self.build_store(fig8)
        total = int((counts.matched_by_comp + counts.circle_by_comp).sum())
        wrong = LazyGroups(store, None, total + 1)
        with pytest.raises(RuntimeError):
            list(wrong)
