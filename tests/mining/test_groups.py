"""Unit tests for the SuspiciousGroup structure (Definitions 2-3)."""

import pytest

from repro.errors import MiningError
from repro.mining.groups import GroupKind, SuspiciousGroup


def matched(trading=("a", "x", "t"), support=("a", "t")) -> SuspiciousGroup:
    return SuspiciousGroup(trading_trail=trading, support_trail=support)


class TestValidation:
    def test_valid_matched_group(self):
        g = matched()
        assert g.antecedent == "a"
        assert g.end == "t"
        assert g.trading_arc == ("x", "t")

    def test_start_mismatch_rejected(self):
        with pytest.raises(MiningError, match="start"):
            SuspiciousGroup(trading_trail=("a", "t"), support_trail=("b", "t"))

    def test_end_mismatch_rejected(self):
        with pytest.raises(MiningError, match="end"):
            SuspiciousGroup(trading_trail=("a", "t"), support_trail=("a", "u"))

    def test_short_trading_trail_rejected(self):
        with pytest.raises(MiningError):
            SuspiciousGroup(trading_trail=("a",), support_trail=("a",))

    def test_empty_support_rejected(self):
        with pytest.raises(MiningError):
            SuspiciousGroup(trading_trail=("a", "t"), support_trail=())

    def test_circle_must_close(self):
        with pytest.raises(MiningError, match="circle"):
            SuspiciousGroup(
                trading_trail=("a", "b"),
                support_trail=("b",),
                kind=GroupKind.CIRCLE,
            )

    def test_circle_support_must_be_trivial(self):
        with pytest.raises(MiningError, match="trivial"):
            SuspiciousGroup(
                trading_trail=("c", "d", "c"),
                support_trail=("c", "d"),
                kind=GroupKind.CIRCLE,
            )

    def test_valid_circle(self):
        g = SuspiciousGroup(
            trading_trail=("c", "d", "c"),
            support_trail=("c",),
            kind=GroupKind.CIRCLE,
        )
        assert g.is_simple
        assert g.trading_arc == ("d", "c")


class TestClassification:
    def test_simple_when_interiors_disjoint(self):
        g = SuspiciousGroup(
            trading_trail=("a", "x", "t"), support_trail=("a", "y", "t")
        )
        assert g.is_simple and not g.is_complex

    def test_complex_when_interiors_overlap(self):
        g = SuspiciousGroup(
            trading_trail=("a", "m", "x", "t"), support_trail=("a", "m", "t")
        )
        assert g.is_complex

    def test_scs_groups_are_simple(self):
        g = SuspiciousGroup(
            trading_trail=("a", "b"),
            support_trail=("a", "m", "b"),
            kind=GroupKind.SCS,
        )
        assert g.is_simple


class TestAccessors:
    def test_members_union(self):
        g = matched(trading=("a", "x", "t"), support=("a", "y", "t"))
        assert g.members == frozenset({"a", "x", "y", "t"})

    def test_component_patterns(self):
        g = matched()
        assert g.component_patterns() == (("a", "x", "t"), ("a", "t"))

    def test_key_is_hashable_and_distinct(self):
        g1 = matched()
        g2 = matched(support=("a", "y", "t"))
        assert g1.key() != g2.key()
        assert len({g1.key(), g2.key()}) == 2

    def test_render(self):
        text = matched().render()
        assert "a, x -> t" in text
        assert "simple" in text

    def test_iteration_sorted(self):
        g = matched(trading=("a", "z", "t"), support=("a", "b", "t"))
        assert list(g) == sorted(["a", "b", "t", "z"])


class TestMinimalGroups:
    def test_nested_group_dominated(self):
        from repro.mining.groups import minimal_groups

        small = SuspiciousGroup(
            trading_trail=("m", "x", "t"), support_trail=("m", "t")
        )
        big = SuspiciousGroup(
            trading_trail=("r", "m", "x", "t"), support_trail=("r", "m", "t")
        )
        assert minimal_groups([big, small]) == [small]

    def test_incomparable_groups_both_kept(self):
        from repro.mining.groups import minimal_groups

        a = SuspiciousGroup(trading_trail=("p", "x", "t"), support_trail=("p", "t"))
        b = SuspiciousGroup(trading_trail=("q", "y", "t"), support_trail=("q", "t"))
        assert minimal_groups([a, b]) == [a, b]

    def test_different_arcs_never_compared(self):
        from repro.mining.groups import minimal_groups

        small = SuspiciousGroup(trading_trail=("m", "t"), support_trail=("m", "x", "t"))
        other_arc = SuspiciousGroup(
            trading_trail=("m", "x", "u"), support_trail=("m", "u")
        )
        assert minimal_groups([small, other_arc]) == [small, other_arc]

    def test_on_detection_output(self, fig8):
        from repro.mining.detector import detect
        from repro.mining.groups import minimal_groups

        groups = detect(fig8).groups
        assert minimal_groups(groups) == groups  # fig8 has one group per arc

    def test_province_minimal_subset(self, small_province_tpiin):
        from repro.mining.detector import detect
        from repro.mining.groups import minimal_groups

        groups = detect(small_province_tpiin, engine="fast").groups
        minimal = minimal_groups(groups)
        assert 0 < len(minimal) <= len(groups)
        arcs_before = {g.trading_arc for g in groups}
        arcs_after = {g.trading_arc for g in minimal}
        assert arcs_before == arcs_after  # no arc loses all its proof chains
