"""Unit tests for Algorithm 1 end-to-end detection."""

import pytest

from repro.datagen.cases import FIG10_EXPECTED_GROUPS
from repro.errors import MiningError
from repro.mining.detector import detect
from repro.mining.groups import GroupKind


class TestPaperFixtures:
    def test_fig8_groups(self, fig8):
        result = detect(fig8)
        got = {(frozenset(map(str, g.members)), str(g.antecedent)) for g in result.groups}
        assert got == set(FIG10_EXPECTED_GROUPS)
        assert result.simple_group_count == 3
        assert result.complex_group_count == 0
        assert result.pattern_trail_count == 15

    def test_fig8_suspicious_arcs(self, fig8):
        result = detect(fig8)
        assert result.suspicious_trading_arcs == {
            ("C3", "C5"),
            ("C5", "C6"),
            ("C7", "C8"),
        }
        assert result.total_trading_arcs == 5
        assert result.suspicious_arc_share == pytest.approx(0.6)

    def test_fig6(self, fig6):
        result = detect(fig6)
        assert result.suspicious_trading_arcs == {("C2", "C3")}
        assert len(result.groups) == 1
        group = result.groups[0]
        assert group.trading_trail == ("P1", "C1", "C2", "C3")
        assert group.support_trail == ("P1", "C3")

    def test_case1(self, case1):
        result = detect(case1)
        assert len(result.groups) == 1
        group = result.groups[0]
        assert group.antecedent == "L'"
        assert group.members == frozenset({"L'", "C1", "C2", "C3"})
        assert group.trading_arc == ("C3", "C2")
        assert group.is_simple

    def test_case2_company_antecedent(self, case2):
        result = detect(case2)
        assert len(result.groups) == 1
        group = result.groups[0]
        assert group.antecedent == "C4"
        assert group.members == frozenset({"C4", "C5", "C6"})

    def test_case3(self, case3):
        result = detect(case3)
        assert len(result.groups) == 1
        assert result.groups[0].members == frozenset({"B", "C7", "C8"})


class TestResultAccounting:
    def test_summary_text(self, fig8):
        summary = detect(fig8).summary()
        assert "groups=3" in summary
        assert "suspicious_arcs=3/5" in summary

    def test_groups_for_arc(self, fig8):
        result = detect(fig8)
        groups = result.groups_for_arc(("C3", "C5"))
        assert len(groups) == 1
        assert groups[0].antecedent == "L1"
        assert result.groups_for_arc(("C8", "C4")) == []

    def test_kind_counts(self, fig8):
        counts = detect(fig8).kind_counts()
        assert counts[GroupKind.MATCHED] == 3

    def test_sub_results(self, fig8):
        result = detect(fig8)
        assert len(result.sub_results) == 1
        sub = result.sub_results[0]
        assert sub.pattern_trail_count == 15
        assert sub.suspicious_arcs == result.suspicious_trading_arcs

    def test_unknown_engine(self, fig8):
        with pytest.raises(MiningError, match="engine"):
            detect(fig8, engine="quantum")

    def test_max_trails_caps_search(self, fig8):
        result = detect(fig8, max_trails_per_subtpiin=4)
        assert result.pattern_trail_count == 4
        assert result.truncated
        assert "truncated" in result.summary()

    def test_uncapped_result_is_not_truncated(self, fig8):
        result = detect(fig8)
        assert not result.truncated
        assert "truncated" not in result.summary()

    def test_write_files(self, fig8, tmp_path):
        result = detect(fig8)
        paths = result.write_files(tmp_path)
        assert len(paths) == 2
        group_file = next(p for p in paths if "susGroup" in p.name)
        content = group_file.read_text()
        assert "L1" in content
        trade_file = next(p for p in paths if "susTrade" in p.name)
        assert "C3 -> C5" in trade_file.read_text()


class TestCircleAndScs:
    def test_circle_detection(self):
        from repro.fusion.tpiin import TPIIN

        t = TPIIN.build(
            persons=["a"],
            companies=["c4", "c5"],
            influence=[("a", "c4"), ("c4", "c5")],
            trading=[("c5", "c4")],
        )
        result = detect(t)
        circles = [g for g in result.groups if g.kind is GroupKind.CIRCLE]
        assert len(circles) == 1
        assert circles[0].trading_trail == ("c4", "c5", "c4")
        assert ("c5", "c4") in result.suspicious_trading_arcs

    def test_scs_groups_included(self):
        from repro.fusion.pipeline import fuse
        from repro.model.colors import InfluenceKind
        from repro.model.homogeneous import (
            InfluenceGraph,
            InterdependenceGraph,
            InvestmentGraph,
            TradingGraph,
        )

        g2 = InfluenceGraph()
        g2.add_influence("p1", "a", InfluenceKind.CEO_OF, legal_person=True)
        g2.add_influence("p2", "b", InfluenceKind.CEO_OF, legal_person=True)
        gi = InvestmentGraph()
        gi.add_investment("a", "b")
        gi.add_investment("b", "a")
        g4 = TradingGraph()
        g4.add_trade("a", "b")
        tpiin = fuse(InterdependenceGraph(), g2, gi, g4).tpiin
        result = detect(tpiin)
        scs = [g for g in result.groups if g.kind is GroupKind.SCS]
        assert len(scs) == 1
        assert scs[0].trading_arc == ("a", "b")
        assert scs[0].support_trail == ("a", "b")  # direct investment witness
        assert ("a", "b") in result.suspicious_trading_arcs
        assert result.total_trading_arcs == 1


class TestSubReport:
    def test_faithful_sub_report(self, fig8):
        text = detect(fig8).render_sub_report()
        assert "subTPIIN" in text
        assert "groups" in text

    def test_fast_engine_has_no_sub_data(self, fig8):
        from repro.mining.detector import detect

        text = detect(fig8, engine="fast").render_sub_report()
        assert "did not segment" in text

    def test_truncation(self, small_province_tpiin):
        text = detect(small_province_tpiin).render_sub_report(max_rows=2)
        assert "more subTPIINs" in text
