"""Unit tests for the streaming detector."""

import pytest

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.mining.detector import detect
from repro.mining.groups import GroupKind
from repro.mining.incremental import IncrementalDetector


def antecedent_only_fig8(fig8) -> TPIIN:
    """Fig. 8's antecedent network with no trading arcs yet."""
    return TPIIN(graph=fig8.antecedent_graph())


class TestStreaming:
    def test_initial_ingest_matches_batch(self, fig8):
        detector = IncrementalDetector(fig8)
        batch = detect(fig8, engine="fast")
        assert detector.suspicious_arcs == batch.suspicious_trading_arcs
        assert {g.key() for g in detector.result().groups} == {
            g.key() for g in batch.groups
        }

    def test_arcs_stream_one_by_one(self, fig8):
        detector = IncrementalDetector(antecedent_only_fig8(fig8))
        assert len(detector) == 0
        update = detector.add_trading_arc("C3", "C5")
        assert update.applied and update.suspicious
        assert len(update.groups) == 1
        assert update.groups[0].antecedent == "L1"

        update = detector.add_trading_arc("C8", "C4")
        assert update.applied and not update.suspicious
        assert update.groups == ()
        assert detector.suspicious_arcs == {("C3", "C5")}

    def test_duplicate_add_is_idempotent(self, fig8):
        detector = IncrementalDetector(fig8)
        before = detector.result().group_count
        update = detector.add_trading_arc("C3", "C5")
        assert not update.applied
        assert update.suspicious  # still reports the arc's state
        assert detector.result().group_count == before

    def test_remove_reverts_counts(self, fig8):
        detector = IncrementalDetector(antecedent_only_fig8(fig8))
        for arc in fig8.trading_arcs():
            detector.add_trading_arc(*arc)
        full = detector.result()
        removal = detector.remove_trading_arc("C3", "C5")
        assert removal.applied and removal.group_count == 1
        assert detector.suspicious_arcs == {("C5", "C6"), ("C7", "C8")}
        detector.add_trading_arc("C3", "C5")
        assert detector.result().group_count == full.group_count

    def test_remove_absent_arc(self, fig8):
        detector = IncrementalDetector(fig8)
        update = detector.remove_trading_arc("C1", "C2")
        assert not update.applied

    def test_contains_and_len(self, fig8):
        detector = IncrementalDetector(fig8)
        assert ("C3", "C5") in detector
        assert ("C1", "C8") not in detector
        assert len(detector) == 5

    def test_groups_for_arc(self, fig8):
        detector = IncrementalDetector(fig8)
        groups = detector.groups_for_arc("C5", "C6")
        assert len(groups) == 1
        assert groups[0].members == frozenset({"B1", "C5", "C6"})
        assert detector.groups_for_arc("C8", "C4") == []


class TestPathCache:
    def test_stats_track_hits_and_misses(self, fig8):
        detector = IncrementalDetector(antecedent_only_fig8(fig8))
        detector.add_trading_arc("C3", "C5")
        first = detector.path_cache_stats
        assert first.misses >= 1 and first.hits == 0
        detector.remove_trading_arc("C3", "C5")
        detector.add_trading_arc("C3", "C5")  # same roots -> warm cache
        second = detector.path_cache_stats
        assert second.hits >= 1
        assert 0.0 < second.hit_rate <= 1.0
        assert second.capacity == 4096
        payload = second.to_dict()
        assert payload["hits"] == second.hits
        assert payload["hit_rate"] == second.hit_rate

    def test_lru_cap_evicts_oldest(self, fig8):
        detector = IncrementalDetector(fig8, max_cached_roots=1)
        stats = detector.path_cache_stats
        assert stats.capacity == 1
        assert stats.size <= 1
        assert stats.evictions >= 1  # fig8 touches several distinct roots

    def test_unbounded_cache(self, fig8):
        detector = IncrementalDetector(fig8, max_cached_roots=None)
        stats = detector.path_cache_stats
        assert stats.capacity is None
        assert stats.evictions == 0

    def test_capped_detector_still_matches_batch(self, fig8):
        capped = IncrementalDetector(fig8, max_cached_roots=1)
        batch = detect(fig8, engine="fast")
        assert {g.key() for g in capped.result().groups} == {
            g.key() for g in batch.groups
        }

    def test_invalid_cap_rejected(self, fig8):
        with pytest.raises(MiningError, match="max_cached_roots"):
            IncrementalDetector(fig8, max_cached_roots=0)

    def test_zero_hit_rate_on_fresh_detector(self, fig8):
        detector = IncrementalDetector(antecedent_only_fig8(fig8))
        assert detector.path_cache_stats.hit_rate == 0.0


class TestArcQueries:
    def test_trading_arcs_lists_live_set(self, fig8):
        detector = IncrementalDetector(fig8)
        arcs = detector.trading_arcs()
        assert len(arcs) == 5 and ("C3", "C5") in arcs
        detector.remove_trading_arc("C3", "C5")
        assert ("C3", "C5") not in detector.trading_arcs()

    def test_is_suspicious_arc(self, fig8):
        detector = IncrementalDetector(fig8)
        assert detector.is_suspicious_arc("C3", "C5")
        assert not detector.is_suspicious_arc("C8", "C4")  # present, clean
        assert not detector.is_suspicious_arc("C1", "C2")  # absent


class TestValidation:
    def test_self_trade_rejected(self, fig8):
        detector = IncrementalDetector(fig8)
        with pytest.raises(MiningError, match="self trade"):
            detector.add_trading_arc("C5", "C5")

    def test_unknown_endpoint_rejected(self, fig8):
        detector = IncrementalDetector(fig8)
        with pytest.raises(MiningError, match="unknown"):
            detector.add_trading_arc("C5", "C99")

    def test_person_endpoint_rejected(self, fig8):
        detector = IncrementalDetector(fig8)
        with pytest.raises(MiningError, match="not a company"):
            detector.add_trading_arc("C5", "L1")


class TestCountMode:
    def test_count_mode_matches(self, fig8):
        counting = IncrementalDetector(fig8, collect_groups=False)
        full = IncrementalDetector(fig8)
        assert counting.result().group_count == full.result().group_count
        assert counting.result().simple_group_count == 3
        assert counting.result().groups == []
        assert (
            counting.result().suspicious_trading_arcs
            == full.result().suspicious_trading_arcs
        )

    def test_count_mode_removal(self, fig8):
        counting = IncrementalDetector(fig8, collect_groups=False)
        counting.remove_trading_arc("C3", "C5")
        assert counting.result().group_count == 2


class TestSpecialShapes:
    def test_circle_arc(self):
        tpiin = TPIIN.build(
            persons=["a"],
            companies=["c4", "c5"],
            influence=[("a", "c4"), ("c4", "c5")],
        )
        detector = IncrementalDetector(tpiin)
        update = detector.add_trading_arc("c5", "c4")
        assert update.suspicious
        assert update.groups[0].kind is GroupKind.CIRCLE

    def test_intra_scs_arc(self):
        from repro.fusion.pipeline import fuse
        from repro.model.colors import InfluenceKind
        from repro.model.homogeneous import (
            InfluenceGraph,
            InterdependenceGraph,
            InvestmentGraph,
            TradingGraph,
        )

        g2 = InfluenceGraph()
        g2.add_influence("p1", "a", InfluenceKind.CEO_OF, legal_person=True)
        g2.add_influence("p2", "b", InfluenceKind.CEO_OF, legal_person=True)
        gi = InvestmentGraph()
        gi.add_investment("a", "b")
        gi.add_investment("b", "a")
        tpiin = fuse(InterdependenceGraph(), g2, gi, TradingGraph()).tpiin
        detector = IncrementalDetector(tpiin)
        update = detector.add_trading_arc("a", "b")
        assert update.suspicious
        assert update.groups[0].kind is GroupKind.SCS

    def test_small_province_stream_matches_batch(self, small_province_tpiin):
        batch = detect(small_province_tpiin, engine="fast")
        antecedent = TPIIN(
            graph=small_province_tpiin.antecedent_graph(),
            node_map=dict(small_province_tpiin.node_map),
            scs_subgraphs=dict(small_province_tpiin.scs_subgraphs),
        )
        detector = IncrementalDetector(antecedent)
        for arc in small_province_tpiin.trading_arcs():
            detector.add_trading_arc(*arc)
        assert detector.suspicious_arcs == batch.suspicious_trading_arcs
        assert {g.key() for g in detector.result().groups} == {
            g.key() for g in batch.groups
        }
