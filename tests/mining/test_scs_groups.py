"""Unit tests for intra-SCS suspicious-trade handling."""

import pytest

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import DiGraph
from repro.mining.groups import GroupKind
from repro.mining.scs_groups import scs_suspicious_groups, shortest_path_in
from repro.model.colors import VColor


def scs_tpiin() -> TPIIN:
    """A contracted TPIIN carrying one saved SCS {a, b, c} (a ring)."""
    saved = DiGraph()
    for n in ("a", "b", "c"):
        saved.add_node(n, VColor.COMPANY)
    saved.add_arc("a", "b", "Investment")
    saved.add_arc("b", "c", "Investment")
    saved.add_arc("c", "a", "Investment")
    tpiin = TPIIN.build(companies=["other"])
    tpiin.scs_subgraphs["scs:a+b+c"] = saved
    tpiin.intra_scs_trades.extend([("a", "c"), ("c", "b")])
    return tpiin


class TestShortestPath:
    def test_direct(self):
        g = scs_tpiin().scs_subgraphs["scs:a+b+c"]
        assert shortest_path_in(g, "a", "b") == ("a", "b")

    def test_around_the_ring(self):
        g = scs_tpiin().scs_subgraphs["scs:a+b+c"]
        assert shortest_path_in(g, "c", "b") == ("c", "a", "b")

    def test_trivial(self):
        g = scs_tpiin().scs_subgraphs["scs:a+b+c"]
        assert shortest_path_in(g, "a", "a") == ("a",)

    def test_unreachable_raises(self):
        g = DiGraph()
        g.add_node("x")
        g.add_node("y")
        with pytest.raises(MiningError, match="no path"):
            shortest_path_in(g, "x", "y")


class TestScsGroups:
    def test_one_group_per_trade(self):
        groups = scs_suspicious_groups(scs_tpiin())
        assert len(groups) == 2
        assert all(g.kind is GroupKind.SCS for g in groups)
        assert all(g.is_simple for g in groups)

    def test_witness_trails(self):
        groups = {g.trading_arc: g for g in scs_suspicious_groups(scs_tpiin())}
        assert groups[("a", "c")].support_trail == ("a", "b", "c")
        assert groups[("c", "b")].support_trail == ("c", "a", "b")

    def test_duplicate_trades_deduped(self):
        tpiin = scs_tpiin()
        tpiin.intra_scs_trades.append(("a", "c"))
        assert len(scs_suspicious_groups(tpiin)) == 2

    def test_no_trades_no_groups(self):
        tpiin = TPIIN.build(companies=["x"])
        assert scs_suspicious_groups(tpiin) == []

    def test_corrupted_provenance_raises(self):
        tpiin = scs_tpiin()
        tpiin.intra_scs_trades.append(("a", "other"))
        with pytest.raises(MiningError, match="does not lie inside"):
            scs_suspicious_groups(tpiin)
