"""Unit tests for the optimized engine and its helpers."""

import pytest

from repro.fusion.tpiin import TPIIN
from repro.mining.detector import detect
from repro.mining.fast import (  # reprolint: disable=R011  (deprecation under test)
    enumerate_root_paths,
    fast_detect,
    paths_between,
)
from repro.mining.options import Engine
from repro.model.colors import EColor


def diamond_tpiin() -> TPIIN:
    return TPIIN.build(
        persons=["r"],
        companies=["a", "b", "t", "u"],
        influence=[("r", "a"), ("r", "b"), ("a", "t"), ("b", "t"), ("t", "u")],
        trading=[("a", "t"), ("u", "a")],
    )


class TestHelpers:
    def test_enumerate_root_paths(self):
        t = diamond_tpiin()
        by_end = enumerate_root_paths(t.graph, "r")
        assert by_end["r"] == [("r",)]
        assert set(by_end["t"]) == {("r", "a", "t"), ("r", "b", "t")}
        assert len(by_end["u"]) == 2

    def test_paths_between(self):
        t = diamond_tpiin()
        assert set(paths_between(t.graph, "r", "t")) == {
            ("r", "a", "t"),
            ("r", "b", "t"),
        }
        assert paths_between(t.graph, "t", "r") == []
        assert paths_between(t.graph, "t", "t") == [("t",)]

    def test_paths_between_prunes_unreachable(self):
        t = diamond_tpiin()
        assert paths_between(t.graph, "u", "b") == []


class TestEquivalence:
    @pytest.mark.parametrize("fixture", ["fig6", "fig8", "case1", "case2", "case3"])
    def test_fast_matches_faithful_on_fixtures(self, fixture, request):
        tpiin = request.getfixturevalue(fixture)
        faithful = detect(tpiin)
        fast = detect(tpiin, engine=Engine.FAST)
        assert {g.key() for g in fast.groups} == {g.key() for g in faithful.groups}
        assert fast.suspicious_trading_arcs == faithful.suspicious_trading_arcs
        assert fast.total_trading_arcs == faithful.total_trading_arcs

    def test_fast_on_diamond_with_circle(self):
        t = diamond_tpiin()
        faithful = detect(t)
        fast = detect(t, engine=Engine.FAST)
        assert {g.key() for g in fast.groups} == {g.key() for g in faithful.groups}

    def test_collect_groups_false_matches_counts(self, fig8):
        full = detect(fig8, engine=Engine.FAST, collect_groups=True)
        counted = detect(fig8, engine=Engine.FAST, collect_groups=False)
        assert counted.groups == []
        assert counted.simple_group_count == full.simple_group_count
        assert counted.complex_group_count == full.complex_group_count
        assert counted.group_count == full.group_count
        assert counted.suspicious_trading_arcs == full.suspicious_trading_arcs
        assert counted.kind_counts() == full.kind_counts()

    def test_small_province_equivalence(self, small_province_tpiin):
        faithful = detect(small_province_tpiin)
        fast = detect(small_province_tpiin, engine=Engine.FAST)
        assert {g.key() for g in fast.groups} == {g.key() for g in faithful.groups}
        assert fast.subtpiin_count == faithful.subtpiin_count
        assert fast.cross_component_trades == faithful.cross_component_trades


class TestDeprecatedAlias:
    def test_fast_detect_warns_and_delegates(self, fig8):
        with pytest.warns(DeprecationWarning, match="fast_detect"):
            aliased = fast_detect(fig8)
        direct = detect(fig8, engine=Engine.FAST)
        assert {g.key() for g in aliased.groups} == {g.key() for g in direct.groups}
        assert aliased.engine == direct.engine

    def test_fast_detect_forwards_collect_groups(self, fig8):
        with pytest.warns(DeprecationWarning):
            counted = fast_detect(fig8, collect_groups=False)
        assert counted.groups == []
        assert counted.group_count > 0
