"""Unit tests for Algorithm 2: patterns tree and component pattern base."""

import pytest

from repro.datagen.cases import FIG10_EXPECTED_PATTERNS
from repro.fusion.tpiin import TPIIN
from repro.mining.patterns import PatternTrail, build_patterns_tree, list_d_order


class TestFig10Golden:
    def test_exact_pattern_base(self, fig8):
        result = build_patterns_tree(fig8.graph)
        rendered = {trail.render() for trail in result.trails}
        assert rendered == set(FIG10_EXPECTED_PATTERNS)
        assert len(result.trails) == 15  # no duplicates either

    def test_walk_type_split(self, fig8):
        result = build_patterns_tree(fig8.graph)
        outosp = [t for t in result.trails if t.is_outosp]
        ftaop = [t for t in result.trails if t.is_ftaop]
        # Fig. 10: patterns 4, 10, 11 are pure influence walks.
        assert {t.render() for t in outosp} == {"L1, C4", "B1, C6", "L4, C6"}
        assert len(ftaop) == 12

    def test_tree_structure(self, fig8):
        result = build_patterns_tree(fig8.graph)
        by_root = {root.node: root for root in result.roots}
        assert set(by_root) == {"L1", "L2", "L3", "L4", "L5", "B1", "B2"}
        # L1 subtree: C1 -> C3 -> (C5), C2 -> C5 -> (C6, C7), C4.
        l1 = by_root["L1"]
        assert {child.node for child in l1.children} == {"C1", "C2", "C4"}
        assert sum(root.leaf_count() for root in result.roots) == 15

    def test_tree_rendering_marks_trading_steps(self, fig8):
        result = build_patterns_tree(fig8.graph)
        text = result.render_tree()
        assert "=> C6" in text  # trading step into C6
        assert "L1" in text

    def test_base_rendering_numbers_lines(self, fig8):
        result = build_patterns_tree(fig8.graph)
        text = result.render_base()
        assert text.splitlines()[0].startswith("1. ")
        assert len(text.splitlines()) == 15


class TestListD:
    def test_order_keys(self, fig8):
        order = list_d_order(fig8.graph)
        g = fig8.graph
        keys = [(g.in_degree(n), -g.out_degree(n)) for n in order]
        assert keys == sorted(keys)

    def test_roots_lead(self, fig8):
        order = list_d_order(fig8.graph)
        persons = {"L1", "L2", "L3", "L4", "L5", "B1", "B2"}
        assert set(order[:7]) == persons


class TestRules:
    def test_rule1_outdegree_zero(self):
        t = TPIIN.build(persons=["p"], companies=["c"], influence=[("p", "c")])
        result = build_patterns_tree(t.graph)
        assert [tr.render() for tr in result.trails] == ["p, c"]

    def test_rule2_stops_at_first_trading_arc(self):
        # c2's outgoing influence must NOT be explored past the trading arc.
        t = TPIIN.build(
            persons=["p"],
            companies=["c1", "c2", "c3"],
            influence=[("p", "c1"), ("c2", "c3")],
            trading=[("c1", "c2")],
        )
        result = build_patterns_tree(t.graph)
        rendered = {tr.render() for tr in result.trails}
        assert "p, c1 -> c2" in rendered
        assert not any("c3" in r for r in rendered if r.startswith("p"))

    def test_intermediate_prefixes_not_emitted(self, fig8):
        result = build_patterns_tree(fig8.graph)
        rendered = {tr.render() for tr in result.trails}
        assert "L1, C2" not in rendered
        assert "L1, C2, C5" not in rendered

    def test_isolated_root_emits_singleton(self):
        t = TPIIN.build(persons=["p"], companies=["c"], influence=[("p", "c")])
        t.graph.add_node("lonely", "Person")
        result = build_patterns_tree(t.graph)
        assert ("lonely",) in {tr.nodes for tr in result.trails}

    def test_company_root_with_trading_arc(self):
        # A company with no influence ancestors starts its own walks.
        t = TPIIN.build(
            companies=["c1", "c2"],
            influence=[("c1", "c2")],
            trading=[("c1", "c2")],
        )
        result = build_patterns_tree(t.graph)
        rendered = {tr.render() for tr in result.trails}
        assert rendered == {"c1, c2", "c1 -> c2"}

    def test_circle_walk_detected(self):
        t = TPIIN.build(
            persons=["a"],
            companies=["c4", "c5"],
            influence=[("a", "c4"), ("c4", "c5")],
            trading=[("c5", "c4")],
        )
        result = build_patterns_tree(t.graph)
        circles = [tr for tr in result.trails if tr.has_circle]
        assert len(circles) == 1
        assert circles[0].render() == "a, c4, c5 -> c4"


class TestBounds:
    def test_max_trails(self, fig8):
        result = build_patterns_tree(fig8.graph, max_trails=5)
        assert len(result.trails) == 5
        assert result.truncated

    def test_uncapped_is_not_truncated(self, fig8):
        result = build_patterns_tree(fig8.graph)
        assert not result.truncated

    def test_cap_equal_to_total_is_not_truncated(self, fig8):
        # The cap is only *hit* when the enumeration stops early.
        total = len(build_patterns_tree(fig8.graph, build_tree=False).trails)
        result = build_patterns_tree(fig8.graph, max_trails=total + 1)
        assert len(result.trails) == total
        assert not result.truncated

    def test_build_tree_false_skips_forest(self, fig8):
        result = build_patterns_tree(fig8.graph, build_tree=False)
        assert result.roots == []
        assert len(result.trails) == 15


class TestPatternTrail:
    def test_properties(self):
        trail = PatternTrail(nodes=("a", "b"), trading_target="c")
        assert trail.antecedent == "a"
        assert trail.is_ftaop and not trail.is_outosp
        assert trail.trading_arc == ("b", "c")
        assert not trail.has_circle
        assert len(trail) == 3

    def test_outosp(self):
        trail = PatternTrail(nodes=("a", "b"))
        assert trail.is_outosp
        assert trail.trading_arc is None
        assert len(trail) == 2
        assert trail.render() == "a, b"
