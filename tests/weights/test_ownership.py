"""Unit tests for the shareholding register and effective control."""

import pytest

from repro.errors import ValidationError
from repro.weights.ownership import (
    ShareholdingRegister,
    derive_investment_graph,
    effective_control,
    stake_arc_weights,
)


def chain_register() -> ShareholdingRegister:
    """p owns 80% of A; A owns 60% of B; B owns 100% of C."""
    reg = ShareholdingRegister()
    reg.add_stake("p", "A", 0.8)
    reg.add_stake("A", "B", 0.6)
    reg.add_stake("B", "C", 1.0)
    return reg


class TestRegister:
    def test_accumulating_purchases(self):
        reg = ShareholdingRegister()
        reg.add_stake("p", "A", 0.3)
        reg.add_stake("p", "A", 0.2)
        assert reg.stake("p", "A") == pytest.approx(0.5)

    def test_totals_capped_at_100_percent(self):
        reg = ShareholdingRegister()
        reg.add_stake("p", "A", 0.7)
        with pytest.raises(ValidationError, match="100%"):
            reg.add_stake("q", "A", 0.4)

    def test_self_ownership_rejected(self):
        with pytest.raises(ValidationError, match="itself"):
            ShareholdingRegister().add_stake("A", "A", 0.5)

    def test_fraction_bounds(self):
        reg = ShareholdingRegister()
        with pytest.raises(ValidationError):
            reg.add_stake("p", "A", 0.0)
        with pytest.raises(ValidationError):
            reg.add_stake("p", "A", 1.5)

    def test_owners_of_and_entities(self):
        reg = chain_register()
        assert reg.owners_of("B") == {"A": 0.6}
        owners, companies = reg.entities()
        assert owners == ["p"]
        assert companies == ["A", "B", "C"]
        assert len(reg) == 3


class TestEffectiveControl:
    def test_chain_control_multiplies(self):
        control = effective_control(chain_register())
        assert control[("p", "A")] == pytest.approx(0.8)
        assert control[("p", "B")] == pytest.approx(0.48)
        assert control[("p", "C")] == pytest.approx(0.48)
        assert control[("A", "C")] == pytest.approx(0.6)

    def test_diamond_control_adds(self):
        reg = ShareholdingRegister()
        reg.add_stake("p", "A", 1.0)
        reg.add_stake("p", "B", 1.0)
        reg.add_stake("A", "C", 0.5)
        reg.add_stake("B", "C", 0.5)
        control = effective_control(reg)
        assert control[("p", "C")] == pytest.approx(1.0)

    def test_partial_cycle_converges(self):
        # Mutual 30% cross-holding: the geometric series converges.
        reg = ShareholdingRegister()
        reg.add_stake("p", "A", 0.7)
        reg.add_stake("A", "B", 0.3)
        reg.add_stake("B", "A", 0.3)
        control = effective_control(reg)
        # p's control of A: 0.7 * sum_k (0.09)^k = 0.7 / (1 - 0.09).
        assert control[("p", "A")] == pytest.approx(0.7 / 0.91)

    def test_full_cycle_is_singular(self):
        reg = ShareholdingRegister()
        reg.add_stake("A", "B", 1.0)
        reg.add_stake("B", "A", 1.0)
        with pytest.raises(ValidationError, match="singular"):
            effective_control(reg)

    def test_empty_register(self):
        assert effective_control(ShareholdingRegister()) == {}


class TestDerivation:
    def test_threshold_filters_direct_stakes(self):
        gi = derive_investment_graph(chain_register(), threshold=0.5)
        arcs = {(t, h) for t, h, _c in gi.arcs()}
        assert arcs == {("A", "B"), ("B", "C")}
        gi = derive_investment_graph(chain_register(), threshold=0.7)
        arcs = {(t, h) for t, h, _c in gi.arcs()}
        assert arcs == {("B", "C")}

    def test_person_stakes_never_become_investment_arcs(self):
        gi = derive_investment_graph(chain_register(), threshold=0.1)
        assert not any(t == "p" for t, _h, _c in gi.arcs())

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            derive_investment_graph(chain_register(), threshold=0.0)

    def test_derived_graph_fuses(self):
        from repro.fusion.pipeline import fuse
        from repro.model.colors import InfluenceKind
        from repro.model.homogeneous import (
            InfluenceGraph,
            InterdependenceGraph,
            TradingGraph,
        )

        reg = chain_register()
        gi = derive_investment_graph(reg, threshold=0.5)
        g2 = InfluenceGraph()
        for company in ("A", "B", "C"):
            g2.add_influence(
                "p", company, InfluenceKind.CEO_OF, legal_person=True
            )
        g4 = TradingGraph()
        g4.add_trade("B", "C")
        tpiin = fuse(InterdependenceGraph(), g2, gi, g4).tpiin
        from repro.mining.detector import detect

        result = detect(tpiin)
        assert ("B", "C") in result.suspicious_trading_arcs


class TestScoringIntegration:
    def test_stake_weights_modulate_scores(self, fig8):
        from repro.mining.detector import detect
        from repro.weights.scoring import score_group

        result = detect(fig8)
        group = next(g for g in result.groups if g.antecedent == "L1")
        weak = {("C1", "C3"): 0.3, ("C2", "C5"): 0.3}
        strong = {("C1", "C3"): 0.95, ("C2", "C5"): 0.95}
        assert score_group(group, fig8, arc_weights=strong) > score_group(
            group, fig8, arc_weights=weak
        )

    def test_stake_arc_weights_export(self):
        weights = stake_arc_weights(chain_register())
        assert weights[("A", "B")] == pytest.approx(0.6)
        assert len(weights) == 3
