"""Unit tests for edge weighting and group ranking."""

import pytest

from repro.errors import MiningError
from repro.mining.detector import detect
from repro.mining.groups import GroupKind, SuspiciousGroup
from repro.weights.scoring import (
    WeightConfig,
    rank_groups,
    rank_trading_arcs,
    score_group,
    score_trading_arc,
)


class TestConfig:
    def test_defaults_valid(self):
        WeightConfig()

    def test_bad_hop_weight(self):
        with pytest.raises(MiningError):
            WeightConfig(investment_hop=0.0)
        with pytest.raises(MiningError):
            WeightConfig(person_influence=1.5)

    def test_bad_boost(self):
        with pytest.raises(MiningError):
            WeightConfig(syndicate_antecedent_boost=0.5)


class TestScoreGroup:
    def test_scores_in_unit_interval(self, fig8):
        result = detect(fig8)
        for group in result.groups:
            assert 0.0 < score_group(group, fig8) <= 1.0

    def test_longer_chains_score_lower(self, fig8):
        short = SuspiciousGroup(trading_trail=("B1", "C5", "C6"), support_trail=("B1", "C6"))
        long = SuspiciousGroup(
            trading_trail=("L1", "C1", "C3", "C5"), support_trail=("L1", "C2", "C5")
        )
        assert score_group(short, fig8) > score_group(long, fig8)

    def test_syndicate_antecedent_boosted(self):
        from repro.fusion.tpiin import TPIIN

        tpiin = TPIIN.build(
            persons=["syn:a+b", "L3"],
            companies=["C5", "C6"],
            influence=[
                ("syn:a+b", "C5"),
                ("syn:a+b", "C6"),
                ("L3", "C5"),
                ("L3", "C6"),
            ],
            trading=[("C5", "C6")],
        )
        config = WeightConfig(
            syndicate_antecedent_boost=1.15, person_influence=0.9
        )
        plain = SuspiciousGroup(
            trading_trail=("L3", "C5", "C6"), support_trail=("L3", "C6")
        )
        boosted = SuspiciousGroup(
            trading_trail=("syn:a+b", "C5", "C6"), support_trail=("syn:a+b", "C6")
        )
        plain_score = score_group(plain, tpiin, config)
        assert score_group(boosted, tpiin, config) == pytest.approx(
            min(1.0, plain_score * 1.15)
        )

    def test_scs_and_circle_kinds(self, fig8):
        scs = SuspiciousGroup(
            trading_trail=("a", "b"), support_trail=("a", "b"), kind=GroupKind.SCS
        )
        assert score_group(scs, fig8) == pytest.approx(0.95)
        circle = SuspiciousGroup(
            trading_trail=("C5", "C6", "C5"),
            support_trail=("C5",),
            kind=GroupKind.CIRCLE,
        )
        assert 0.0 < score_group(circle, fig8) <= 0.9


class TestAggregation:
    def test_noisy_or_grows_with_groups(self, fig8):
        result = detect(fig8)
        one = result.groups[:1]
        assert score_trading_arc(result.groups, fig8) >= score_trading_arc(one, fig8)

    def test_rankings(self, fig8):
        result = detect(fig8)
        ranked_groups = rank_groups(result, fig8)
        scores = [s for s, _g in ranked_groups]
        assert scores == sorted(scores, reverse=True)
        ranked_arcs = rank_trading_arcs(result, fig8)
        assert len(ranked_arcs) == len(result.suspicious_trading_arcs)
        arc_scores = [s for s, _a in ranked_arcs]
        assert arc_scores == sorted(arc_scores, reverse=True)

    def test_empty_groups(self, fig8):
        assert score_trading_arc([], fig8) == 0.0


class TestFloor:
    def test_floor_clamps_tiny_scores(self, fig8):
        config = WeightConfig(
            person_influence=0.001, investment_hop=0.001, floor=1e-4
        )
        from repro.mining.detector import detect

        group = detect(fig8).groups[0]
        assert score_group(group, fig8, config) >= 1e-4
