"""Properties of the graph substrate, cross-checked against networkx."""

import networkx as nx
from hypothesis import given, settings

from repro.graph.dag import count_paths_from_roots, enumerate_paths_from, roots
from repro.graph.edgelist import EdgeList
from repro.graph.tarjan import strongly_connected_components
from repro.graph.traversal import weakly_connected_components

from .strategies import digraphs, tpiins


def to_networkx(graph) -> nx.DiGraph:
    ng = nx.DiGraph()
    ng.add_nodes_from(graph.nodes())
    ng.add_edges_from((t, h) for t, h, _c in graph.arcs())
    return ng


@settings(max_examples=150, deadline=None)
@given(graph=digraphs())
def test_tarjan_matches_networkx(graph):
    ours = {frozenset(c) for c in strongly_connected_components(graph)}
    theirs = {frozenset(c) for c in nx.strongly_connected_components(to_networkx(graph))}
    assert ours == theirs


@settings(max_examples=150, deadline=None)
@given(graph=digraphs())
def test_weak_components_match_networkx(graph):
    ours = {frozenset(c) for c in weakly_connected_components(graph)}
    theirs = {
        frozenset(c) for c in nx.weakly_connected_components(to_networkx(graph))
    }
    assert ours == theirs


@settings(max_examples=100, deadline=None)
@given(tpiin=tpiins())
def test_path_counts_match_enumeration(tpiin):
    from repro.model.colors import EColor

    graph = tpiin.graph
    counts = count_paths_from_roots(graph, EColor.INFLUENCE)
    explicit: dict = {node: 0 for node in graph.nodes()}
    for root in roots(graph, EColor.INFLUENCE):
        for path in enumerate_paths_from(graph, root, EColor.INFLUENCE):
            explicit[path[-1]] += 1
    assert counts == explicit


@settings(max_examples=100, deadline=None)
@given(tpiin=tpiins())
def test_edge_list_roundtrip_preserves_detection(tpiin):
    from repro.fusion.tpiin import TPIIN
    from repro.mining.detector import detect

    edge_list = tpiin.to_edge_list()
    back = TPIIN.from_edge_list(edge_list)
    assert {g.key() for g in detect(back).groups} == {
        g.key() for g in detect(tpiin).groups
    }


@settings(max_examples=100, deadline=None)
@given(tpiin=tpiins())
def test_edge_list_layout_invariant(tpiin):
    edge_list = tpiin.to_edge_list()
    m = edge_list.first_trading_row
    assert all(code == 1 for code in edge_list.array[:m, 2])
    assert all(code == 0 for code in edge_list.array[m:, 2])
