"""Property: the plugin-path IAT detector is the legacy ``detect()``.

The detector framework must be a pure re-packaging of the paper's
miner: for every engine, running ``iat-groups`` through the plugin
protocol (directly or via :func:`run_detectors`) yields the same group
set, the same suspicious-arc set, and findings that enumerate exactly
those arcs.
"""

from hypothesis import given, settings

from repro.detectors import DetectionContext, IATConfig, IATGroupDetector, run_detectors
from repro.mining.detector import detect
from repro.mining.options import DetectOptions, Engine

from .strategies import tpiins

ENGINES = tuple(engine.value for engine in Engine)


@settings(max_examples=40, deadline=None)
@given(tpiin=tpiins())
def test_plugin_path_equals_legacy_detect_on_every_engine(tpiin):
    assert set(ENGINES) == {"faithful", "fast", "csr", "parallel", "incremental"}
    for engine in ENGINES:
        legacy = detect(tpiin, engine=engine)
        outcome = IATGroupDetector(IATConfig(engine=engine)).run(
            DetectionContext(tpiin=tpiin)
        )
        plugin = outcome.detection
        assert plugin is not None
        assert plugin.suspicious_trading_arcs == legacy.suspicious_trading_arcs
        assert {g.key() for g in plugin.groups} == {g.key() for g in legacy.groups}
        found_arcs = {f.arcs[0] for f in outcome.findings}
        assert found_arcs == legacy.suspicious_trading_arcs


@settings(max_examples=30, deadline=None)
@given(tpiin=tpiins())
def test_runner_options_path_equals_legacy_detect(tpiin):
    for engine in ENGINES:
        legacy = detect(tpiin, engine=engine)
        report = run_detectors(
            tpiin, "iat-groups", options=DetectOptions(engine=engine)
        )
        run = report["iat-groups"]
        assert run.detection is not None
        assert run.detection.engine == engine
        assert (
            run.detection.suspicious_trading_arcs
            == legacy.suspicious_trading_arcs
        )
        assert {g.key() for g in run.detection.groups} == {
            g.key() for g in legacy.groups
        }
