"""Property: tracing is observational — it never changes detection.

For every engine, running with ``trace=True`` (or a caller-owned
tracer) must produce the same group set and suspicious arcs as the
untraced run, and the collected span tree must actually describe the
run (a ``detect`` root whose attributes name the engine).
"""

from hypothesis import given, settings

from repro.mining.detector import detect
from repro.mining.options import Engine
from repro.obs.tracing import Tracer

from .strategies import tpiins

#: The parallel engine is exercised separately (process pool spin-up is
#: far too slow for a per-example property); its trace transparency is
#: covered by tests/mining/test_parallel.py and the integration suite.
_ENGINES = (Engine.FAITHFUL, Engine.FAST, Engine.CSR, Engine.INCREMENTAL)


def _key_set(result):
    return {g.key() for g in result.groups}


@settings(max_examples=60, deadline=None)
@given(tpiin=tpiins())
def test_traced_equals_untraced_for_every_engine(tpiin):
    for engine in _ENGINES:
        plain = detect(tpiin, engine=engine)
        traced = detect(tpiin, engine=engine, trace=True)
        assert _key_set(plain) == _key_set(traced), engine.value
        assert (
            plain.suspicious_trading_arcs == traced.suspicious_trading_arcs
        ), engine.value
        assert plain.trace is None
        assert traced.trace is not None
        assert traced.trace.name == "detect"
        assert traced.trace.attributes["engine"] == engine.value


@settings(max_examples=40, deadline=None)
@given(tpiin=tpiins())
def test_caller_owned_tracer_nests_the_run(tpiin):
    tracer = Tracer()
    with tracer.span("audit"):
        result = detect(tpiin, engine=Engine.FAST, trace=tracer)
    root = tracer.root
    assert root.name == "audit"
    assert [child.name for child in root.children] == ["detect"]
    assert result.trace is root.children[0]
    assert _key_set(result) == _key_set(detect(tpiin, engine=Engine.FAST))
