"""Property: every engine and both oracles agree on random TPIINs.

This is the library's keystone invariant (DESIGN.md, item 3): the
faithful Algorithm 1/2, the optimized engine, the naive Appendix-B
matcher and the paper's global-traversal baseline all produce the same
group set, and the suspicious-arc set equals both reachability oracles.
"""

from hypothesis import given, settings

from repro.baseline.global_traversal import global_traversal_detect
from repro.mining.detector import detect
from repro.mining.matching import match_component_patterns, match_pairs_naive
from repro.mining.oracle import suspicious_arc_oracle, suspicious_arc_oracle_closure
from repro.mining.patterns import build_patterns_tree

from .strategies import tpiins


@settings(max_examples=120, deadline=None)
@given(tpiin=tpiins())
def test_faithful_equals_fast(tpiin):
    faithful = detect(tpiin)
    fast = detect(tpiin, engine="fast")
    assert {g.key() for g in faithful.groups} == {g.key() for g in fast.groups}
    assert faithful.suspicious_trading_arcs == fast.suspicious_trading_arcs


@settings(max_examples=80, deadline=None)
@given(tpiin=tpiins())
def test_faithful_equals_global_traversal(tpiin):
    faithful = detect(tpiin)
    baseline = global_traversal_detect(tpiin, starts="roots")
    assert {g.key() for g in faithful.groups} == {g.key() for g in baseline.groups}


@settings(max_examples=80, deadline=None)
@given(tpiin=tpiins())
def test_suspicious_arcs_match_both_oracles(tpiin):
    detected = detect(tpiin).suspicious_trading_arcs
    assert detected == suspicious_arc_oracle(tpiin)
    assert detected == suspicious_arc_oracle_closure(tpiin)


@settings(max_examples=80, deadline=None)
@given(tpiin=tpiins())
def test_indexed_matching_equals_naive(tpiin):
    trails = build_patterns_tree(tpiin.graph, build_tree=False).trails
    indexed = {g.key() for g in match_component_patterns(trails)}
    naive = {g.key() for g in match_pairs_naive(trails)}
    assert indexed == naive


@settings(max_examples=60, deadline=None)
@given(tpiin=tpiins())
def test_all_mode_baseline_is_superset_with_same_arcs(tpiin):
    roots_mode = global_traversal_detect(tpiin, starts="roots")
    all_mode = global_traversal_detect(tpiin, starts="all")
    assert {g.key() for g in roots_mode.groups} <= {
        g.key() for g in all_mode.groups
    }
    assert (
        roots_mode.suspicious_trading_arcs == all_mode.suspicious_trading_arcs
    )


@settings(max_examples=60, deadline=None)
@given(tpiin=tpiins())
def test_incremental_equals_batch_after_add_remove(tpiin):
    """Streaming adds/removes converge to the batch result."""
    from repro.fusion.tpiin import TPIIN
    from repro.mining.incremental import IncrementalDetector

    arcs = sorted(tpiin.trading_arcs())
    antecedent = TPIIN(graph=tpiin.antecedent_graph())
    detector = IncrementalDetector(antecedent)
    # Add everything, remove the first half, re-add it.
    for arc in arcs:
        detector.add_trading_arc(*arc)
    for arc in arcs[: len(arcs) // 2]:
        detector.remove_trading_arc(*arc)
    for arc in arcs[: len(arcs) // 2]:
        detector.add_trading_arc(*arc)

    batch = detect(tpiin, engine="fast")
    assert detector.suspicious_arcs == batch.suspicious_trading_arcs
    streamed = detector.result()
    assert {g.key() for g in streamed.groups} == {g.key() for g in batch.groups}
    assert streamed.simple_group_count == batch.simple_group_count
    assert streamed.complex_group_count == batch.complex_group_count


@settings(max_examples=40, deadline=None)
@given(tpiin=tpiins(), data=__import__("hypothesis").strategies.data())
def test_sliding_windows_match_batch(tpiin, data):
    """Every temporal window equals batch detection on its active arcs."""
    from hypothesis import strategies as st

    from repro.fusion.tpiin import TPIIN
    from repro.mining.temporal import TimedTrade, active_in, sliding_window_detect
    from repro.model.colors import EColor

    arcs = sorted(tpiin.trading_arcs())
    trades = []
    for seller, buyer in arcs:
        start = data.draw(st.integers(0, 20))
        length = data.draw(st.one_of(st.none(), st.integers(1, 15)))
        trades.append(
            TimedTrade(seller, buyer, start, None if length is None else start + length)
        )
    antecedent = TPIIN(graph=tpiin.antecedent_graph())
    for window_result in sliding_window_detect(
        antecedent, trades, window=7, step=4, collect_groups=False
    ):
        expected = TPIIN(graph=tpiin.antecedent_graph())
        for arc in active_in(
            trades, window_result.window_start, window_result.window_end
        ):
            expected.graph.add_arc(*arc, EColor.TRADING)
        batch = detect(expected, engine="fast", collect_groups=False)
        assert window_result.suspicious_arcs == batch.suspicious_trading_arcs
        assert (
            window_result.result.group_count == batch.group_count
        ), f"window {window_result.window_start}"
