"""Properties of the contraction operations."""

from hypothesis import given, settings

from repro.fusion.contraction import (
    contract_interdependence,
    fully_contract_by_edges,
)
from repro.fusion.scc import contract_strongly_connected
from repro.graph.dag import is_dag
from repro.graph.tarjan import nontrivial_sccs, strongly_connected_components
from repro.model.colors import VColor

from .strategies import bipartite_influence, digraphs


@settings(max_examples=100, deadline=None)
@given(pair=bipartite_influence())
def test_component_contraction_equals_iterated_pairwise(pair):
    influence, inter = pair
    component = contract_interdependence(influence, inter)
    iterated_graph, _ = fully_contract_by_edges(influence, inter)
    assert set(iterated_graph.nodes()) == set(component.graph.nodes())
    assert set(iterated_graph.arcs()) == set(component.graph.arcs())


@settings(max_examples=100, deadline=None)
@given(pair=bipartite_influence())
def test_contraction_preserves_bipartite_shape(pair):
    influence, inter = pair
    result = contract_interdependence(influence, inter)
    graph = result.graph
    for node in graph.nodes():
        color = graph.node_color(node)
        if color == VColor.PERSON:
            assert graph.in_degree(node) == 0
        else:
            assert graph.out_degree(node) == 0
    # Every original person resolves to a surviving node.
    for person in inter.nodes():
        assert graph.has_node(result.resolve(person))


@settings(max_examples=100, deadline=None)
@given(pair=bipartite_influence())
def test_contraction_preserves_influence_coverage(pair):
    """A company keeps exactly the influencer *groups* it had."""
    influence, inter = pair
    result = contract_interdependence(influence, inter)
    for tail, head, _c in influence.arcs():
        assert result.graph.has_arc(result.resolve(tail), head)


@settings(max_examples=100, deadline=None)
@given(graph=digraphs())
def test_scc_contraction_yields_dag(graph):
    result = contract_strongly_connected(graph)
    assert is_dag(result.graph)


@settings(max_examples=100, deadline=None)
@given(graph=digraphs())
def test_scc_contraction_provenance(graph):
    result = contract_strongly_connected(graph)
    merged = {m for c in nontrivial_sccs(graph) for m in c}
    assert set(result.node_map) == merged
    for scs_id, saved in result.saved_subgraphs.items():
        # Saved subgraphs really are strongly connected.
        components = strongly_connected_components(saved)
        assert len(components) == 1
        assert set(components[0]) == set(saved.nodes())
        if scs_id in result.syndicates:
            assert result.syndicates[scs_id].members == {
                str(n) for n in saved.nodes()
            }
        else:
            # Self-loop singleton: contracted in place.
            assert set(saved.nodes()) == {scs_id}


@settings(max_examples=100, deadline=None)
@given(graph=digraphs())
def test_scc_contraction_preserves_reachability(graph):
    """u ~> v in the original iff map(u) ~> map(v) in the contraction."""
    from repro.graph.traversal import dfs_preorder

    result = contract_strongly_connected(graph)
    original_reach = {
        node: set(dfs_preorder(graph, node)) for node in graph.nodes()
    }
    contracted_reach = {
        node: set(dfs_preorder(result.graph, node))
        for node in result.graph.nodes()
    }
    for u in graph.nodes():
        for v in graph.nodes():
            expected = v in original_reach[u]
            got = result.resolve(v) in contracted_reach[result.resolve(u)]
            assert got == expected
