"""Hypothesis strategies generating random (but well-formed) TPIINs.

The generated networks honor Definition 1 by construction: persons have
indegree zero, company-to-company influence (investment) arcs follow
index order so the antecedent network is a DAG, and trading arcs join
distinct companies.  Sizes are kept small because several properties
compare against the exponential global-traversal baseline.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import DiGraph, UnGraph
from repro.model.colors import VColor

__all__ = ["tpiins", "digraphs", "bipartite_influence"]


@st.composite
def tpiins(
    draw,
    max_persons: int = 5,
    max_companies: int = 7,
    max_influence: int = 14,
    max_trading: int = 10,
) -> TPIIN:
    n_persons = draw(st.integers(min_value=0, max_value=max_persons))
    n_companies = draw(st.integers(min_value=1, max_value=max_companies))
    persons = [f"p{i}" for i in range(n_persons)]
    companies = [f"c{i}" for i in range(n_companies)]

    influence: set[tuple[str, str]] = set()
    if persons:
        person_arcs = draw(
            st.sets(
                st.tuples(
                    st.sampled_from(persons), st.sampled_from(companies)
                ),
                max_size=max_influence,
            )
        )
        influence |= person_arcs
    if n_companies >= 2:
        investment_arcs = draw(
            st.sets(
                st.tuples(
                    st.integers(0, n_companies - 2),
                    st.integers(1, n_companies - 1),
                ).filter(lambda ij: ij[0] < ij[1]),
                max_size=max_influence,
            )
        )
        influence |= {(companies[i], companies[j]) for i, j in investment_arcs}

    trading: set[tuple[str, str]] = set()
    if n_companies >= 2:
        trading = {
            (companies[i], companies[j])
            for i, j in draw(
                st.sets(
                    st.tuples(
                        st.integers(0, n_companies - 1),
                        st.integers(0, n_companies - 1),
                    ).filter(lambda ij: ij[0] != ij[1]),
                    max_size=max_trading,
                )
            )
        }

    tpiin = TPIIN.build(
        persons=persons,
        companies=companies,
        influence=sorted(influence),
        trading=sorted(trading),
    )
    tpiin.validate()
    return tpiin


@st.composite
def digraphs(draw, max_nodes: int = 12, max_arcs: int = 30) -> DiGraph:
    """Arbitrary directed graphs (cycles allowed), single arc color."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    arcs = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_arcs,
        )
    )
    g = DiGraph()
    for i in range(n):
        g.add_node(i)
    for u, v in arcs:
        g.add_arc(u, v, "X")
    return g


@st.composite
def bipartite_influence(draw, max_persons: int = 6, max_companies: int = 5):
    """A (G2-like influence digraph, G1 interdependence graph) pair."""
    n_persons = draw(st.integers(min_value=1, max_value=max_persons))
    n_companies = draw(st.integers(min_value=1, max_value=max_companies))
    persons = [f"p{i}" for i in range(n_persons)]
    companies = [f"c{i}" for i in range(n_companies)]
    influence = DiGraph()
    for p in persons:
        influence.add_node(p, VColor.PERSON)
    for c in companies:
        influence.add_node(c, VColor.COMPANY)
    for p, c in draw(
        st.sets(
            st.tuples(st.sampled_from(persons), st.sampled_from(companies)),
            max_size=12,
        )
    ):
        influence.add_arc(p, c, "Influence")

    inter = UnGraph()
    if n_persons >= 2:
        pairs = draw(
            st.sets(
                st.tuples(
                    st.integers(0, n_persons - 2), st.integers(1, n_persons - 1)
                ).filter(lambda ij: ij[0] < ij[1]),
                max_size=6,
            )
        )
        for i, j in pairs:
            inter.add_edge(persons[i], persons[j], "kinship")
    return influence, inter
