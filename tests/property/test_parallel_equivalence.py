"""Property: the shared-memory parallel engine equals faithful and csr.

The parallel engine rebuilds the whole pipeline — whole-graph freeze,
numpy segmentation plan, compact kernels, lazy group materialization —
so this suite pins its cross-engine contract on random TPIINs: same
group set, same suspicious arcs, same per-kind counts, same trail and
component tallies.  A slimmer pooled pass forces real worker processes
through the shared segment.
"""

from __future__ import annotations

import os

from hypothesis import given, settings

from repro.graph.shm import SHM_NAME_PREFIX, live_owned_segments
from repro.mining.detector import detect
from repro.mining.parallel import parallel_detect

from .strategies import tpiins


def shm_entries() -> list[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux fallback
        return []
    return sorted(
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(SHM_NAME_PREFIX)
    )


@settings(max_examples=120, deadline=None)
@given(tpiin=tpiins())
def test_parallel_equals_faithful(tpiin):
    faithful = detect(tpiin)
    parallel = parallel_detect(tpiin)
    assert {g.key() for g in parallel.groups} == {
        g.key() for g in faithful.groups
    }
    assert parallel.suspicious_trading_arcs == faithful.suspicious_trading_arcs
    assert parallel.pattern_trail_count == faithful.pattern_trail_count
    assert parallel.subtpiin_count == faithful.subtpiin_count
    assert parallel.kind_counts() == faithful.kind_counts()
    assert parallel.group_count == faithful.group_count


@settings(max_examples=80, deadline=None)
@given(tpiin=tpiins())
def test_parallel_equals_csr(tpiin):
    csr = detect(tpiin, engine="csr")
    parallel = detect(tpiin, engine="parallel")
    assert {g.key() for g in parallel.groups} == {g.key() for g in csr.groups}
    assert parallel.suspicious_trading_arcs == csr.suspicious_trading_arcs
    assert (
        parallel.simple_group_count,
        parallel.complex_group_count,
    ) == (csr.simple_group_count, csr.complex_group_count)


@settings(max_examples=8, deadline=None)
@given(tpiin=tpiins(max_companies=10, max_trading=14))
def test_pooled_workers_equal_faithful_without_leaks(tpiin):
    """Force the pool even for tiny inputs: real fork, real segment."""
    faithful = detect(tpiin)
    pooled = parallel_detect(tpiin, processes=2, min_pool_work=0)
    assert {g.key() for g in pooled.groups} == {g.key() for g in faithful.groups}
    assert pooled.suspicious_trading_arcs == faithful.suspicious_trading_arcs
    assert shm_entries() == []
    assert live_owned_segments() == []
