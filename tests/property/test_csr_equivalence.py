"""Property: the CSR kernel is a lossless, order-preserving rewrite.

Three layers of equivalence on random TPIINs:

1. freeze/thaw is the identity on nodes, colors and colored arcs
   (multi-color parallel arcs included);
2. the CSR trail enumerator reproduces the faithful pattern base
   **in order**, not just as a set;
3. ``detect(engine="csr")`` finds exactly the groups of
   ``detect(engine="faithful")``.
"""

from hypothesis import given, settings

from repro.graph.csr import CSRGraph
from repro.mining.csr_engine import build_patterns_tree_csr, csr_detect
from repro.mining.detector import detect
from repro.mining.patterns import build_patterns_tree
from repro.mining.segmentation import segment

from .strategies import tpiins


@settings(max_examples=120, deadline=None)
@given(tpiin=tpiins())
def test_freeze_thaw_round_trip(tpiin):
    graph = tpiin.graph
    csr = CSRGraph.freeze(graph)
    thawed = csr.to_digraph()
    assert set(thawed.nodes()) == set(graph.nodes())
    assert set(thawed.arcs()) == set(graph.arcs())
    for node in graph.nodes():
        assert thawed.node_color(node) == graph.node_color(node)
        for color in csr.arc_color_domain:
            assert csr.out_degree(node, color) == graph.out_degree(node, color)
            assert csr.in_degree(node, color) == graph.in_degree(node, color)


@settings(max_examples=120, deadline=None)
@given(tpiin=tpiins())
def test_csr_trails_equal_faithful_in_order(tpiin):
    for sub in segment(tpiin).subtpiins:
        faithful = build_patterns_tree(sub.graph)
        csr = build_patterns_tree_csr(sub.graph)
        assert csr.trails == faithful.trails
        assert csr.list_d == faithful.list_d
        assert csr.render_tree() == faithful.render_tree()


@settings(max_examples=120, deadline=None)
@given(tpiin=tpiins())
def test_csr_engine_equals_faithful(tpiin):
    faithful = detect(tpiin, engine="faithful")
    csr = csr_detect(tpiin)
    assert {g.key() for g in csr.groups} == {g.key() for g in faithful.groups}
    assert csr.suspicious_trading_arcs == faithful.suspicious_trading_arcs
    assert csr.pattern_trail_count == faithful.pattern_trail_count
    assert csr.simple_group_count == faithful.simple_group_count
    assert csr.complex_group_count == faithful.complex_group_count


@settings(max_examples=60, deadline=None)
@given(tpiin=tpiins())
def test_capped_csr_prefix_matches_capped_faithful(tpiin):
    """Under a max_trails cap both engines truncate identically."""
    for sub in segment(tpiin).subtpiins:
        faithful = build_patterns_tree(sub.graph, max_trails=3, build_tree=False)
        csr = build_patterns_tree_csr(sub.graph, max_trails=3, build_tree=False)
        assert csr.trails == faithful.trails
        assert csr.truncated == faithful.truncated
