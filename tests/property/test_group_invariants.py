"""Properties of every mined group (Definitions 2-3 as executable checks)."""

from hypothesis import given, settings

from repro.mining.detector import detect
from repro.mining.groups import GroupKind
from repro.mining.patterns import build_patterns_tree
from repro.model.colors import EColor

from .strategies import tpiins


def _is_simple_path(nodes) -> bool:
    return len(set(nodes)) == len(nodes)


@settings(max_examples=100, deadline=None)
@given(tpiin=tpiins())
def test_group_trails_are_simple_and_color_correct(tpiin):
    graph = tpiin.graph
    for group in detect(tpiin).groups:
        lead = group.trading_trail
        support = group.support_trail
        if group.kind is GroupKind.CIRCLE:
            # Closed trail: interior simple, endpoints equal.
            assert lead[0] == lead[-1]
            assert _is_simple_path(lead[:-1])
        else:
            assert _is_simple_path(lead)
            assert _is_simple_path(support)
        # Influence prefix of the trading trail.
        for tail, head in zip(lead[:-2], lead[1:-1]):
            assert graph.has_arc(tail, head, EColor.INFLUENCE)
        # The closing arc is the single trading arc.
        assert graph.has_arc(lead[-2], lead[-1], EColor.TRADING)
        # The support trail is influence-only.
        for tail, head in zip(support, support[1:]):
            assert graph.has_arc(tail, head, EColor.INFLUENCE)


@settings(max_examples=100, deadline=None)
@given(tpiin=tpiins())
def test_every_suspicious_arc_backed_by_a_group(tpiin):
    result = detect(tpiin)
    arcs_from_groups = {g.trading_arc for g in result.groups}
    assert arcs_from_groups == result.suspicious_trading_arcs


@settings(max_examples=100, deadline=None)
@given(tpiin=tpiins())
def test_matched_group_antecedents_are_roots(tpiin):
    graph = tpiin.graph
    for group in detect(tpiin).groups:
        if group.kind is GroupKind.MATCHED:
            assert graph.in_degree(group.antecedent, EColor.INFLUENCE) == 0


@settings(max_examples=100, deadline=None)
@given(tpiin=tpiins())
def test_group_keys_unique(tpiin):
    groups = detect(tpiin).groups
    keys = [g.key() for g in groups]
    assert len(keys) == len(set(keys))


@settings(max_examples=100, deadline=None)
@given(tpiin=tpiins())
def test_pattern_trails_are_valid_maximal_walks(tpiin):
    graph = tpiin.graph
    trails = build_patterns_tree(tpiin.graph, build_tree=False).trails
    for trail in trails:
        # Start at an influence root.
        assert graph.in_degree(trail.antecedent, EColor.INFLUENCE) == 0
        # Influence body is a simple path over influence arcs.
        assert _is_simple_path(trail.nodes)
        for tail, head in zip(trail.nodes, trail.nodes[1:]):
            assert graph.has_arc(tail, head, EColor.INFLUENCE)
        if trail.is_ftaop:
            # Rule 2: closed by one trading arc.
            assert graph.has_arc(trail.nodes[-1], trail.trading_target, EColor.TRADING)
        else:
            # Rule 1: maximal — the last node has no outgoing arc at all.
            assert graph.out_degree(trail.nodes[-1]) == 0 or len(trail.nodes) == 1


@settings(max_examples=100, deadline=None)
@given(tpiin=tpiins())
def test_segmentation_is_lossless(tpiin):
    """Mining per subTPIIN equals mining the un-segmented network."""
    from repro.mining.matching import match_component_patterns
    from repro.mining.scs_groups import scs_suspicious_groups

    whole_trails = build_patterns_tree(tpiin.graph, build_tree=False).trails
    whole = {g.key() for g in match_component_patterns(whole_trails)}
    whole |= {g.key() for g in scs_suspicious_groups(tpiin)}
    segmented = {g.key() for g in detect(tpiin).groups}
    assert whole == segmented


@settings(max_examples=60, deadline=None)
@given(tpiin=tpiins())
def test_neighborhood_monotone_in_radius(tpiin):
    """Ego networks grow monotonically with the radius."""
    from repro.analysis.investigate import extract_neighborhood

    companies = list(tpiin.companies())
    if not companies:
        return
    center = companies[0]
    previous: set = set()
    for radius in range(0, 4):
        ego = extract_neighborhood(tpiin, center, radius=radius)
        nodes = set(ego.graph.nodes())
        assert previous <= nodes
        # Arcs are exactly the induced ones.
        for tail, head, color in ego.graph.arcs():
            assert tpiin.graph.has_arc(tail, head, color)
        previous = nodes
    # Radius beyond the graph's diameter covers the weak component.
    big = extract_neighborhood(tpiin, center, radius=len(companies) + 10)
    from repro.graph.traversal import weakly_connected_components

    component = next(
        c for c in weakly_connected_components(tpiin.graph) if center in c
    )
    assert set(big.graph.nodes()) == component


@settings(max_examples=60, deadline=None)
@given(tpiin=tpiins())
def test_minimal_groups_invariants(tpiin):
    """Minimal filtering keeps every arc and only non-dominated groups."""
    from repro.mining.groups import minimal_groups

    groups = detect(tpiin).groups
    minimal = minimal_groups(groups)
    assert {g.trading_arc for g in minimal} == {g.trading_arc for g in groups}
    chosen = set(map(id, minimal))
    by_arc: dict = {}
    for group in groups:
        by_arc.setdefault(group.trading_arc, []).append(group)
    for group in groups:
        dominated = any(
            other is not group and other.members < group.members
            for other in by_arc[group.trading_arc]
        )
        assert (id(group) in chosen) == (not dominated)
