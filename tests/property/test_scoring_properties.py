"""Properties of the suspicion scoring layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.detector import detect
from repro.weights.scoring import (
    WeightConfig,
    rank_groups,
    rank_trading_arcs,
    score_group,
    score_trading_arc,
)

from .strategies import tpiins


@settings(max_examples=80, deadline=None)
@given(tpiin=tpiins())
def test_scores_bounded(tpiin):
    result = detect(tpiin)
    for group in result.groups:
        score = score_group(group, tpiin)
        assert 0.0 < score <= 1.0


@settings(max_examples=60, deadline=None)
@given(tpiin=tpiins())
def test_noisy_or_bounded_and_monotone(tpiin):
    result = detect(tpiin)
    by_arc: dict = {}
    for group in result.groups:
        by_arc.setdefault(group.trading_arc, []).append(group)
    for groups in by_arc.values():
        full = score_trading_arc(groups, tpiin)
        assert 0.0 <= full <= 1.0
        partial = score_trading_arc(groups[:1], tpiin)
        assert full >= partial - 1e-12


@settings(max_examples=60, deadline=None)
@given(tpiin=tpiins())
def test_rankings_sorted_and_complete(tpiin):
    result = detect(tpiin)
    ranked_groups = rank_groups(result, tpiin)
    assert len(ranked_groups) == len(result.groups)
    scores = [s for s, _g in ranked_groups]
    assert scores == sorted(scores, reverse=True)
    ranked_arcs = rank_trading_arcs(result, tpiin)
    assert {arc for _s, arc in ranked_arcs} == result.suspicious_trading_arcs


@settings(max_examples=40, deadline=None)
@given(
    tpiin=tpiins(),
    hop=st.floats(min_value=0.1, max_value=1.0),
)
def test_weaker_hops_never_raise_scores(tpiin, hop):
    result = detect(tpiin)
    strong = WeightConfig()
    weak = WeightConfig(person_influence=hop, investment_hop=hop * 0.85)
    for group in result.groups[:10]:
        assert (
            score_group(group, tpiin, weak)
            <= score_group(group, tpiin, strong) + 1e-9
        )
