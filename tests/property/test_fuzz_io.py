"""Fuzzing the on-disk readers: malformed input must fail *cleanly*.

Whatever bytes land in the CSV/JSON files, the loaders must either
succeed or raise :class:`~repro.errors.SerializationError` (or its
parent :class:`~repro.errors.ReproError`) — never ``KeyError``,
``IndexError``, ``ValueError`` or friends leaking from the internals.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.io.edge_list_io import read_edge_list_csv, read_tpiin_csv
from repro.io.registry_io import load_registry_csvs
from repro.io.results_io import group_from_dict, read_detection_json

# Text with newlines and commas so the CSV machinery gets exercised.
_csv_text = st.text(
    alphabet=st.sampled_from(list("abcC0123,\n\"'|;->- .")), max_size=300
)


@settings(max_examples=150, deadline=None)
@given(payload=_csv_text)
def test_edge_list_reader_fails_cleanly(tmp_path_factory, payload):
    path = tmp_path_factory.mktemp("fuzz") / "arcs.csv"
    path.write_text("start,end,color\n" + payload)
    try:
        read_edge_list_csv(path)
    except ReproError:
        pass


@settings(max_examples=100, deadline=None)
@given(arc_payload=_csv_text, node_payload=_csv_text)
def test_tpiin_reader_fails_cleanly(tmp_path_factory, arc_payload, node_payload):
    directory = tmp_path_factory.mktemp("fuzz")
    arc_path = directory / "arcs.csv"
    node_path = directory / "nodes.csv"
    arc_path.write_text("start,end,color\n" + arc_payload)
    node_path.write_text("node,color\n" + node_payload)
    try:
        read_tpiin_csv(arc_path, node_path)
    except ReproError:
        pass


@settings(max_examples=100, deadline=None)
@given(
    persons=_csv_text,
    companies=_csv_text,
    relations=_csv_text,
)
def test_registry_reader_fails_cleanly(
    tmp_path_factory, persons, companies, relations
):
    directory = tmp_path_factory.mktemp("fuzz")
    (directory / "persons.csv").write_text("person_id,name,positions\n" + persons)
    (directory / "companies.csv").write_text(
        "company_id,name,industry,region,scale\n" + companies
    )
    (directory / "relations.csv").write_text("kind,source,target,value\n" + relations)
    try:
        load_registry_csvs(directory)
    except ReproError:
        pass


@settings(max_examples=150, deadline=None)
@given(payload=st.text(max_size=200))
def test_detection_json_reader_fails_cleanly(tmp_path_factory, payload):
    path = tmp_path_factory.mktemp("fuzz") / "detection.json"
    path.write_text(payload)
    try:
        read_detection_json(path)
    except ReproError:
        pass


@settings(max_examples=150, deadline=None)
@given(
    payload=st.dictionaries(
        st.sampled_from(["trading_trail", "support_trail", "kind", "junk"]),
        st.one_of(
            st.lists(st.text(max_size=3), max_size=4),
            st.text(max_size=8),
            st.integers(),
            st.none(),
        ),
        max_size=4,
    )
)
def test_group_from_dict_fails_cleanly(payload):
    try:
        group_from_dict(payload)
    except ReproError:
        pass


from .strategies import tpiins  # noqa: E402 - strategy import for the test below


@settings(max_examples=50, deadline=None)
@given(tpiin=tpiins())
def test_bundle_roundtrip_preserves_detection(tmp_path_factory, tpiin):
    """Random TPIINs survive the bundle format byte-for-byte semantically."""
    from repro.io.bundle_io import read_tpiin_bundle, write_tpiin_bundle
    from repro.mining.detector import detect

    path = tmp_path_factory.mktemp("bundle") / "t.json"
    loaded = read_tpiin_bundle(write_tpiin_bundle(tpiin, path))
    assert set(loaded.graph.arcs()) == set(tpiin.graph.arcs())
    assert {g.key() for g in detect(loaded, engine="fast").groups} == {
        g.key() for g in detect(tpiin, engine="fast").groups
    }


@settings(max_examples=60, deadline=None)
@given(tpiin=tpiins())
def test_svg_well_formed_for_random_tpiins(tpiin):
    """The SVG renderer emits valid XML for arbitrary TPIINs."""
    import xml.etree.ElementTree as ET

    from repro.io.svg import tpiin_to_svg

    ET.fromstring(tpiin_to_svg(tpiin, title="fuzz <&> run"))


@settings(max_examples=60, deadline=None)
@given(tpiin=tpiins())
def test_dot_balanced_for_random_tpiins(tpiin):
    from repro.io.dot import tpiin_to_dot

    dot = tpiin_to_dot(tpiin)
    assert dot.startswith("digraph")
    assert dot.count("{") == dot.count("}")
