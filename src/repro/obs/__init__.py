"""Pipeline observability: span tracing, metrics registry, profiling.

Stdlib-only.  Three pieces:

* :mod:`repro.obs.tracing` — per-run span trees with monotonic timing
  and attributes, rendered as text or emitted as JSONL trace events;
* :mod:`repro.obs.registry` — the process-wide metrics registry
  (counters, gauges, fixed-bucket histograms) with JSON and
  Prometheus-text exporters, shared by the batch pipeline and the
  detection daemon;
* :mod:`repro.obs.profile` — the ``--profile`` report (stage tree +
  slowest subTPIINs) over a traced run.

See docs/OBSERVABILITY.md for the span schema and metric names.
"""

from repro.obs.profile import SUBTPIIN_SPAN, render_profile, slowest_subtpiins
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    Attr,
    NullSpan,
    NullTracer,
    SpanHandle,
    SpanRecord,
    Tracer,
    TracerLike,
)

__all__ = [
    "Attr",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "SUBTPIIN_SPAN",
    "SpanHandle",
    "SpanRecord",
    "Tracer",
    "TracerLike",
    "get_registry",
    "render_profile",
    "set_registry",
    "slowest_subtpiins",
]
