"""Span tracing for the detection pipeline.

A *span* is one timed stage of a pipeline run — fusion, segmentation,
one subTPIIN's patterns-tree build, a WAL replay — with monotonic-clock
start/end times, free-form scalar attributes (nodes seen, trails
emitted, cache hits, ...) and child spans.  A :class:`Tracer` collects
spans into a tree which can be rendered as text
(:meth:`SpanRecord.render`), exported as one JSON document
(:meth:`SpanRecord.to_dict`) or emitted as JSONL trace events
(:meth:`Tracer.to_jsonl`).

Tracing is **opt-in and zero-overhead when disabled**: the module-level
:data:`NULL_TRACER` singleton answers every ``span()`` call with the
shared :data:`NULL_SPAN`, so an untraced ``detect()`` pays one attribute
lookup and one no-argument method call per stage — no dict, no
:class:`SpanRecord`, no string formatting is ever allocated.  Hot loops
must guard attribute reporting with ``if tracer.enabled:`` so that even
the keyword-argument dict of ``span.set(...)`` is skipped.

The clock is :func:`time.perf_counter` throughout; span times are only
meaningful relative to one another within a single process.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Iterator, Protocol, Union

__all__ = [
    "Attr",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "SpanHandle",
    "SpanRecord",
    "Tracer",
    "TracerLike",
]

#: Scalar attribute values a span may carry.
Attr = Union[int, float, str, bool]


@dataclass(slots=True)
class SpanRecord:
    """One finished (or in-flight) span of the trace tree."""

    name: str
    start: float
    end: float = 0.0
    attributes: dict[str, Attr] = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall-clock seconds between start and end (0.0 while open)."""
        return max(0.0, self.end - self.start)

    def walk(self) -> Iterator[tuple[int, "SpanRecord"]]:
        """Depth-first ``(depth, span)`` pairs, pre-order, iteratively."""
        stack: list[tuple[int, SpanRecord]] = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            stack.extend((depth + 1, child) for child in reversed(span.children))

    def find(self, name: str) -> list["SpanRecord"]:
        """Every span named ``name`` in this subtree, pre-order."""
        return [span for _, span in self.walk() if span.name == name]

    def self_seconds(self) -> float:
        """Duration not covered by direct children (own work)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def to_dict(self) -> dict[str, object]:
        """JSON-ready nested form (durations in seconds)."""
        payload: dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "duration_seconds": round(self.duration, 9),
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def render(self, *, unit_scale: float = 1e3) -> str:
        """Indented tree with per-span durations (milliseconds).

        ``unit_scale`` converts seconds to the display unit (default
        milliseconds); attributes are appended ``key=value``.
        """
        lines: list[str] = []
        for depth, span in self.walk():
            attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
            line = (
                f"{'  ' * depth}{span.name:<{max(1, 28 - 2 * depth)}} "
                f"{span.duration * unit_scale:10.3f} ms"
            )
            if attrs:
                line += f"  [{attrs}]"
            lines.append(line)
        return "\n".join(lines)


class SpanHandle(Protocol):
    """What engine code may do with an open span (real or null)."""

    def __enter__(self) -> "SpanHandle": ...

    def __exit__(self, *exc_info: object) -> None: ...

    def set(self, **attrs: Attr) -> None:
        """Attach scalar attributes to the span."""
        ...

    def add(self, key: str, amount: int = 1) -> None:
        """Increment a numeric span attribute (creates it at 0)."""
        ...

    @property
    def record(self) -> "SpanRecord | None":
        """The underlying record (``None`` for the null span)."""
        ...


class TracerLike(Protocol):
    """The tracer surface the pipeline is instrumented against."""

    @property
    def enabled(self) -> bool: ...

    def span(self, name: str) -> SpanHandle:
        """Open a child span of the innermost open span."""
        ...

    def record(self, name: str, duration: float, **attrs: Attr) -> None:
        """Attach an already-measured span (e.g. a worker's) at the cursor."""
        ...


class NullSpan:
    """The do-nothing span; a single shared instance, never allocated."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Attr) -> None:
        return None

    def add(self, key: str, amount: int = 1) -> None:
        return None

    @property
    def record(self) -> None:
        return None


NULL_SPAN = NullSpan()


class NullTracer:
    """The disabled tracer: every ``span()`` answers :data:`NULL_SPAN`."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str) -> NullSpan:
        return NULL_SPAN

    def record(self, name: str, duration: float, **attrs: Attr) -> None:
        return None


#: Module-level singleton; the annotation is the only spelling of its type.
NULL_TRACER: NullTracer = NullTracer()


class _OpenSpan:
    """Context handle for one open :class:`SpanRecord` of a tracer."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._close(self._record)

    def set(self, **attrs: Attr) -> None:
        self._record.attributes.update(attrs)

    def add(self, key: str, amount: int = 1) -> None:
        attrs = self._record.attributes
        current = attrs.get(key, 0)
        attrs[key] = (current if isinstance(current, (int, float)) else 0) + amount

    @property
    def record(self) -> SpanRecord:
        return self._record


class Tracer:
    """Collects a span tree; one instance per traced pipeline run.

    Spans nest by call order: ``span()`` opens a child of the innermost
    open span (or a new root).  The tracer is not thread-safe — each
    traced run owns its tracer; parallel workers report back via
    :meth:`record` at the join point instead of sharing one.
    """

    __slots__ = ("_roots", "_stack")

    def __init__(self) -> None:
        self._roots: list[SpanRecord] = []
        self._stack: list[SpanRecord] = []

    @property
    def enabled(self) -> bool:
        return True

    @property
    def roots(self) -> list[SpanRecord]:
        """The completed top-level spans (usually exactly one)."""
        return self._roots

    @property
    def root(self) -> SpanRecord | None:
        """The first top-level span, if any — the whole-run tree."""
        return self._roots[0] if self._roots else None

    def span(self, name: str) -> _OpenSpan:
        record = SpanRecord(name=name, start=time.perf_counter())
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self._roots.append(record)
        self._stack.append(record)
        return _OpenSpan(self, record)

    def record(self, name: str, duration: float, **attrs: Attr) -> None:
        """Attach a pre-timed span (a worker's wall time) at the cursor.

        The span is stamped as ending *now* and starting ``duration``
        seconds earlier, which places remote work on this tracer's
        clock without requiring cross-process clock agreement.
        """
        now = time.perf_counter()
        record = SpanRecord(name=name, start=now - duration, end=now)
        if attrs:
            record.attributes.update(attrs)
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self._roots.append(record)

    def _close(self, record: SpanRecord) -> None:
        record.end = time.perf_counter()
        # Pop through abandoned children so an exception inside a nested
        # span cannot leave the cursor pointing at a closed frame.
        while self._stack:
            top = self._stack.pop()
            if top.end == 0.0:
                top.end = record.end
            if top is record:
                break

    def span_count(self) -> int:
        """Total spans collected (instrumentation call-site census)."""
        return sum(1 for root in self._roots for _ in root.walk())

    def to_jsonl(self) -> str:
        """One JSON event per span: flat, depth-annotated, pre-order."""
        lines: list[str] = []
        for root in self._roots:
            for depth, span in root.walk():
                event: dict[str, object] = {
                    "name": span.name,
                    "depth": depth,
                    "start": round(span.start, 9),
                    "duration_seconds": round(span.duration, 9),
                }
                if span.attributes:
                    event["attributes"] = dict(span.attributes)
                lines.append(json.dumps(event, separators=(",", ":")))
        return "\n".join(lines)

    def render(self) -> str:
        """Text tree of every root span (see :meth:`SpanRecord.render`)."""
        return "\n".join(root.render() for root in self._roots)
