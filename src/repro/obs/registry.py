"""Process-wide metrics registry (counters, gauges, histograms).

One :class:`MetricsRegistry` holds every named metric series of a
process — daemon request counters, WAL appends, batch-detect tallies,
path-cache hit rates — so the service's ``/v1/metrics`` endpoint and the
batch pipeline report through a single schema.  Two exporters:

* :meth:`MetricsRegistry.to_dict` — one JSON document, metric name ->
  ``{kind, help, series: [{labels, ...values}]}``;
* :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition format (``# TYPE`` / ``# HELP`` headers, ``_bucket`` /
  ``_sum`` / ``_count`` expansion for histograms).

Metrics are identified by ``(name, sorted labels)``; requesting the
same identity twice returns the same instance, so call sites simply ask
for ``registry.counter("repro_wal_appends_total")`` wherever they are.
All mutations are guarded by one registry lock — these are tiny
critical sections, never on a per-node hot path (pipeline inner loops
report via span attributes and flush once per run).
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Union

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

#: Upper bucket bounds in milliseconds (the last bucket is +inf).
DEFAULT_LATENCY_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)

_LabelKey = tuple[tuple[str, str], ...]
Metric = Union["Counter", "Gauge", "Histogram"]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_lock", "_value")
    kind = "counter"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict[str, object]:
        return {"value": self._value}


class Gauge:
    """A value that can go up and down (sizes, capacities, uptimes)."""

    __slots__ = ("_lock", "_value")
    kind = "gauge"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict[str, object]:
        return {"value": self._value}


class Histogram:
    """Fixed-bucket distribution (cumulative on export, as Prometheus).

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    ``+inf`` bucket is implicit.  Counts are stored per-bucket and
    cumulated at export time.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")
    kind = "histogram"

    def __init__(self, lock: threading.Lock, bounds: tuple[float, ...]) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self._lock = lock
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the bucket that crosses the target
        rank, as Prometheus' ``histogram_quantile`` does.  Values above
        the last finite bound clamp to it (the ``+inf`` bucket has no
        upper edge to interpolate toward); an empty histogram reports
        ``0.0``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        running = 0.0
        lower = 0.0
        for bound, count in zip(self._bounds, counts):
            if running + count >= rank and count:
                fraction = (rank - running) / count
                return lower + (bound - lower) * fraction
            running += count
            lower = bound
        return self._bounds[-1] if self._bounds else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out

    def to_dict(self) -> dict[str, object]:
        buckets = {
            ("le_inf" if bound == float("inf") else f"le_{bound:g}"): cumulative
            for bound, cumulative in self.cumulative_buckets()
        }
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named, labelled metric series with JSON and Prometheus exporters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict[tuple[str, _LabelKey], Metric] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------------
    # metric accessors (create on first use, idempotent afterwards)
    # ------------------------------------------------------------------
    def counter(self, name: str, *, help: str = "", **labels: str) -> Counter:
        metric = self._get_or_create(name, "counter", help, labels, ())
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, *, help: str = "", **labels: str) -> Gauge:
        metric = self._get_or_create(name, "gauge", help, labels, ())
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        *,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        metric = self._get_or_create(name, "histogram", help, labels, tuple(buckets))
        assert isinstance(metric, Histogram)
        return metric

    def _get_or_create(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Mapping[str, str],
        buckets: tuple[float, ...],
    ) -> Metric:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._series.get(key)
            if metric is not None:
                if self._kinds[name] != kind:
                    raise ValueError(
                        f"metric {name!r} is a {self._kinds[name]}, not a {kind}"
                    )
                return metric
            if name in self._kinds and self._kinds[name] != kind:
                raise ValueError(
                    f"metric {name!r} is a {self._kinds[name]}, not a {kind}"
                )
            created: Metric
            if kind == "counter":
                created = Counter(self._lock)
            elif kind == "gauge":
                created = Gauge(self._lock)
            else:
                created = Histogram(self._lock, buckets)
            self._series[key] = created
            self._kinds[name] = kind
            if help or name not in self._help:
                self._help[name] = help
            return created

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._kinds)

    def series_for(self, name: str) -> list[tuple[dict[str, str], Metric]]:
        """Every ``(labels, metric)`` series registered under ``name``."""
        with self._lock:
            return [
                (dict(key[1]), metric)
                for key, metric in sorted(self._series.items())
                if key[0] == name
            ]

    def to_dict(self) -> dict[str, object]:
        """One JSON document over every metric (the ``/v1/metrics`` body)."""
        out: dict[str, object] = {}
        for name in self.names():
            series = [
                {"labels": labels, **metric.to_dict()}
                for labels, metric in self.series_for(name)
            ]
            out[name] = {
                "kind": self._kinds[name],
                "help": self._help.get(name, ""),
                "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in self.names():
            kind = self._kinds[name]
            help_text = self._help.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, metric in self.series_for(name):
                if isinstance(metric, Histogram):
                    for bound, cumulative in metric.cumulative_buckets():
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        lines.append(
                            f"{name}_bucket{_fmt_labels({**labels, 'le': le})} "
                            f"{cumulative}"
                        )
                    lines.append(f"{name}_sum{_fmt_labels(labels)} {metric.sum:g}")
                    lines.append(f"{name}_count{_fmt_labels(labels)} {metric.count}")
                else:
                    lines.append(f"{name}{_fmt_labels(labels)} {metric.value:g}")
        return "\n".join(lines) + "\n"


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry batch and service paths share."""
    return _DEFAULT_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous
