"""Profile rendering for traced pipeline runs (``repro mine --profile``).

Turns the span tree a traced :func:`repro.mining.detect` run produced
into an inspector-readable report: the stage tree with wall times, and
a ranking of the slowest subTPIINs (the divide-and-conquer units whose
pattern bases dominate mining time at Table-1 densities).
"""

from __future__ import annotations

from repro.obs.tracing import SpanRecord

__all__ = ["SUBTPIIN_SPAN", "render_profile", "slowest_subtpiins"]

#: The span name every engine gives its per-subTPIIN unit of work.
SUBTPIIN_SPAN = "subtpiin"


def slowest_subtpiins(
    root: SpanRecord, *, top: int = 10
) -> list[SpanRecord]:
    """The ``top`` slowest per-subTPIIN spans under ``root``, slowest first."""
    spans = root.find(SUBTPIIN_SPAN)
    spans.sort(key=lambda span: -span.duration)
    return spans[:top]


def render_profile(root: SpanRecord, *, top: int = 10) -> str:
    """The ``--profile`` report: stage tree + top-N slowest subTPIINs."""
    lines = [
        "stage tree (wall milliseconds)",
        root.render(),
    ]
    ranked = slowest_subtpiins(root, top=top)
    if ranked:
        lines.append("")
        lines.append(f"top {len(ranked)} slowest subTPIINs")
        header = f"{'rank':>4}  {'ms':>10}  {'index':>6}  {'nodes':>7}  {'trails':>8}  {'groups':>7}"
        lines.append(header)
        lines.append("-" * len(header))
        for rank, span in enumerate(ranked, start=1):
            attrs = span.attributes
            lines.append(
                f"{rank:>4}  {span.duration * 1e3:>10.3f}  "
                f"{attrs.get('index', '-'):>6}  {attrs.get('nodes', '-'):>7}  "
                f"{attrs.get('trails', '-'):>8}  {attrs.get('groups', '-'):>7}"
            )
    total = root.duration
    covered = sum(child.duration for child in root.children)
    lines.append("")
    lines.append(
        f"total {total * 1e3:.3f} ms; staged {covered * 1e3:.3f} ms "
        f"({100.0 * covered / total if total else 0.0:.1f}% of wall)"
    )
    return "\n".join(lines)
