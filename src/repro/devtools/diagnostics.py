"""Structured lint findings.

A :class:`Diagnostic` pins one rule violation to a ``file:line:col``
location and carries a human message plus a machine-actionable fix
hint, so both renderers (human and JSON) work from the same record.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    hint: str = ""

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        """``path:line:col: RXXX message (fix: hint)`` single-line form."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "message": self.message,
            "hint": self.hint,
        }
