"""Structured lint findings.

A :class:`Diagnostic` pins one rule violation to a ``file:line:col``
location and carries a human message plus a machine-actionable fix
hint, so both renderers (human and JSON) work from the same record.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Diagnostic", "node_suppress_lines"]


def node_suppress_lines(node: ast.AST | None) -> tuple[int, ...]:
    """Extra lines on which a ``# reprolint: disable`` silences ``node``.

    A diagnostic is suppressible on its anchor line; for multi-line
    statements and expressions the whole physical span counts (so the
    comment can trail the closing paren), and for decorated definitions
    the decorator lines and the ``def``/``class`` line all count —
    wherever the anchor happens to sit, the comment lands naturally.
    Function/class *bodies* never count: a stray disable inside a long
    def must not silence a diagnostic on its signature.
    """
    if node is None:
        return ()
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        lines = {node.lineno}
        for dec in node.decorator_list:
            lines.update(range(dec.lineno, (dec.end_lineno or dec.lineno) + 1))
        if node.body:
            # The signature may wrap; every line up to the first body
            # statement belongs to it.
            lines.update(range(node.lineno, node.body[0].lineno))
        return tuple(sorted(lines))
    lineno = getattr(node, "lineno", None)
    if lineno is None:
        return ()
    end = getattr(node, "end_lineno", None) or lineno
    return tuple(range(lineno, end + 1))


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    hint: str = ""
    #: Additional lines where a per-line suppression comment is honored
    #: (the anchored node's physical span); ``line`` always counts.
    suppress_lines: tuple[int, ...] = field(default=(), compare=False)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        """``path:line:col: RXXX message (fix: hint)`` single-line form."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "message": self.message,
            "hint": self.hint,
        }
