"""``repro-lint`` console script.

Exit codes: 0 clean, 1 findings, 2 usage error (argparse).  The human
renderer is the default; ``--format json`` emits the stable machine
form used by CI annotations and editor integrations, ``--format sarif``
the SARIF 2.1.0 log GitHub code scanning ingests.  By default both
analysis phases run (per-file rules plus the whole-program passes);
``--no-project`` restricts to the historical per-file pass.

A checked-in baseline (``--baseline``, default from
``[tool.reprolint]``) absorbs known findings so only *new* debt fails;
``--update-baseline`` rewrites it from the current findings.
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence
from dataclasses import replace
from pathlib import Path

from repro.devtools.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.config import discover_config
from repro.devtools.render import render_human, render_json
from repro.devtools.rulebase import ProjectRule, Rule, all_project_rules, all_rules
from repro.devtools.sarif import render_sarif
from repro.devtools.walker import lint_paths, lint_project

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "reprolint: project-specific static analysis for the TPIIN "
            "pipeline (per-file rules R001-R011 plus whole-program "
            "passes R012-R015)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="per-file rules only; skip the whole-program passes",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file absorbing known findings "
        "(default: [tool.reprolint] baseline next to pyproject.toml)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _select_rules(
    spec: str | None, parser: argparse.ArgumentParser
) -> tuple[tuple[Rule, ...], tuple[ProjectRule, ...]]:
    rules = all_rules()
    project_rules = all_project_rules()
    if spec is None:
        return rules, project_rules
    wanted = {part.strip().upper() for part in spec.split(",") if part.strip()}
    if not wanted:
        parser.error("--select given without any rule ids")
    known = {rule.rule_id for rule in rules} | {rule.rule_id for rule in project_rules}
    unknown = sorted(wanted - known)
    if unknown:
        parser.error(f"unknown rule id(s): {', '.join(unknown)}")
    return (
        tuple(rule for rule in rules if rule.rule_id in wanted),
        tuple(rule for rule in project_rules if rule.rule_id in wanted),
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    fmt = "json" if args.json else args.format

    if args.list_rules:
        for rule in (*all_rules(), *all_project_rules()):
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    rules, project_rules = _select_rules(args.select, parser)
    config = discover_config(Path(args.paths[0] if args.paths else "."))
    try:
        if args.no_project:
            report = lint_paths(args.paths, rules)
        else:
            report = lint_project(
                args.paths, rules, project_rules=project_rules, config=config
            )
    except OSError as exc:
        parser.error(str(exc))

    baseline_path = (
        Path(args.baseline) if args.baseline else config.default_baseline()
    )
    if args.update_baseline:
        write_baseline(report.diagnostics, baseline_path)
        print(
            f"reprolint: wrote baseline with {len(report.diagnostics)} "
            f"finding(s) to {baseline_path}"
        )
        return 0
    if not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            parser.error(str(exc))
        if baseline:
            kept, absorbed = apply_baseline(report.diagnostics, baseline)
            report = replace(report, diagnostics=kept, baselined=absorbed)

    if fmt == "sarif":
        print(render_sarif(report))
    elif fmt == "json":
        print(render_json(report))
    else:
        print(render_human(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
