"""``repro-lint`` console script.

Exit codes: 0 clean, 1 findings, 2 usage error (argparse).  The human
renderer is the default; ``--json`` emits the stable machine form used
by CI annotations and editor integrations.
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence

from repro.devtools.render import render_human, render_json
from repro.devtools.rulebase import Rule, all_rules
from repro.devtools.walker import lint_paths

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "reprolint: project-specific static analysis for the TPIIN "
            "pipeline (paper-invariant rules R001-R009)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the JSON report instead of text"
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _select_rules(spec: str | None, parser: argparse.ArgumentParser) -> tuple[Rule, ...]:
    rules = all_rules()
    if spec is None:
        return rules
    wanted = {part.strip().upper() for part in spec.split(",") if part.strip()}
    if not wanted:
        parser.error("--select given without any rule ids")
    known = {rule.rule_id for rule in rules}
    unknown = sorted(wanted - known)
    if unknown:
        parser.error(f"unknown rule id(s): {', '.join(unknown)}")
    return tuple(rule for rule in rules if rule.rule_id in wanted)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    rules = _select_rules(args.select, parser)
    try:
        report = lint_paths(args.paths, rules)
    except OSError as exc:
        parser.error(str(exc))
    print(render_json(report) if args.json else render_human(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
