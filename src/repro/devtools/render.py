"""Human and JSON renderers for lint reports."""

from __future__ import annotations

import json

from repro.devtools.walker import LintReport

__all__ = ["render_human", "render_json"]


def render_human(report: LintReport) -> str:
    """One diagnostic per line plus a summary footer."""
    lines = [diag.render() for diag in report.diagnostics]
    if report.ok:
        extras = []
        if report.suppressed:
            extras.append(f"{report.suppressed} suppressed")
        if report.baselined:
            extras.append(f"{report.baselined} baselined")
        lines.append(
            f"reprolint: {report.files_checked} file(s) clean"
            + (f" ({', '.join(extras)})" if extras else "")
        )
    else:
        by_rule = ", ".join(
            f"{rule_id} x{count}" for rule_id, count in report.by_rule().items()
        )
        lines.append(
            f"reprolint: {len(report.diagnostics)} finding(s) in "
            f"{report.files_checked} file(s): {by_rule}"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable machine-readable form (sorted keys, 2-space indent)."""
    payload = {
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "count": len(report.diagnostics),
        "by_rule": report.by_rule(),
        "diagnostics": [diag.to_dict() for diag in report.diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
