"""Rule protocol, per-file analysis context and the rule registry.

A rule is a stateless object with a ``rule_id``, a one-line ``title``,
and a ``check`` method that walks one file's AST and yields
:class:`~repro.devtools.diagnostics.Diagnostic` records.  Rules are
registered at import time via :func:`register` so the walker and the
CLI discover them without hand-maintained lists.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.devtools.diagnostics import Diagnostic, node_suppress_lines

__all__ = [
    "FileContext",
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rules",
    "get_rule",
    "register",
    "register_project",
]

#: Directory components that mark test/bench/example trees; file rules
#: with library-only invariants exempt themselves via ``in_test_tree``.
_TEST_TREE_MARKERS = frozenset({"tests", "benchmarks", "examples"})


@dataclass(frozen=True, slots=True)
class FileContext:
    """Everything a rule may inspect about one source file.

    ``display_path`` is the path as reported in diagnostics (normally
    the path the walker was invoked with, POSIX-style); rules scope
    themselves by its components, so fixture trees can opt into
    package-scoped rules by mirroring the package layout (for example
    a fixture under ``fixtures/R002/mining/bad.py`` is linted as if it
    lived in :mod:`repro.mining`).
    """

    display_path: str
    text: str
    tree: ast.Module
    _parts: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_parts", PurePosixPath(self.display_path).parts)

    @property
    def filename(self) -> str:
        return self._parts[-1] if self._parts else self.display_path

    def in_package(self, *names: str) -> bool:
        """True when any *directory* component matches one of ``names``."""
        return any(part in names for part in self._parts[:-1])

    def path_endswith(self, *suffixes: str) -> bool:
        """True when the display path ends with one of the ``/``-suffixes."""
        path = PurePosixPath(self.display_path).as_posix()
        return any(path == s or path.endswith("/" + s) for s in suffixes)

    @property
    def in_test_tree(self) -> bool:
        """True for files under ``tests``/``benchmarks``/``examples``.

        Library-only invariants (dependency bans, ``__all__`` hygiene,
        print discipline, ...) exempt these trees.  Fixture snippets
        under a ``fixtures`` directory mirror *library* layouts and are
        deliberately not exempt, so rule tests exercise the real scope.
        """
        parts = self._parts[:-1]
        if "fixtures" in parts:
            return False
        return any(part in _TEST_TREE_MARKERS for part in parts)

    def diagnostic(
        self,
        node: ast.AST | None,
        rule_id: str,
        message: str,
        hint: str = "",
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node`` (or line 1 for the file)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Diagnostic(
            path=self.display_path,
            line=line,
            col=col + 1,
            rule_id=rule_id,
            message=message,
            hint=hint,
            suppress_lines=node_suppress_lines(node),
        )


@runtime_checkable
class Rule(Protocol):
    """The reprolint rule interface."""

    rule_id: str
    title: str

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield every violation of this rule found in ``ctx``."""
        ...


if TYPE_CHECKING:
    from repro.devtools.config import LintConfig
    from repro.devtools.project import ProjectIndex


@runtime_checkable
class ProjectRule(Protocol):
    """The phase-2 (whole-program) rule interface.

    A project rule sees the complete :class:`ProjectIndex` plus the
    resolved :class:`LintConfig` and yields diagnostics anchored in the
    *subject* modules (the files the walker was asked to lint).
    """

    rule_id: str
    title: str

    def check_project(
        self, index: "ProjectIndex", config: "LintConfig"
    ) -> Iterator[Diagnostic]:
        """Yield every violation of this rule found in the project."""
        ...


_REGISTRY: dict[str, Rule] = {}
_PROJECT_REGISTRY: dict[str, ProjectRule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and index a rule by its ``rule_id``."""
    rule = cls()
    if not isinstance(rule, Rule):
        raise TypeError(f"{cls.__name__} does not implement the Rule protocol")
    if rule.rule_id in _REGISTRY or rule.rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def register_project(cls: type) -> type:
    """Class decorator: instantiate and index a phase-2 project rule."""
    rule = cls()
    if not isinstance(rule, ProjectRule):
        raise TypeError(f"{cls.__name__} does not implement the ProjectRule protocol")
    if rule.rule_id in _PROJECT_REGISTRY or rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _PROJECT_REGISTRY[rule.rule_id] = rule
    return cls


def _load_catalogue() -> None:
    # Importing the rules modules runs their @register decorators; lazy
    # so rulebase <-> rules stays an acyclic import graph at module level.
    import repro.devtools.project_rules  # noqa: F401  # reprolint: disable=R010
    import repro.devtools.rules  # noqa: F401  # reprolint: disable=R010


def all_rules() -> tuple[Rule, ...]:
    """Every registered per-file rule, ordered by rule id."""
    _load_catalogue()
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def all_project_rules() -> tuple[ProjectRule, ...]:
    """Every registered whole-program rule, ordered by rule id."""
    _load_catalogue()
    return tuple(_PROJECT_REGISTRY[rule_id] for rule_id in sorted(_PROJECT_REGISTRY))


def get_rule(rule_id: str) -> Rule | ProjectRule:
    """Look one rule up by id (raises ``KeyError`` for unknown ids)."""
    _load_catalogue()
    if rule_id in _REGISTRY:
        return _REGISTRY[rule_id]
    return _PROJECT_REGISTRY[rule_id]
