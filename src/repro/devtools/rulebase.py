"""Rule protocol, per-file analysis context and the rule registry.

A rule is a stateless object with a ``rule_id``, a one-line ``title``,
and a ``check`` method that walks one file's AST and yields
:class:`~repro.devtools.diagnostics.Diagnostic` records.  Rules are
registered at import time via :func:`register` so the walker and the
CLI discover them without hand-maintained lists.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Protocol, runtime_checkable

from repro.devtools.diagnostics import Diagnostic

__all__ = [
    "FileContext",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
]


@dataclass(frozen=True, slots=True)
class FileContext:
    """Everything a rule may inspect about one source file.

    ``display_path`` is the path as reported in diagnostics (normally
    the path the walker was invoked with, POSIX-style); rules scope
    themselves by its components, so fixture trees can opt into
    package-scoped rules by mirroring the package layout (for example
    a fixture under ``fixtures/R002/mining/bad.py`` is linted as if it
    lived in :mod:`repro.mining`).
    """

    display_path: str
    text: str
    tree: ast.Module
    _parts: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_parts", PurePosixPath(self.display_path).parts)

    @property
    def filename(self) -> str:
        return self._parts[-1] if self._parts else self.display_path

    def in_package(self, *names: str) -> bool:
        """True when any *directory* component matches one of ``names``."""
        return any(part in names for part in self._parts[:-1])

    def path_endswith(self, *suffixes: str) -> bool:
        """True when the display path ends with one of the ``/``-suffixes."""
        path = PurePosixPath(self.display_path).as_posix()
        return any(path == s or path.endswith("/" + s) for s in suffixes)

    def diagnostic(
        self,
        node: ast.AST | None,
        rule_id: str,
        message: str,
        hint: str = "",
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node`` (or line 1 for the file)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Diagnostic(
            path=self.display_path,
            line=line,
            col=col + 1,
            rule_id=rule_id,
            message=message,
            hint=hint,
        )


@runtime_checkable
class Rule(Protocol):
    """The reprolint rule interface."""

    rule_id: str
    title: str

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield every violation of this rule found in ``ctx``."""
        ...


_REGISTRY: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and index a rule by its ``rule_id``."""
    rule = cls()
    if not isinstance(rule, Rule):
        raise TypeError(f"{cls.__name__} does not implement the Rule protocol")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def _load_catalogue() -> None:
    # Importing the rules module runs its @register decorators; lazy so
    # rulebase <-> rules stays an acyclic import graph at module level.
    import repro.devtools.rules  # noqa: F401  # reprolint: disable=R010


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by rule id."""
    _load_catalogue()
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id (raises ``KeyError`` for unknown ids)."""
    _load_catalogue()
    return _REGISTRY[rule_id]
