"""Whole-program analyzer configuration (``[tool.reprolint]``).

The project passes need facts that live outside any one source file:
the declared layer architecture (R012), which functions are marked hot
(R015), which calls count as blocking I/O under a lock (R014), and
which extra trees should be indexed as *reference* sources so exports
used only by tests are not declared dead (R013).  All of it is read
from ``pyproject.toml`` so the architecture is declared next to the
packaging metadata, with the repository's own values embedded here as
the fallback for interpreters without :mod:`tomllib`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["LintConfig", "discover_config", "load_config"]

#: The repository's own declared architecture, duplicated from
#: ``pyproject.toml`` for pre-3.11 interpreters (no ``tomllib``); a
#: regression test holds the two in sync.  Lower layers first; a module
#: may import from its own layer and below, never from above.
_DEFAULT_LAYERS: tuple[tuple[str, ...], ...] = (
    ("errors",),
    ("graph", "obs"),
    ("model",),
    ("fusion",),
    ("mining",),
    ("baseline", "datagen", "weights"),
    ("io", "ite"),
    ("detectors",),
    ("analysis",),
    ("service",),
    ("repro", "cli", "__main__", "devtools"),
)

_DEFAULT_HOT_FUNCTIONS: tuple[str, ...] = (
    "repro.graph.csr::_pack",
    "repro.graph.csr::CSRGraph.freeze_parts",
    "repro.mining.csr_engine::_enumerate",
    "repro.mining.csr_engine::mine_frozen",
    "repro.mining.csr_engine::mine_frontier_compact",
    "repro.mining.csr_engine::mine_stack_compact",
    "repro.mining.compact::_circle_flags",
)

_DEFAULT_BLOCKING_CALLS: tuple[str, ...] = (
    "self._wal.append",
    "self._wal.sync",
    "self._wal.truncate",
    "self._wal.close",
    "write_snapshot",
    "read_snapshot",
    "os.fsync",
    "self.wfile.write",
)

_DEFAULT_REFERENCE_ROOTS: tuple[str, ...] = (
    "src",
    "tests",
    "benchmarks",
    "examples",
)

_DEFAULT_ENTRY_POINTS: tuple[str, ...] = (
    "repro.cli:main",
    "repro.devtools.cli:main",
)


@dataclass(frozen=True, slots=True)
class LintConfig:
    """Resolved project-analysis configuration.

    ``root`` anchors the relative ``reference_roots`` and the default
    baseline path; everything else parameterizes one project rule.
    """

    root: Path
    layers: tuple[tuple[str, ...], ...] = _DEFAULT_LAYERS
    hot_functions: tuple[str, ...] = _DEFAULT_HOT_FUNCTIONS
    blocking_calls: tuple[str, ...] = _DEFAULT_BLOCKING_CALLS
    reference_roots: tuple[str, ...] = _DEFAULT_REFERENCE_ROOTS
    entry_points: tuple[str, ...] = _DEFAULT_ENTRY_POINTS
    baseline_path: str = "lint-baseline.json"
    _layer_of: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        table: dict[str, int] = {}
        for level, names in enumerate(self.layers):
            for name in names:
                table[name] = level
        object.__setattr__(self, "_layer_of", table)

    def layer_of(self, package: str) -> int | None:
        """Layer index of one top-level package key (``None`` = undeclared)."""
        return self._layer_of.get(package)

    def default_baseline(self) -> Path:
        return self.root / self.baseline_path


def _str_tuple(raw: object, what: str) -> tuple[str, ...]:
    if not isinstance(raw, list) or not all(isinstance(x, str) for x in raw):
        raise ValueError(f"[tool.reprolint] {what} must be a list of strings")
    return tuple(raw)


def load_config(pyproject: Path) -> LintConfig:
    """Parse ``[tool.reprolint]`` from one ``pyproject.toml``.

    Missing tables and keys fall back to the embedded defaults, so a
    bare pyproject yields the repository's own architecture.  On
    interpreters without :mod:`tomllib` the defaults are used as-is.
    """
    root = pyproject.resolve().parent
    try:
        import tomllib
    except ImportError:  # Python 3.10: defaults mirror pyproject.toml
        return LintConfig(root=root)
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError):
        return LintConfig(root=root)

    tool = data.get("tool", {}).get("reprolint", {})
    kwargs: dict[str, object] = {}

    layers_raw = tool.get("layers", {}).get("order")
    if layers_raw is not None:
        if not isinstance(layers_raw, list):
            raise ValueError("[tool.reprolint.layers] order must be a list")
        kwargs["layers"] = tuple(
            _str_tuple(layer, "layers.order entries") for layer in layers_raw
        )
    hot_raw = tool.get("hot", {}).get("functions")
    if hot_raw is not None:
        kwargs["hot_functions"] = _str_tuple(hot_raw, "hot.functions")
    blocking_raw = tool.get("lock", {}).get("blocking-calls")
    if blocking_raw is not None:
        kwargs["blocking_calls"] = _str_tuple(blocking_raw, "lock.blocking-calls")
    roots_raw = tool.get("reference-roots")
    if roots_raw is not None:
        kwargs["reference_roots"] = _str_tuple(roots_raw, "reference-roots")
    baseline_raw = tool.get("baseline")
    if baseline_raw is not None:
        if not isinstance(baseline_raw, str):
            raise ValueError("[tool.reprolint] baseline must be a string path")
        kwargs["baseline_path"] = baseline_raw

    scripts = data.get("project", {}).get("scripts", {})
    if scripts:
        kwargs["entry_points"] = tuple(sorted(str(v) for v in scripts.values()))

    return LintConfig(root=root, **kwargs)  # type: ignore[arg-type]


def discover_config(start: Path) -> LintConfig:
    """Locate the nearest ``pyproject.toml`` at or above ``start``.

    Falls back to a default config rooted at ``start`` when no
    pyproject exists on the ancestor chain (e.g. fixture trees).
    """
    base = start.resolve()
    if base.is_file():
        base = base.parent
    for candidate in (base, *base.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return load_config(pyproject)
    return LintConfig(root=base)
