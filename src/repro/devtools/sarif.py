"""SARIF 2.1.0 renderer for lint reports.

Emits the minimal, schema-valid subset GitHub code scanning consumes:
one run, the full rule catalogue under ``tool.driver.rules`` (with
``helpUri``-free plain-text descriptions), and one ``result`` per
diagnostic with a ``physicalLocation``.  Output is deterministic
(sorted keys, stable rule ordering) so the SARIF file diffs cleanly in
CI artifacts.
"""

from __future__ import annotations

import json

from repro.devtools.rulebase import all_project_rules, all_rules
from repro.devtools.walker import PARSE_ERROR_ID, LintReport

__all__ = ["render_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_TOOL_NAME = "reprolint"


def _rule_catalogue() -> list[dict[str, object]]:
    entries: list[tuple[str, str]] = [
        (PARSE_ERROR_ID, "file must parse (syntax errors are findings)")
    ]
    for rule in (*all_rules(), *all_project_rules()):
        entries.append((rule.rule_id, rule.title))
    entries.sort()
    return [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": title},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, title in entries
    ]


def render_sarif(report: LintReport) -> str:
    """Serialize one report as a SARIF 2.1.0 log (single run)."""
    rules = _rule_catalogue()
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}
    results: list[dict[str, object]] = []
    for diag in report.diagnostics:
        message = diag.message
        if diag.hint:
            message += f" (fix: {diag.hint})"
        result: dict[str, object] = {
            "ruleId": diag.rule_id,
            "level": "error",
            "message": {"text": message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diag.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": diag.line,
                            "startColumn": diag.col,
                        },
                    }
                }
            ],
        }
        index = rule_index.get(diag.rule_id)
        if index is not None:
            result["ruleIndex"] = index
        results.append(result)
    log = {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": "https://example.invalid/reprolint",
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
