"""File/package walker: collect sources, run rules, apply suppressions.

Suppression is per line and per rule: a trailing
``# reprolint: disable=R001`` (comma-separate several ids, or use
``all``) silences matching diagnostics anchored on that line — or
anywhere on the anchored statement's physical span, so the comment can
trail the closing paren of a multi-line call or sit on a decorator
line.  Files that fail to parse yield a single ``R000`` parse-error
diagnostic so a broken tree can never slip through as "clean".

Two entry points:

* :func:`lint_paths` — the historical per-file pass (rules R001-R011).
* :func:`lint_project` — the two-phase whole-program analysis: phase 1
  parses the linted files *plus* the configured reference roots into a
  :class:`~repro.devtools.project.ProjectIndex`; phase 2 runs the
  per-file rules on the linted files and the project rules (R012-R015)
  over the index.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.devtools.config import LintConfig, discover_config
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.project import build_index
from repro.devtools.rulebase import (
    FileContext,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
)

__all__ = [
    "PARSE_ERROR_ID",
    "LintReport",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "suppressed_rules",
]

PARSE_ERROR_ID = "R000"

_SUPPRESSION = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9,\s]+)")


@dataclass(frozen=True, slots=True)
class LintReport:
    """All diagnostics of one run plus the file census."""

    diagnostics: tuple[Diagnostic, ...]
    files_checked: int
    suppressed: int = 0
    #: Findings absorbed by the checked-in baseline (still debt, not new).
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.rule_id] = counts.get(diag.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted, de-duplicated file list.

    Directory walks skip ``fixtures`` subtrees (deliberately-bad rule
    fixtures must not fail a tree-wide lint); pass a path *inside* a
    fixtures directory explicitly to lint it anyway.
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "fixtures" not in candidate.relative_to(path).parts[:-1]
            )
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def suppressed_rules(text: str) -> dict[int, frozenset[str]]:
    """Line -> rule ids silenced on that line (``all`` matches any rule)."""
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESSION.search(line)
        if match is not None:
            ids = frozenset(
                part.strip().upper() for part in match.group(1).split(",") if part.strip()
            )
            if ids:
                table[lineno] = ids
    return table


def _is_silenced(diag: Diagnostic, table: dict[int, frozenset[str]]) -> bool:
    """A disable comment anywhere on the diagnostic's span silences it."""
    for lineno in (diag.line, *diag.suppress_lines):
        silenced = table.get(lineno)
        if silenced is not None and (diag.rule_id in silenced or "ALL" in silenced):
            return True
    return False


@dataclass(frozen=True, slots=True)
class _FileResult:
    diagnostics: tuple[Diagnostic, ...]
    suppressed: int
    tree: ast.Module | None = None


def _lint_source(
    display_path: str, text: str, rules: Sequence[Rule]
) -> _FileResult:
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        diag = Diagnostic(
            path=display_path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) or 1,
            rule_id=PARSE_ERROR_ID,
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; unparseable files are never clean",
        )
        return _FileResult((diag,), 0)

    ctx = FileContext(display_path=display_path, text=text, tree=tree)
    table = suppressed_rules(text)
    kept: list[Diagnostic] = []
    dropped = 0
    for rule in rules:
        for diag in rule.check(ctx):
            if _is_silenced(diag, table):
                dropped += 1
            else:
                kept.append(diag)
    kept.sort(key=Diagnostic.sort_key)
    return _FileResult(tuple(kept), dropped, tree)


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Diagnostic]:
    """Lint one file and return its (suppression-filtered) diagnostics."""
    chosen = all_rules() if rules is None else tuple(rules)
    text = Path(path).read_text(encoding="utf-8")
    display = Path(path).as_posix()
    return list(_lint_source(display, text, chosen).diagnostics)


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> LintReport:
    """Lint files and directory trees; directories are walked recursively."""
    chosen = all_rules() if rules is None else tuple(rules)
    diagnostics: list[Diagnostic] = []
    files = 0
    suppressed = 0
    for path in iter_python_files(paths):
        files += 1
        text = path.read_text(encoding="utf-8")
        result = _lint_source(path.as_posix(), text, chosen)
        diagnostics.extend(result.diagnostics)
        suppressed += result.suppressed
    diagnostics.sort(key=Diagnostic.sort_key)
    return LintReport(
        diagnostics=tuple(diagnostics), files_checked=files, suppressed=suppressed
    )


def _display_for(path: Path) -> str:
    """Stable display path: cwd-relative when possible, as given otherwise."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_project(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    project_rules: Sequence[ProjectRule] | None = None,
    config: LintConfig | None = None,
) -> LintReport:
    """Two-phase whole-program lint over ``paths``.

    Phase 1 parses every linted file plus every file under the
    configured ``reference-roots`` (so cross-module references from
    tests and benchmarks count) into a project index.  Phase 2 runs the
    per-file rules over the linted files and the project rules over the
    index; project diagnostics honour the same per-line suppression
    comments.  Reference-only files contribute references but never
    diagnostics, and a reference file that fails to parse is skipped
    (its own lint run will report R000).
    """
    chosen = all_rules() if rules is None else tuple(rules)
    chosen_project = all_project_rules() if project_rules is None else tuple(project_rules)

    subject_files = list(iter_python_files(paths))
    if config is None:
        anchor = subject_files[0] if subject_files else Path.cwd()
        config = discover_config(Path(anchor))

    diagnostics: list[Diagnostic] = []
    suppressed = 0
    indexed: list[tuple[str, str, ast.Module]] = []
    tables: dict[str, dict[int, frozenset[str]]] = {}
    subject_displays: list[str] = []
    seen_resolved: set[Path] = set()

    for path in subject_files:
        seen_resolved.add(path.resolve())
        display = path.as_posix()
        subject_displays.append(display)
        text = path.read_text(encoding="utf-8")
        result = _lint_source(display, text, chosen)
        diagnostics.extend(result.diagnostics)
        suppressed += result.suppressed
        if result.tree is not None:
            indexed.append((display, text, result.tree))
            tables[display] = suppressed_rules(text)

    for root_name in config.reference_roots:
        root = config.root / root_name
        if not root.is_dir():
            continue
        for path in iter_python_files([root]):
            resolved = path.resolve()
            if resolved in seen_resolved:
                continue
            seen_resolved.add(resolved)
            try:
                text = path.read_text(encoding="utf-8")
                tree = ast.parse(text)
            except (OSError, SyntaxError):
                continue
            indexed.append((_display_for(path), text, tree))

    index = build_index(indexed, subject_displays)
    for rule in chosen_project:
        for diag in rule.check_project(index, config):
            table = tables.get(diag.path)
            if table is not None and _is_silenced(diag, table):
                suppressed += 1
            else:
                diagnostics.append(diag)

    diagnostics.sort(key=Diagnostic.sort_key)
    return LintReport(
        diagnostics=tuple(diagnostics),
        files_checked=len(subject_files),
        suppressed=suppressed,
    )
