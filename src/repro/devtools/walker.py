"""File/package walker: collect sources, run rules, apply suppressions.

Suppression is per line and per rule: a trailing
``# reprolint: disable=R001`` (comma-separate several ids, or use
``all``) silences matching diagnostics anchored on that line.  Files
that fail to parse yield a single ``R000`` parse-error diagnostic so a
broken tree can never slip through as "clean".
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.rulebase import FileContext, Rule, all_rules

__all__ = [
    "PARSE_ERROR_ID",
    "LintReport",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "suppressed_rules",
]

PARSE_ERROR_ID = "R000"

_SUPPRESSION = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9,\s]+)")


@dataclass(frozen=True, slots=True)
class LintReport:
    """All diagnostics of one run plus the file census."""

    diagnostics: tuple[Diagnostic, ...]
    files_checked: int
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.rule_id] = counts.get(diag.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def suppressed_rules(text: str) -> dict[int, frozenset[str]]:
    """Line -> rule ids silenced on that line (``all`` matches any rule)."""
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESSION.search(line)
        if match is not None:
            ids = frozenset(
                part.strip().upper() for part in match.group(1).split(",") if part.strip()
            )
            if ids:
                table[lineno] = ids
    return table


@dataclass(frozen=True, slots=True)
class _FileResult:
    diagnostics: tuple[Diagnostic, ...]
    suppressed: int


def _lint_source(
    display_path: str, text: str, rules: Sequence[Rule]
) -> _FileResult:
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        diag = Diagnostic(
            path=display_path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) or 1,
            rule_id=PARSE_ERROR_ID,
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; unparseable files are never clean",
        )
        return _FileResult((diag,), 0)

    ctx = FileContext(display_path=display_path, text=text, tree=tree)
    table = suppressed_rules(text)
    kept: list[Diagnostic] = []
    dropped = 0
    for rule in rules:
        for diag in rule.check(ctx):
            silenced = table.get(diag.line, frozenset())
            if diag.rule_id in silenced or "ALL" in silenced:
                dropped += 1
            else:
                kept.append(diag)
    kept.sort(key=Diagnostic.sort_key)
    return _FileResult(tuple(kept), dropped)


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Diagnostic]:
    """Lint one file and return its (suppression-filtered) diagnostics."""
    chosen = all_rules() if rules is None else tuple(rules)
    text = Path(path).read_text(encoding="utf-8")
    display = Path(path).as_posix()
    return list(_lint_source(display, text, chosen).diagnostics)


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> LintReport:
    """Lint files and directory trees; directories are walked recursively."""
    chosen = all_rules() if rules is None else tuple(rules)
    diagnostics: list[Diagnostic] = []
    files = 0
    suppressed = 0
    for path in iter_python_files(paths):
        files += 1
        text = path.read_text(encoding="utf-8")
        result = _lint_source(path.as_posix(), text, chosen)
        diagnostics.extend(result.diagnostics)
        suppressed += result.suppressed
    diagnostics.sort(key=Diagnostic.sort_key)
    return LintReport(
        diagnostics=tuple(diagnostics), files_checked=files, suppressed=suppressed
    )
