"""Phase 2 of the whole-program analyzer: rules R012-R015.

These passes need more than one file's AST: the declared layer
architecture and the import graph (R012), the cross-module reference
table (R013), a flow-sensitive walk of lock-guarded state (R014), and
the configured hot-function set (R015).  Each is a pure function over
the :class:`~repro.devtools.project.ProjectIndex` built in phase 1.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.project import ModuleInfo, ProjectIndex
from repro.devtools.rulebase import register_project

__all__ = [
    "DeadExportRule",
    "HotPathAllocationRule",
    "LayeringRule",
    "LockDisciplineRule",
]

#: Dunder exports (``__version__`` & co.) are interface metadata, read
#: by tooling rather than imports; R013 never calls them dead.
_METADATA_EXPORT_PREFIX = "__"


def _package_key(module: str) -> str:
    """Layer key of one dotted module: the component below ``repro``.

    ``repro.graph.csr`` -> ``graph``; top-level modules key by their own
    name (``repro.cli`` -> ``cli``); the package root itself keys as
    ``repro``.
    """
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else parts[0]


@register_project
class LayeringRule:
    """R012 - the import graph must respect the declared layers.

    The architecture lives in ``pyproject.toml`` as
    ``[tool.reprolint.layers] order``: an ordered list of layers, lowest
    first, each naming top-level ``repro`` packages.  A module may
    import from its own layer or below — ``graph``/``model`` import
    nothing above them, ``service`` is importable by nothing below it —
    and every package must be assigned, so a new subsystem cannot ship
    undeclared.  Only module-level imports are judged: function-body
    cycle breakers are R010's domain and must carry their own
    justification there.
    """

    rule_id = "R012"
    title = "module-level imports must respect the declared layer order"

    def check_project(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Diagnostic]:
        for info in index.subject_modules():
            if _package_key(info.module) == "tests" or not info.module.startswith(
                ("repro.", "repro")
            ):
                continue
            if info.module.split(".", 1)[0] != "repro":
                continue
            subject_key = _package_key(info.module)
            subject_layer = config.layer_of(subject_key)
            if subject_layer is None:
                yield info.diagnostic(
                    None,
                    self.rule_id,
                    f"package '{subject_key}' is not assigned to a layer in "
                    "[tool.reprolint.layers]",
                    "declare the new package's layer in pyproject.toml",
                )
                continue
            for edge in info.imports:
                if edge.in_function:
                    continue
                if edge.target.split(".", 1)[0] != "repro":
                    continue
                target_key = _package_key(edge.target)
                if target_key == subject_key:
                    continue
                target_layer = config.layer_of(target_key)
                anchor = _ImportAnchor(edge.line, edge.col - 1)
                if target_layer is None:
                    yield info.diagnostic(
                        anchor,
                        self.rule_id,
                        f"imports '{edge.target}' from package '{target_key}', "
                        "which is not assigned to a layer",
                        "declare the package's layer in pyproject.toml",
                    )
                elif target_layer > subject_layer:
                    yield info.diagnostic(
                        anchor,
                        self.rule_id,
                        f"layer violation: '{subject_key}' (layer {subject_layer}) "
                        f"imports '{edge.target}' from higher layer "
                        f"'{target_key}' (layer {target_layer})",
                        "depend downward only; invert the dependency or move "
                        "the shared piece into a lower layer",
                    )


class _ImportAnchor:
    """Minimal node-like carrier of an import statement's location."""

    __slots__ = ("lineno", "col_offset", "end_lineno")

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset
        self.end_lineno = lineno


@register_project
class DeadExportRule:
    """R013 - every export must have a cross-module reader.

    An ``__all__`` entry (or, in modules without ``__all__``, a public
    top-level definition) with zero references from any other indexed
    module is dead surface: it misleads readers about the real API and
    rots silently.  Reference sources include the test, benchmark and
    example trees (configured via ``reference-roots``), so "used only
    by tests" still counts as used.

    A *re-export* (an ``__all__`` entry bound by ``from submodule
    import name``, the package ``__init__`` aggregation idiom) inherits
    the liveness of the symbol it aggregates: it is dead only when
    nothing anywhere uses the symbol through *either* import path.
    Preferring the submodule path over the package path is a style
    choice, not drift.  The package root's re-exports and the
    console-script entry points are the API roots and are exempt.
    """

    rule_id = "R013"
    title = "no dead exports (public names nothing references)"

    def check_project(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Diagnostic]:
        entry_points = set()
        for spec in config.entry_points:
            module, _, attr = spec.partition(":")
            if attr:
                entry_points.add((module, attr))

        for info in index.subject_modules():
            if info.module.split(".", 1)[0] != "repro":
                continue
            if info.module == "repro" or info.module.endswith("__main__"):
                # The package root and entry modules are API roots.
                continue
            if info.has_all:
                candidates = info.exports
            else:
                candidates = {
                    n: d for n, d in info.definitions.items() if not n.startswith("_")
                }
            for name in sorted(candidates):
                if name.startswith(_METADATA_EXPORT_PREFIX):
                    continue
                if (info.module, name) in entry_points:
                    continue
                if index.references_to(info.module, name, excluding=info.module):
                    continue
                if name in info.signature_names:
                    # Structurally reachable: a return type, default value
                    # or base class of this module's own interface.
                    continue
                binding = info.import_bindings.get(name)
                if binding is not None:
                    home = index.modules.get(binding[0])
                    if index.references_to(
                        binding[0], binding[1], excluding=info.module
                    ) or (home is not None and binding[1] in home.signature_names):
                        # Re-export of a symbol that is alive via its home
                        # module; the aggregated path is a style choice.
                        continue
                sym = candidates[name]
                anchor = _ImportAnchor(sym.line, sym.col - 1)
                yield info.diagnostic(
                    anchor,
                    self.rule_id,
                    f"'{name}' is exported by '{info.module}' but nothing in "
                    "the project references it",
                    "delete the export (and its definition if now unused) or "
                    "rename it with a leading underscore",
                )


# ----------------------------------------------------------------------
# R014 - lock discipline
# ----------------------------------------------------------------------

#: Lock state lattice for the flow walk: no lock < read < write.
_NO_LOCK, _READ, _WRITE = 0, 1, 2


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _literal_str_set(node: ast.expr) -> frozenset[str] | None:
    """``frozenset({"a", "b"})`` / set / tuple / list literal of strings."""
    if isinstance(node, ast.Call) and _dotted(node.func) == "frozenset" and node.args:
        return _literal_str_set(node.args[0])
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        names = []
        for elt in node.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            names.append(elt.value)
        return frozenset(names)
    return None


@register_project
class LockDisciplineRule:
    """R014 - guarded service state obeys the read/write lock protocol.

    A class in :mod:`repro.service` opts in by declaring
    ``_lock_guarded = frozenset({"_attr", ...})`` in its body; the rule
    then walks every method flow-sensitively through
    ``with self._lock.read()/.write():`` blocks and flags:

    * reads of ``self.<guarded>`` while holding no lock;
    * writes of ``self.<guarded>`` without the write lock;
    * nested acquisition of the (non-reentrant) lock — a deadlock;
    * blocking I/O (configured ``blocking-calls``: WAL append/fsync,
      snapshot writes, socket sends) while holding either lock;
    * calls of ``*_locked`` helpers without the write lock held.

    Helpers named ``*_locked`` are analyzed assuming the write lock is
    already held (``*_rlocked``: the read lock); ``__init__`` and
    ``__post_init__`` run before the instance is shared and are exempt.
    """

    rule_id = "R014"
    title = "lock-guarded service state must be touched under the lock"

    _EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

    def check_project(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Diagnostic]:
        for info in index.subject_modules():
            if not info.module.startswith("repro.service"):
                continue
            for node in info.tree.body:
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(info, node, config)

    def _check_class(
        self, info: ModuleInfo, cls: ast.ClassDef, config: LintConfig
    ) -> Iterator[Diagnostic]:
        guarded: frozenset[str] | None = None
        lock_attr = "_lock"
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if target.id == "_lock_guarded":
                        guarded = _literal_str_set(stmt.value)
                    elif target.id == "_lock_attr" and isinstance(
                        stmt.value, ast.Constant
                    ):
                        lock_attr = str(stmt.value.value)
        if not guarded:
            return
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name in self._EXEMPT_METHODS:
                    continue
                walker = _LockFlowWalker(
                    info, self.rule_id, guarded, lock_attr, config.blocking_calls
                )
                if stmt.name.endswith("_rlocked"):
                    initial = _READ
                elif stmt.name.endswith("_locked"):
                    initial = _WRITE
                else:
                    initial = _NO_LOCK
                walker.visit_body(stmt.body, initial)
                yield from walker.diagnostics


class _LockFlowWalker:
    """Statement-level flow walk of one method under a lock-state."""

    def __init__(
        self,
        info: ModuleInfo,
        rule_id: str,
        guarded: frozenset[str],
        lock_attr: str,
        blocking_calls: tuple[str, ...],
    ) -> None:
        self._info = info
        self._rule_id = rule_id
        self._guarded = guarded
        self._lock_attr = lock_attr
        self._blocking = blocking_calls
        self.diagnostics: list[Diagnostic] = []

    # -- helpers -------------------------------------------------------
    def _diag(self, node: ast.AST, message: str, hint: str) -> None:
        self.diagnostics.append(
            self._info.diagnostic(node, self._rule_id, message, hint)
        )

    def _lock_call_state(self, expr: ast.expr) -> int | None:
        """``self._lock.read()`` -> _READ, ``.write()`` -> _WRITE."""
        if not isinstance(expr, ast.Call):
            return None
        dotted = _dotted(expr.func)
        if dotted == f"self.{self._lock_attr}.read":
            return _READ
        if dotted == f"self.{self._lock_attr}.write":
            return _WRITE
        return None

    # -- statement flow ------------------------------------------------
    def visit_body(self, body: list[ast.stmt], state: int) -> None:
        for stmt in body:
            self.visit_stmt(stmt, state)

    def visit_stmt(self, stmt: ast.stmt, state: int) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = state
            for item in stmt.items:
                acquired = self._lock_call_state(item.context_expr)
                if acquired is not None:
                    if state != _NO_LOCK:
                        self._diag(
                            item.context_expr,
                            "nested acquisition of the non-reentrant "
                            "ReadWriteLock deadlocks",
                            "restructure so the outer critical section already "
                            "holds the needed mode",
                        )
                    inner = max(inner, acquired)
                else:
                    self._check_expr(item.context_expr, state)
            self.visit_body(stmt.body, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions execute later, under unknown lock state;
            # out of scope for the flow walk.
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(stmt.iter, state)
            self._check_store(stmt.target, state)
            self.visit_body(stmt.body, state)
            self.visit_body(stmt.orelse, state)
            return
        if isinstance(stmt, ast.While):
            self._check_expr(stmt.test, state)
            self.visit_body(stmt.body, state)
            self.visit_body(stmt.orelse, state)
            return
        if isinstance(stmt, ast.If):
            self._check_expr(stmt.test, state)
            self.visit_body(stmt.body, state)
            self.visit_body(stmt.orelse, state)
            return
        if isinstance(stmt, ast.Try):
            self.visit_body(stmt.body, state)
            for handler in stmt.handlers:
                self.visit_body(handler.body, state)
            self.visit_body(stmt.orelse, state)
            self.visit_body(stmt.finalbody, state)
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            value = stmt.value
            if value is not None:
                self._check_expr(value, state)
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                self._check_store(target, state)
                if isinstance(stmt, ast.AugAssign):
                    # ``self.x += 1`` also reads; the store check already
                    # demands the stronger write mode.
                    pass
            return
        if isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                self._check_expr(stmt.value, state)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._check_store(target, state)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.expr):
                    self._check_expr_node(sub, state)
            return
        # Pass/Break/Continue/Import/Global/... carry no guarded access.

    # -- expression checks ---------------------------------------------
    def _check_store(self, target: ast.expr, state: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt, state)
            return
        if isinstance(target, ast.Subscript):
            # ``self.x[k] = v`` mutates the guarded container.
            self._check_store(target.value, state)
            self._check_expr(target.slice, state)
            return
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr in self._guarded
        ):
            if state < _WRITE:
                self._diag(
                    target,
                    f"mutation of lock-guarded 'self.{target.attr}' "
                    + (
                        "under the read lock"
                        if state == _READ
                        else "without holding the lock"
                    ),
                    "wrap the mutation in 'with self._lock.write():'",
                )
            return
        self._check_expr(target, state)

    def _check_expr(self, expr: ast.expr, state: int) -> None:
        for node in ast.walk(expr):
            self._check_expr_node(node, state)

    def _check_expr_node(self, node: ast.AST, state: int) -> None:
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self._guarded
                and state == _NO_LOCK
            ):
                self._diag(
                    node,
                    f"read of lock-guarded 'self.{node.attr}' without "
                    "holding the lock",
                    "wrap the read in 'with self._lock.read():'",
                )
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is None:
                return
            if self._lock_call_state(node) is not None:
                # Handled at the With statement; a bare call is misuse.
                return
            if state != _NO_LOCK and self._is_blocking(dotted):
                self._diag(
                    node,
                    f"blocking I/O '{dotted}' while holding the lock stalls "
                    "every reader and writer",
                    "move the I/O outside the critical section, or suppress "
                    "with a comment citing the ordering requirement",
                )
            if dotted.startswith("self.") and "." not in dotted[5:]:
                name = dotted[5:]
                if name.endswith("_rlocked") and state == _NO_LOCK:
                    self._diag(
                        node,
                        f"call of '{name}' (assumes the read lock) without "
                        "holding a lock",
                        "acquire self._lock.read() first",
                    )
                elif name.endswith("_locked") and not name.endswith("_rlocked"):
                    if state < _WRITE:
                        self._diag(
                            node,
                            f"call of '{name}' (assumes the write lock) "
                            + (
                                "under the read lock"
                                if state == _READ
                                else "without holding the lock"
                            ),
                            "acquire self._lock.write() first",
                        )

    def _is_blocking(self, dotted: str) -> bool:
        return any(
            dotted == pattern or dotted.endswith("." + pattern)
            for pattern in self._blocking
        )


# ----------------------------------------------------------------------
# R015 - hot-path allocation lint
# ----------------------------------------------------------------------


@register_project
class HotPathAllocationRule:
    """R015 - innermost loops of hot functions stay allocation-lean.

    Functions marked hot in ``[tool.reprolint.hot] functions`` (the CSR
    freeze and the fused DFS/matcher kernels) are the per-node/per-arc
    loops the benchmarks gate.  Inside their innermost ``for``/``while``
    loops the rule flags:

    * comprehensions and generator expressions (a new container or
      frame per iteration);
    * ``list()``/``dict()``/``set()``/``sorted()`` calls and non-empty
      list/set/dict display literals (mutable heap allocation per
      iteration; tuples are exempt — emission payloads are tuples);
    * repeated attribute lookups ``base.attr`` of a loop-invariant base
      (two or more occurrences) — hoist to a local before the loop.
    """

    rule_id = "R015"
    title = "no per-iteration allocation in marked hot loops"

    _ALLOC_CALLS = frozenset({"list", "dict", "set", "sorted"})

    def check_project(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Diagnostic]:
        targets: dict[str, set[str]] = {}
        for spec in config.hot_functions:
            module, _, qualname = spec.partition("::")
            if qualname:
                targets.setdefault(module, set()).add(qualname)
        for info in index.subject_modules():
            wanted = targets.get(info.module)
            if not wanted:
                continue
            for qualname, fn in _named_functions(info.tree):
                if qualname in wanted:
                    yield from self._check_function(info, fn)

    def _check_function(
        self, info: ModuleInfo, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        for loop in _innermost_loops(fn):
            yield from self._check_loop(info, loop)

    def _check_loop(
        self, info: ModuleInfo, loop: ast.For | ast.While
    ) -> Iterator[Diagnostic]:
        loop_bound = _names_bound_in(loop)
        attr_sites: dict[tuple[str, str], list[ast.Attribute]] = {}
        for node in _walk_loop_body(loop):
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                kind = type(node).__name__
                yield info.diagnostic(
                    node,
                    self.rule_id,
                    f"{kind} inside an innermost hot loop allocates per "
                    "iteration",
                    "build incrementally outside the loop or rewrite as an "
                    "explicit loop over a preallocated container",
                )
            elif isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name in self._ALLOC_CALLS:
                    yield info.diagnostic(
                        node,
                        self.rule_id,
                        f"'{name}()' inside an innermost hot loop allocates a "
                        "container per iteration",
                        "hoist the container out of the loop or reuse a "
                        "preallocated buffer",
                    )
            elif isinstance(node, (ast.List, ast.Set, ast.Dict)) and _display_elts(node):
                kind = type(node).__name__.lower()
                yield info.diagnostic(
                    node,
                    self.rule_id,
                    f"non-empty {kind} display inside an innermost hot loop "
                    "allocates per iteration",
                    "hoist the container or use a tuple",
                )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id not in loop_bound
                and node.value.id != "self"
            ):
                attr_sites.setdefault((node.value.id, node.attr), []).append(node)
        for (base, attr), sites in sorted(attr_sites.items()):
            if len(sites) < 2:
                continue
            first = min(sites, key=lambda n: (n.lineno, n.col_offset))
            yield info.diagnostic(
                first,
                self.rule_id,
                f"'{base}.{attr}' is looked up {len(sites)} times per "
                "iteration of an innermost hot loop",
                f"hoist it once before the loop: '{attr}_ = {base}.{attr}'",
            )


def _display_elts(node: ast.List | ast.Set | ast.Dict) -> bool:
    """True for a non-empty display literal (``[]``/``{}`` are harmless)."""
    if isinstance(node, ast.Dict):
        return bool(node.keys)
    return bool(node.elts)


def _named_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, node)`` for top-level and class-level defs."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{sub.name}", sub


def _innermost_loops(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.For | ast.While]:
    """Loops (For/While statements) containing no nested loop statement."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.While)):
            nested = any(
                isinstance(sub, (ast.For, ast.While))
                for sub in ast.walk(node)
                if sub is not node
            )
            if not nested:
                yield node


def _walk_loop_body(loop: ast.For | ast.While) -> Iterator[ast.AST]:
    """Every node of the loop *body* (the per-iteration work).

    The iterable/test of the loop header evaluates per iteration too
    (``while`` tests) or once (``for`` iterables); the body is where
    per-step allocation hurts, so that is what the rule inspects.
    """
    for stmt in loop.body:
        yield from ast.walk(stmt)


def _names_bound_in(loop: ast.For | ast.While) -> frozenset[str]:
    """Names assigned anywhere in the loop (header target included)."""
    bound: set[str] = set()
    if isinstance(loop, ast.For):
        for node in ast.walk(loop.target):
            if isinstance(node, ast.Name):
                bound.add(node.id)
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                bound.add(node.id)
    return frozenset(bound)
