"""Project-specific static analysis for the TPIIN pipeline.

``repro.devtools`` ships **reprolint**, an AST-based linter in two
phases.  The per-file rules machine-check the paper invariants and
hot-path disciplines that otherwise live only in docstrings:

* trading arcs are company->company and colors are enums, never raw
  strings (R008);
* deep TPIINs must never blow the interpreter stack, so traversal in
  :mod:`repro.graph`, :mod:`repro.fusion` and :mod:`repro.mining` is
  iterative (R002);
* datasets are reproducible from one integer, so every random stream
  derives from :mod:`repro.datagen.rng` (R001);
* the hot-path dataclasses stay allocation-lean via ``slots=True``
  (R003);

plus general hygiene gates (R004-R007, R009-R011).  The whole-program
phase builds a project index (import graph + symbol table) and runs
the cross-module passes: declared-architecture layering (R012), dead
exports (R013), service lock discipline (R014) and hot-loop allocation
lint (R015).  See ``docs/DEVTOOLS.md`` for the full catalogue.

Run it as ``repro-lint src`` (console script) or programmatically::

    from repro.devtools import lint_project

    report = lint_project(["src"])
    for diag in report.diagnostics:
        print(diag.render())
"""

from repro.devtools.baseline import apply_baseline, load_baseline, write_baseline
from repro.devtools.config import LintConfig, discover_config, load_config
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.project import ProjectIndex, build_index, module_name_for
from repro.devtools.render import render_human, render_json
from repro.devtools.rulebase import (
    FileContext,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    get_rule,
)
from repro.devtools.sarif import render_sarif
from repro.devtools.walker import LintReport, lint_file, lint_paths, lint_project

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintConfig",
    "LintReport",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rules",
    "apply_baseline",
    "build_index",
    "discover_config",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_project",
    "load_baseline",
    "load_config",
    "module_name_for",
    "render_human",
    "render_json",
    "render_sarif",
    "write_baseline",
]
