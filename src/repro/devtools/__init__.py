"""Project-specific static analysis for the TPIIN pipeline.

``repro.devtools`` ships **reprolint**, a small AST-based linter whose
rules machine-check the paper invariants and hot-path disciplines that
otherwise live only in docstrings:

* trading arcs are company->company and colors are enums, never raw
  strings (R008);
* deep TPIINs must never blow the interpreter stack, so traversal in
  :mod:`repro.graph`, :mod:`repro.fusion` and :mod:`repro.mining` is
  iterative (R002);
* datasets are reproducible from one integer, so every random stream
  derives from :mod:`repro.datagen.rng` (R001);
* the hot-path dataclasses stay allocation-lean via ``slots=True``
  (R003);

plus general hygiene gates (R004-R007, R009).  See
``docs/DEVTOOLS.md`` for the full rule catalogue.

Run it as ``repro-lint src`` (console script) or programmatically::

    from repro.devtools import lint_paths

    report = lint_paths(["src"])
    for diag in report.diagnostics:
        print(diag.render())
"""

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.render import render_human, render_json
from repro.devtools.rulebase import FileContext, Rule, all_rules, get_rule
from repro.devtools.walker import LintReport, lint_file, lint_paths

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintReport",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "render_human",
    "render_json",
]
