"""Finding baseline: accept known debt, fail on anything new.

The baseline is a checked-in JSON file mapping
``path -> rule_id -> message -> count``.  At lint time each diagnostic
that matches an entry with remaining count is *baselined* (dropped from
the failure set and tallied separately); anything not covered fails the
run, and counts never grow on their own — fixing a finding and
forgetting to shrink the baseline leaves a stale entry that
``--update-baseline`` prunes.

Matching is by message text rather than line number, so unrelated edits
that shift code do not invalidate the baseline, while a *new* instance
of a baselined rule in the same file still fails (the count runs out).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools.diagnostics import Diagnostic

__all__ = [
    "BaselineError",
    "apply_baseline",
    "load_baseline",
    "render_baseline",
    "write_baseline",
]

_VERSION = 1

#: ``path -> rule_id -> message -> remaining count``
_Baseline = dict[str, dict[str, dict[str, int]]]


class BaselineError(ValueError):
    """The baseline file exists but is not a valid baseline document."""


def load_baseline(path: Path) -> _Baseline:
    """Read a baseline file; a missing file is the empty baseline."""
    if not path.is_file():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported format (want version={_VERSION})"
        )
    findings = data.get("findings", {})
    if not isinstance(findings, dict):
        raise BaselineError(f"baseline {path}: 'findings' must be an object")
    out: _Baseline = {}
    for file_path, by_rule in findings.items():
        if not isinstance(by_rule, dict):
            raise BaselineError(f"baseline {path}: entry for {file_path!r} malformed")
        out[file_path] = {}
        for rule_id, by_message in by_rule.items():
            if not isinstance(by_message, dict):
                raise BaselineError(
                    f"baseline {path}: entry {file_path!r}/{rule_id} malformed"
                )
            out[file_path][rule_id] = {
                str(msg): int(count) for msg, count in by_message.items()
            }
    return out


def apply_baseline(
    diagnostics: tuple[Diagnostic, ...], baseline: _Baseline
) -> tuple[tuple[Diagnostic, ...], int]:
    """Split diagnostics into (still failing, number baselined).

    Each baseline entry's count is consumed once per matching
    diagnostic; surplus findings beyond the recorded count fail.
    """
    remaining: dict[tuple[str, str, str], int] = {}
    for file_path, by_rule in baseline.items():
        for rule_id, by_message in by_rule.items():
            for message, count in by_message.items():
                remaining[(file_path, rule_id, message)] = count
    kept: list[Diagnostic] = []
    baselined = 0
    for diag in diagnostics:
        key = (diag.path, diag.rule_id, diag.message)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined += 1
        else:
            kept.append(diag)
    return tuple(kept), baselined


def render_baseline(diagnostics: tuple[Diagnostic, ...]) -> str:
    """Serialize the current findings as a fresh baseline document."""
    findings: _Baseline = {}
    for diag in diagnostics:
        by_message = findings.setdefault(diag.path, {}).setdefault(diag.rule_id, {})
        by_message[diag.message] = by_message.get(diag.message, 0) + 1
    payload = {"version": _VERSION, "findings": findings}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(diagnostics: tuple[Diagnostic, ...], path: Path) -> None:
    path.write_text(render_baseline(diagnostics), encoding="utf-8")
