"""The reprolint rule catalogue (R001-R011).

Each rule machine-checks one invariant of the TPIIN reproduction; the
invariant and its paper grounding are spelled out in the rule's
docstring and in ``docs/DEVTOOLS.md``.  Rules are pure AST passes: no
imports are executed and no file is ever run.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.rulebase import FileContext, register

__all__ = [
    "DataclassSlotsRule",
    "DunderAllRule",
    "ForbiddenDependencyRule",
    "FrozenMutationRule",
    "NoBareExceptRule",
    "NoDeprecatedDetectRule",
    "NoFunctionBodyImportRule",
    "NoPrintRule",
    "NoRecursiveTraversalRule",
    "RawColorLiteralRule",
    "UnseededRandomnessRule",
]

# Scope of the iterative-traversal and slots disciplines: the packages
# on the TPIIN hot path (segmentation, contraction, patterns-tree).
_TRAVERSAL_PACKAGES = ("graph", "fusion", "mining")
_SLOTS_PACKAGES = ("graph", "mining")

# The fused vocabulary of Definition 1; comparing against these raw
# strings bypasses the EColor/VColor enums.
_RESERVED_COLOR_VALUES = frozenset({"IN", "TR", "Person", "Company"})

# numpy.random attributes that are part of the seeded Generator API and
# therefore fine outside datagen/rng.py (when given an explicit seed).
_SEEDED_NUMPY_API = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local binding -> imported dotted module path.

    ``import numpy as np`` binds ``np -> numpy``;
    ``from numpy import random as npr`` binds ``npr -> numpy.random``;
    ``from random import choice`` binds ``choice -> random.choice``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname is not None:
                    aliases[name.asname] = name.name
                else:
                    head = name.name.split(".", 1)[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def _resolve(dotted: str, aliases: dict[str, str]) -> str:
    head, sep, rest = dotted.partition(".")
    target = aliases.get(head)
    if target is None:
        return dotted
    return target + sep + rest if sep else target


@register
class UnseededRandomnessRule:
    """R001 - randomness must flow through :mod:`repro.datagen.rng`.

    A dataset must be reproducible from one root seed (the paper's
    Table-1 sweep depends on it), so stdlib ``random`` is banned
    outside ``datagen/rng.py``, as are numpy's legacy global-state
    functions (``numpy.random.rand`` and friends) and unseeded
    ``numpy.random.default_rng()`` calls.
    """

    rule_id = "R001"
    title = "no unseeded randomness outside datagen/rng.py"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.in_test_tree or ctx.path_endswith("datagen/rng.py"):
            return
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "random" or name.name.startswith("random."):
                        yield ctx.diagnostic(
                            node,
                            self.rule_id,
                            "stdlib 'random' is banned; streams must be derivable "
                            "from one root seed",
                            "use repro.datagen.rng.derive_rng(root_seed, label)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and (
                    node.module == "random" or node.module.startswith("random.")
                ):
                    yield ctx.diagnostic(
                        node,
                        self.rule_id,
                        "stdlib 'random' is banned; streams must be derivable "
                        "from one root seed",
                        "use repro.datagen.rng.derive_rng(root_seed, label)",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, aliases)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, aliases: dict[str, str]
    ) -> Iterator[Diagnostic]:
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        resolved = _resolve(dotted, aliases)
        if not resolved.startswith("numpy.random."):
            return
        tail = resolved[len("numpy.random.") :]
        if tail == "default_rng":
            unseeded = not node.args or (
                isinstance(node.args[0], ast.Constant) and node.args[0].value is None
            )
            if unseeded:
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    "default_rng() without a seed draws OS entropy",
                    "pass a seed derived via repro.datagen.rng.derive_seed",
                )
        elif tail not in _SEEDED_NUMPY_API and "." not in tail:
            yield ctx.diagnostic(
                node,
                self.rule_id,
                f"numpy.random.{tail}() uses the legacy global RNG state",
                "use a Generator from repro.datagen.rng.derive_rng",
            )


@register
class NoRecursiveTraversalRule:
    """R002 - graph traversal in the hot packages must be iterative.

    A provincial TPIIN chains tens of thousands of influence arcs;
    Python's default recursion limit is ~1000 frames, so any
    self-recursive walk in :mod:`repro.graph`, :mod:`repro.fusion` or
    :mod:`repro.mining` is a latent crash on deep inputs (the reason
    Tarjan's SCC and the patterns-tree DFS are written with explicit
    stacks).  Flags calls to the enclosing function's own name,
    including ``self.f(...)`` and ``child.f(...)`` forms.
    """

    rule_id = "R002"
    title = "no recursive traversal in graph/, fusion/, mining/"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.in_test_tree or not ctx.in_package(*_TRAVERSAL_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            recursive = (
                isinstance(func, ast.Name) and func.id == fn.name
            ) or (
                isinstance(func, ast.Attribute)
                and func.attr == fn.name
                and isinstance(func.value, ast.Name)
            )
            if recursive:
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    f"'{fn.name}' calls itself; deep TPIINs blow the stack",
                    "rewrite iteratively with an explicit stack/deque",
                )


@register
class DataclassSlotsRule:
    """R003 - hot-path dataclasses must declare ``slots=True``.

    :mod:`repro.graph` and :mod:`repro.mining` allocate these records
    per node/arc/group; ``slots=True`` removes the per-instance
    ``__dict__`` (roughly halving footprint) and turns attribute typos
    into hard errors.
    """

    rule_id = "R003"
    title = "dataclasses in graph/ and mining/ must declare slots=True"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.in_test_tree or not ctx.in_package(*_SLOTS_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for dec in node.decorator_list:
                if self._is_slotless_dataclass(dec):
                    yield ctx.diagnostic(
                        dec,
                        self.rule_id,
                        f"dataclass '{node.name}' does not declare slots=True",
                        "use @dataclass(slots=True, ...)",
                    )

    @staticmethod
    def _is_slotless_dataclass(dec: ast.expr) -> bool:
        if isinstance(dec, ast.Call):
            name = _dotted_name(dec.func)
            if name not in ("dataclass", "dataclasses.dataclass"):
                return False
            for kw in dec.keywords:
                if kw.arg == "slots":
                    value = kw.value
                    return not (isinstance(value, ast.Constant) and value.value is True)
            return True
        return _dotted_name(dec) in ("dataclass", "dataclasses.dataclass")


@register
class DunderAllRule:
    """R004 - ``__all__`` must exactly match the public surface.

    Every public top-level definition must be exported, every export
    must exist, and package ``__init__`` modules must list exactly
    their public re-exports.  Keeps ``from repro.x import *`` and the
    API docs honest.  ``__main__.py`` entry modules are exempt.
    """

    rule_id = "R004"
    title = "__all__ must exactly match public definitions"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.in_test_tree or ctx.filename == "__main__.py":
            return
        is_init = ctx.filename == "__init__.py"
        defined: dict[str, ast.AST] = {}
        imported: dict[str, ast.AST] = {}
        all_node: ast.Assign | None = None
        exported: list[str] | None = None

        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defined[node.name] = node
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for name in node.names:
                    if name.name == "*":
                        continue
                    bound = name.asname or name.name.split(".", 1)[0]
                    imported[bound] = node
            elif isinstance(node, ast.Assign):
                for target in self._assign_names(node):
                    if target == "__all__":
                        parsed = self._parse_all(node)
                        if parsed is not None:
                            all_node, exported = node, parsed
                    else:
                        defined[target] = node
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if node.target.id != "__all__":
                    defined[node.target.id] = node

        public_defs = {n for n in defined if not n.startswith("_")}
        public_imports = {n for n in imported if not n.startswith("_")}
        required = public_defs | (public_imports if is_init else set())

        if exported is None:
            if required:
                yield ctx.diagnostic(
                    None,
                    self.rule_id,
                    "module has public definitions but no literal __all__",
                    "add __all__ listing: " + ", ".join(sorted(required)),
                )
            return

        available = set(defined) | set(imported)
        for name in exported:
            if name not in available:
                yield ctx.diagnostic(
                    all_node,
                    self.rule_id,
                    f"'{name}' is exported by __all__ but never defined or imported",
                    "remove it from __all__ or define it",
                )
        seen = set()
        for name in exported:
            if name in seen:
                yield ctx.diagnostic(
                    all_node,
                    self.rule_id,
                    f"'{name}' is listed twice in __all__",
                    "drop the duplicate entry",
                )
            seen.add(name)
        for name in sorted(required - seen):
            yield ctx.diagnostic(
                defined.get(name, imported.get(name)),
                self.rule_id,
                f"public name '{name}' is missing from __all__",
                "add it to __all__ or rename it with a leading underscore",
            )

    @staticmethod
    def _assign_names(node: ast.Assign) -> Iterator[str]:
        for target in node.targets:
            if isinstance(target, ast.Name):
                yield target.id
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        yield elt.id

    @staticmethod
    def _parse_all(node: ast.Assign) -> list[str] | None:
        if not isinstance(node.value, (ast.List, ast.Tuple)):
            return None
        names: list[str] = []
        for elt in node.value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            names.append(elt.value)
        return names


@register
class ForbiddenDependencyRule:
    """R005 - no ``networkx``/``scipy`` imports in library code.

    The runtime dependency surface is numpy only; networkx and scipy
    are dev-extra comparators for the test suite.  An import here
    would silently break production installs.
    """

    rule_id = "R005"
    title = "no networkx/scipy imports in src/"

    _FORBIDDEN = ("networkx", "scipy")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.in_test_tree:
            return
        for node in ast.walk(ctx.tree):
            module: str | None = None
            if isinstance(node, ast.Import):
                for name in node.names:
                    if self._forbidden(name.name):
                        yield self._diag(ctx, node, name.name)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module
                if module is not None and self._forbidden(module):
                    yield self._diag(ctx, node, module)

    def _forbidden(self, module: str) -> bool:
        return any(
            module == banned or module.startswith(banned + ".")
            for banned in self._FORBIDDEN
        )

    def _diag(self, ctx: FileContext, node: ast.AST, module: str) -> Diagnostic:
        return ctx.diagnostic(
            node,
            self.rule_id,
            f"'{module}' is a dev-only dependency and must not be imported "
            "from library code",
            "keep comparator code in tests/ or gate it behind the dev extra",
        )


@register
class NoBareExceptRule:
    """R006 - no bare ``except`` and no silently swallowed exceptions.

    Every library failure derives from :class:`repro.errors.ReproError`;
    a bare ``except:`` (or a ``pass``-only broad handler) hides
    ``KeyboardInterrupt``/``SystemExit`` and masks pipeline bugs that
    the audit trail is supposed to surface.
    """

    rule_id = "R006"
    title = "no bare except / swallowed exceptions"

    _BROAD = ("Exception", "BaseException")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    "bare 'except:' catches SystemExit and KeyboardInterrupt",
                    "catch a repro.errors.ReproError subclass (or Exception)",
                )
            elif self._is_broad(node.type) and self._swallows(node.body):
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    "broad exception handler silently swallows the error",
                    "narrow the exception type or handle/log the failure",
                )

    def _is_broad(self, type_node: ast.expr) -> bool:
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        return _dotted_name(type_node) in self._BROAD

    @staticmethod
    def _swallows(body: list[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
            for stmt in body
        )


@register
class NoPrintRule:
    """R007 - no ``print()`` in library code.

    Reporting goes through :mod:`repro.analysis.reporting` and the CLI
    front ends; a stray ``print`` in the pipeline corrupts the CSV/JSON
    streams the paper's ``susGroup``/``susTrade`` files are piped into.
    ``cli.py`` modules and ``analysis/reporting.py`` are exempt.
    """

    rule_id = "R007"
    title = "no print() outside cli.py / analysis/reporting.py"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if (
            ctx.in_test_tree
            or ctx.filename == "cli.py"
            or ctx.path_endswith("analysis/reporting.py")
        ):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.diagnostic(
                    node,
                    self.rule_id,
                    "print() in library code",
                    "return the text, or route it through analysis.reporting",
                )


@register
class RawColorLiteralRule:
    """R008 - never compare colors against raw string literals.

    ``EColor``/``VColor`` are ``str`` enums, so ``color == "IN"``
    happens to work today -- until a vocabulary change (say, new
    ``AffiliationKind`` folds) silently never matches.  Comparisons
    must name the enum member.
    """

    rule_id = "R008"
    title = "EColor/VColor must not be compared against raw strings"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    for literal, other in ((left, right), (right, left)):
                        if self._reserved_literal(literal) and not isinstance(
                            other, ast.Constant
                        ):
                            yield self._diag(ctx, literal)
                elif isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                    right, (ast.Tuple, ast.List, ast.Set)
                ):
                    for elt in right.elts:
                        if self._reserved_literal(elt):
                            yield self._diag(ctx, elt)

    @staticmethod
    def _reserved_literal(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in _RESERVED_COLOR_VALUES
        )

    def _diag(self, ctx: FileContext, literal: ast.expr) -> Diagnostic:
        value = literal.value if isinstance(literal, ast.Constant) else "?"
        member = {
            "IN": "EColor.INFLUENCE",
            "TR": "EColor.TRADING",
            "Person": "VColor.PERSON",
            "Company": "VColor.COMPANY",
        }.get(str(value), "the enum member")
        return ctx.diagnostic(
            literal,
            self.rule_id,
            f'comparison against raw color literal "{value}"',
            f"compare against {member} instead",
        )


@register
class FrozenMutationRule:
    """R009 - no ``object.__setattr__`` outside ``__post_init__``.

    Frozen dataclasses (groups, patterns, diagnostics) are hashable
    cache keys; mutating one after construction corrupts every set and
    dict it already sits in.  ``__post_init__`` (initialisation) and
    ``__setstate__`` (unpickling a not-yet-initialised instance) are
    the only sanctioned escape hatches.
    """

    rule_id = "R009"
    title = "no object.__setattr__ outside __post_init__/__setstate__"

    _ALLOWED = ("__post_init__", "__setstate__")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._visit(ctx, ctx.tree.body, inside_allowed=False)

    def _visit(
        self, ctx: FileContext, body: list[ast.stmt], inside_allowed: bool
    ) -> Iterator[Diagnostic]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                allowed = inside_allowed or stmt.name in self._ALLOWED
                yield from self._visit(ctx, stmt.body, allowed)
            elif isinstance(stmt, ast.ClassDef):
                yield from self._visit(ctx, stmt.body, False)
            else:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and _dotted_name(node.func) == "object.__setattr__"
                        and not inside_allowed
                    ):
                        yield ctx.diagnostic(
                            node,
                            self.rule_id,
                            "object.__setattr__ mutates a frozen instance after "
                            "construction",
                            "restrict it to __post_init__/__setstate__ or use "
                            "dataclasses.replace",
                        )


@register
class NoDeprecatedDetectRule:
    """R011 - no new call sites of the deprecated ``fast_detect``.

    ``fast_detect`` survives only as a :class:`DeprecationWarning`-emitting
    alias for ``detect(tpiin, engine=Engine.FAST)``; the consolidated
    options API is the one entry point every caller (and its tracing,
    metrics and override semantics) flows through.  Flags calls to, and
    first-party imports of, ``fast_detect`` everywhere except its home
    module ``mining/fast.py``.
    """

    rule_id = "R011"
    title = "no new call sites of the deprecated fast_detect"

    _DEPRECATED = "fast_detect"
    _HINT = "call detect(tpiin, engine=Engine.FAST) instead"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.in_test_tree or ctx.path_endswith("mining/fast.py"):
            return
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.level != 0 or not node.module:
                    continue
                if not self._first_party(node.module):
                    continue
                for name in node.names:
                    if name.name == self._DEPRECATED:
                        yield ctx.diagnostic(
                            node,
                            self.rule_id,
                            f"imports deprecated '{self._DEPRECATED}' "
                            f"from '{node.module}'",
                            self._HINT,
                        )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                resolved = _resolve(dotted, aliases)
                if self._first_party(resolved) and resolved.endswith(
                    "." + self._DEPRECATED
                ):
                    yield ctx.diagnostic(
                        node,
                        self.rule_id,
                        f"calls deprecated '{self._DEPRECATED}'",
                        self._HINT,
                    )

    @staticmethod
    def _first_party(module: str) -> bool:
        return module == "repro" or module.startswith("repro.")


@register
class NoFunctionBodyImportRule:
    """R010 - no function-body imports of first-party ``repro`` modules.

    A ``repro.*`` import buried in a function body hides the module's
    real dependency graph, re-pays import-machinery overhead on hot
    paths, and usually papers over an import cycle that should either
    not exist or be documented where it is broken.  Imports of
    third-party or stdlib modules inside functions are not flagged —
    only first-party ones.
    """

    rule_id = "R010"
    title = "no function-body imports of first-party repro modules"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.in_test_tree:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        # ast.walk revisits nested functions on its own; only report the
        # imports belonging *directly* to this function so each site is
        # diagnosed exactly once.
        nested: set[int] = set()
        for stmt in ast.walk(fn):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt is not fn:
                    nested.update(id(n) for n in ast.walk(stmt))
        for node in ast.walk(fn):
            if id(node) in nested:
                continue
            if isinstance(node, ast.Import):
                for name in node.names:
                    if self._first_party(name.name):
                        yield self._diag(ctx, node, fn.name, name.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level > 0:
                    yield self._diag(ctx, node, fn.name, "." * node.level + (node.module or ""))
                elif node.module is not None and self._first_party(node.module):
                    yield self._diag(ctx, node, fn.name, node.module)

    @staticmethod
    def _first_party(module: str) -> bool:
        return module == "repro" or module.startswith("repro.")

    def _diag(
        self, ctx: FileContext, node: ast.AST, fn_name: str, module: str
    ) -> Diagnostic:
        return ctx.diagnostic(
            node,
            self.rule_id,
            f"function '{fn_name}' imports first-party module '{module}' "
            "in its body",
            "import at module scope; for a genuine import cycle, suppress "
            "with '# reprolint: disable=R010' and cite the cycle",
        )
