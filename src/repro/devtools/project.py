"""Phase 1 of the whole-program analyzer: the project index.

One pass over every source file builds a :class:`ProjectIndex` holding,
per module: its dotted name, AST, module-level first-party imports
(the import graph R012 walks), its exported surface (``__all__`` plus
public top-level definitions, for R013), and every cross-module symbol
reference it makes (``from m import n``, aliased attribute chains,
star imports).  Phase 2 passes (:mod:`repro.devtools.project_rules`)
are pure functions over this index — no file is re-read or re-parsed.

Module naming is positional, mirroring :class:`FileContext`'s package
scoping: the dotted name starts at the *last* path component that is a
recognized root (``repro``, ``tests``, ``benchmarks``, ``examples``),
so fixture trees under ``tests/devtools/fixtures/.../repro/...`` index
as first-party modules.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from repro.devtools.diagnostics import Diagnostic, node_suppress_lines

__all__ = [
    "ImportEdge",
    "ModuleInfo",
    "ProjectIndex",
    "SymbolDef",
    "build_index",
    "module_name_for",
]

#: Path components at which a dotted module name may start.
_ROOT_MARKERS = frozenset({"repro", "tests", "benchmarks", "examples"})


def module_name_for(display_path: str) -> str | None:
    """Dotted module name for one display path, or ``None`` if unrooted.

    ``src/repro/graph/csr.py`` -> ``repro.graph.csr``;
    ``tests/mining/test_x.py`` -> ``tests.mining.test_x``;
    ``.../fixtures/R012/repro/graph/bad.py`` -> ``repro.graph.bad``
    (the *last* root marker wins, so fixture trees opt in by layout).
    ``__init__.py`` maps to its package's dotted name.
    """
    parts = PurePosixPath(display_path).parts
    anchor = None
    for i, part in enumerate(parts[:-1]):
        if part in _ROOT_MARKERS:
            anchor = i
    if anchor is None:
        return None
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    dotted = list(parts[anchor:-1])
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted)


@dataclass(frozen=True, slots=True)
class ImportEdge:
    """One first-party import statement, resolved to its target module."""

    target: str
    line: int
    col: int
    #: Names bound by ``from target import a, b`` (empty for plain import).
    names: tuple[str, ...] = ()
    #: True when the statement sits inside a function body (R010's
    #: domain); R012 layering only judges module-level edges.
    in_function: bool = False


@dataclass(frozen=True, slots=True)
class SymbolDef:
    """One exportable top-level definition (or ``__all__`` entry)."""

    name: str
    line: int
    col: int


@dataclass(frozen=True, slots=True)
class ModuleInfo:
    """Everything phase 2 may ask about one indexed module."""

    module: str
    display_path: str
    tree: ast.Module
    text: str
    package: str
    is_package: bool
    imports: tuple[ImportEdge, ...]
    #: Public top-level definitions/assignments, name -> location.
    definitions: dict[str, SymbolDef]
    #: Literal ``__all__`` entries, name -> location of the entry.
    exports: dict[str, SymbolDef]
    has_all: bool
    #: Cross-module symbol references this module makes.
    references: frozenset[tuple[str, str]]
    #: Modules star-imported (``from m import *``) — every export used.
    star_imports: frozenset[str]
    #: Local binding -> ``(module, original_name)`` for ``from m import n``;
    #: lets R013 trace a re-export back to the symbol it aggregates.
    import_bindings: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: Names used structurally in this module's own interface: function
    #: annotations and defaults, class bases, annotated assignments.  A
    #: return type of a live function is reachable through its return
    #: value even when nothing imports it by name, so R013 treats these
    #: as referenced.
    signature_names: frozenset[str] = frozenset()

    def diagnostic(
        self, node: ast.AST | None, rule_id: str, message: str, hint: str = ""
    ) -> Diagnostic:
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Diagnostic(
            path=self.display_path,
            line=line,
            col=col + 1,
            rule_id=rule_id,
            message=message,
            hint=hint,
            suppress_lines=node_suppress_lines(node),
        )


class ProjectIndex:
    """The whole-program symbol and import index (phase 1 output)."""

    __slots__ = ("modules", "_subjects", "_referenced", "_star_imported")

    def __init__(self, modules: dict[str, ModuleInfo], subjects: frozenset[str]) -> None:
        self.modules = modules
        self._subjects = subjects
        referenced: set[tuple[str, str]] = set()
        star_imported: set[str] = set()
        for info in modules.values():
            referenced.update(info.references)
            star_imported.update(info.star_imports)
        self._referenced = frozenset(referenced)
        self._star_imported = frozenset(star_imported)

    def is_subject(self, module: str) -> bool:
        """True when the module's file was explicitly linted (not merely
        indexed as a reference source)."""
        return module in self._subjects

    def subject_modules(self) -> Iterator[ModuleInfo]:
        for name in sorted(self._subjects):
            info = self.modules.get(name)
            if info is not None:
                yield info

    def references_to(
        self, module: str, name: str, *, excluding: str | None = None
    ) -> bool:
        """True when any *other* module references ``module.name``.

        ``excluding`` drops one module's own references from the count —
        a package ``__init__`` re-importing a submodule symbol must not
        keep that symbol alive all by itself.
        """
        if module in self._star_imported:
            return True
        if excluding is None:
            return (module, name) in self._referenced
        for info in self.modules.values():
            if info.module == excluding:
                continue
            if (module, name) in info.references or module in info.star_imports:
                return True
        return False

    def has_module(self, dotted: str) -> bool:
        return dotted in self.modules


def _resolve_relative(package: str, level: int, module: str | None) -> str | None:
    """Absolute module for ``from ..x import y`` seen inside ``package``."""
    parts = package.split(".")
    if level - 1 >= len(parts):
        return None
    base = parts[: len(parts) - (level - 1)]
    if module:
        base = base + module.split(".")
    return ".".join(base) if base else None


def _first_party(module: str) -> bool:
    head = module.split(".", 1)[0]
    return head in _ROOT_MARKERS


def _parse_all_entries(node: ast.Assign | ast.AugAssign) -> list[tuple[str, int, int]]:
    value = node.value
    entries: list[tuple[str, int, int]] = []
    if isinstance(value, (ast.List, ast.Tuple)):
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                entries.append((elt.value, elt.lineno, elt.col_offset + 1))
    return entries


_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _collect_signature_names(tree: ast.Module) -> frozenset[str]:
    """Names appearing in annotations, defaults and class bases.

    Forward references (string annotations) contribute every identifier
    token they contain; over-approximating here only makes R013 more
    conservative about declaring an export dead.
    """
    exprs: list[ast.expr] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *filter(None, (args.vararg, args.kwarg)),
            ):
                if arg.annotation is not None:
                    exprs.append(arg.annotation)
            exprs.extend(args.defaults)
            exprs.extend(d for d in args.kw_defaults if d is not None)
            if node.returns is not None:
                exprs.append(node.returns)
        elif isinstance(node, ast.ClassDef):
            exprs.extend(node.bases)
            exprs.extend(kw.value for kw in node.keywords)
        elif isinstance(node, ast.AnnAssign):
            exprs.append(node.annotation)
    names: set[str] = set()
    for expr in exprs:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                names.update(_IDENTIFIER.findall(sub.value))
    return frozenset(names)


def _index_module(display_path: str, text: str, tree: ast.Module) -> ModuleInfo | None:
    module = module_name_for(display_path)
    if module is None:
        return None
    filename = PurePosixPath(display_path).name
    is_package = filename == "__init__.py"
    package = module if is_package else module.rsplit(".", 1)[0]

    imports: list[ImportEdge] = []
    definitions: dict[str, SymbolDef] = {}
    exports: dict[str, SymbolDef] = {}
    has_all = False
    references: set[tuple[str, str]] = set()
    star_imports: set[str] = set()
    import_bindings: dict[str, tuple[str, str]] = {}
    #: local binding -> dotted first-party target (module or module.attr)
    aliases: dict[str, str] = {}

    # --- top-level definitions and __all__ -----------------------------
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            definitions[node.name] = SymbolDef(node.name, node.lineno, node.col_offset + 1)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names: list[ast.Name] = []
                if isinstance(target, ast.Name):
                    names = [target]
                elif isinstance(target, (ast.Tuple, ast.List)):
                    names = [e for e in target.elts if isinstance(e, ast.Name)]
                for name_node in names:
                    if name_node.id == "__all__":
                        has_all = True
                        for entry, line, col in _parse_all_entries(node):
                            exports.setdefault(entry, SymbolDef(entry, line, col))
                    else:
                        definitions.setdefault(
                            name_node.id,
                            SymbolDef(name_node.id, node.lineno, node.col_offset + 1),
                        )
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.target.id == "__all__":
                has_all = True
            else:
                definitions.setdefault(
                    node.target.id,
                    SymbolDef(node.target.id, node.lineno, node.col_offset + 1),
                )

    # --- imports (module-level vs function-body) -----------------------
    nested_in_function: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is not node:
                    nested_in_function.add(id(sub))

    for node in ast.walk(tree):
        in_function = id(node) in nested_in_function
        if isinstance(node, ast.Import):
            for alias in node.names:
                if not _first_party(alias.name):
                    continue
                imports.append(
                    ImportEdge(alias.name, node.lineno, node.col_offset + 1,
                               in_function=in_function)
                )
                bound = alias.asname or alias.name.split(".", 1)[0]
                aliases[bound] = alias.name if alias.asname else alias.name.split(".", 1)[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level > 0:
                target = _resolve_relative(package, node.level, node.module)
            else:
                target = node.module
            if target is None or not _first_party(target):
                continue
            bound_names: list[str] = []
            for alias in node.names:
                if alias.name == "*":
                    star_imports.add(target)
                    continue
                bound_names.append(alias.name)
                references.add((target, alias.name))
                aliases[alias.asname or alias.name] = f"{target}.{alias.name}"
                import_bindings[alias.asname or alias.name] = (target, alias.name)
            imports.append(
                ImportEdge(
                    target,
                    node.lineno,
                    node.col_offset + 1,
                    names=tuple(bound_names),
                    in_function=in_function,
                )
            )

    # --- attribute references through aliases --------------------------
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        chain: list[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, ast.Attribute):
            chain.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            continue
        resolved = aliases.get(cursor.id)
        if resolved is None:
            continue
        dotted = resolved.split(".") + list(reversed(chain))
        # Longest prefix of the chain that is itself a module path gets
        # the reference; ``repro.graph.csr.CSRGraph.freeze`` references
        # ``CSRGraph`` in ``repro.graph.csr``.
        for split in range(len(dotted) - 1, 0, -1):
            prefix = ".".join(dotted[:split])
            if _first_party(prefix):
                references.add((prefix, dotted[split]))
                break

    return ModuleInfo(
        module=module,
        display_path=display_path,
        tree=tree,
        text=text,
        package=package,
        is_package=is_package,
        imports=tuple(imports),
        definitions=definitions,
        exports=exports,
        has_all=has_all,
        references=frozenset(references),
        star_imports=frozenset(star_imports),
        import_bindings=import_bindings,
        signature_names=_collect_signature_names(tree),
    )


def build_index(
    files: Iterable[tuple[str, str, ast.Module]],
    subject_paths: Iterable[str] = (),
) -> ProjectIndex:
    """Index parsed files into a :class:`ProjectIndex`.

    ``files`` yields ``(display_path, text, tree)`` triples — typically
    straight out of the walker so nothing is parsed twice.
    ``subject_paths`` marks which of those files were explicitly linted;
    the rest contribute references (and import edges) only.
    """
    subjects_by_path = set(subject_paths)
    modules: dict[str, ModuleInfo] = {}
    subjects: set[str] = set()
    for display_path, text, tree in files:
        info = _index_module(display_path, text, tree)
        if info is None:
            continue
        modules[info.module] = info
        if display_path in subjects_by_path:
            subjects.add(info.module)
    return ProjectIndex(modules, frozenset(subjects))
