"""Graph traversal primitives.

Implements the ``findsubgraph()`` routine of Appendix B — an improved
depth-first search that extracts the *maximal weakly connected subgraphs*
(MWCS) of the antecedent network for Algorithm 1's divide-and-conquer
segmentation — together with generic DFS/BFS orders and reachability
helpers used across the mining package.

All traversals are iterative: the provincial antecedent network contains
influence chains long enough to overflow Python's recursion limit if a
naive recursive DFS were used.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from typing import Any

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, Node

__all__ = [
    "dfs_preorder",
    "bfs_order",
    "weakly_connected_components",
    "find_subgraphs",
    "descendants",
    "ancestors",
    "has_path",
    "restricted_reachable",
]


def dfs_preorder(graph: DiGraph, start: Node, color: Any = None) -> Iterator[Node]:
    """Yield nodes in depth-first preorder from ``start``.

    Only arcs of ``color`` are followed when a color is given.  Successors
    are visited in insertion order, which keeps traversals deterministic
    for a deterministically built graph.
    """
    if not graph.has_node(start):
        raise NodeNotFoundError(start)
    seen = {start}
    stack: list[Node] = [start]
    while stack:
        node = stack.pop()
        yield node
        # Reversed so the first-inserted successor is explored first.
        for nxt in reversed(list(graph.successors(node, color))):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)


def bfs_order(graph: DiGraph, start: Node, color: Any = None) -> Iterator[Node]:
    """Yield nodes in breadth-first order from ``start``."""
    if not graph.has_node(start):
        raise NodeNotFoundError(start)
    seen = {start}
    queue: deque[Node] = deque([start])
    while queue:
        node = queue.popleft()
        yield node
        for nxt in graph.successors(node, color):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)


def weakly_connected_components(
    graph: DiGraph, color: Any = None, *, include_isolated: bool = True
) -> list[set[Node]]:
    """Maximal weakly connected components of a directed graph.

    Two nodes are weakly connected when a path exists between them after
    forgetting arc directions.  With ``color`` given, only arcs of that
    color define connectivity (other arcs are ignored); this is exactly
    the segmentation step 3 of Algorithm 1, which partitions the
    *antecedent* arcs while trading arcs are reattached later.

    ``include_isolated`` controls whether nodes with no incident
    (color-matching) arc are returned as singleton components.
    """
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        if not include_isolated:
            if graph.out_degree(start, color) == 0 and graph.in_degree(start, color) == 0:
                continue
        component = {start}
        seen.add(start)
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in graph.successors(node, color):
                if nxt not in seen:
                    seen.add(nxt)
                    component.add(nxt)
                    stack.append(nxt)
            for prv in graph.predecessors(node, color):
                if prv not in seen:
                    seen.add(prv)
                    component.add(prv)
                    stack.append(prv)
        components.append(component)
    return components


def find_subgraphs(graph: DiGraph, color: Any = None) -> list[DiGraph]:
    """The paper's ``findsubgraph()``: MWCS of ``graph`` as induced subgraphs.

    Returns one induced :class:`DiGraph` per maximal weakly connected
    component, ordered by first-seen node, so that ``subTPIIN(i)`` indexes
    are stable across runs.
    """
    return [graph.subgraph(c) for c in weakly_connected_components(graph, color)]


def descendants(graph: DiGraph, start: Node, color: Any = None) -> set[Node]:
    """All nodes reachable from ``start`` (excluding ``start`` itself)."""
    reached = set(dfs_preorder(graph, start, color))
    reached.discard(start)
    return reached


def ancestors(graph: DiGraph, start: Node, color: Any = None) -> set[Node]:
    """All nodes that can reach ``start`` (excluding ``start`` itself)."""
    if not graph.has_node(start):
        raise NodeNotFoundError(start)
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for prv in graph.predecessors(node, color):
            if prv not in seen:
                seen.add(prv)
                stack.append(prv)
    seen.discard(start)
    return seen


def has_path(graph: DiGraph, source: Node, target: Node, color: Any = None) -> bool:
    """True when a directed path ``source ~> target`` exists.

    A node always has a (trivial) path to itself.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return True
    for node in dfs_preorder(graph, source, color):
        if node == target:
            return True
    return False


def restricted_reachable(
    graph: DiGraph, start: Node, allowed: Iterable[Node], color: Any = None
) -> set[Node]:
    """Nodes reachable from ``start`` moving only through ``allowed`` nodes.

    ``start`` is implicitly allowed.  Used by the SCS-internal suspicious
    trade detection, which must certify that an influence trail exists
    *inside* one strongly connected syndicate.
    """
    allowed_set = set(allowed)
    allowed_set.add(start)
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for nxt in graph.successors(node, color):
            if nxt in allowed_set and nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    seen.discard(start)
    return seen
