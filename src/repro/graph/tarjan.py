"""Iterative Tarjan strongly-connected-components algorithm.

The fusion pipeline (Section 4.1) applies Tarjan's algorithm [26] to the
investment graph to locate sets of companies with mutual investment
arrangements; each strongly connected subgraph (SCS) is then contracted
into a single *Company* syndicate so that the antecedent network becomes a
DAG (Appendix A).

The classic formulation is recursive; this implementation is an explicit-
stack translation so that arbitrarily deep investment chains (thousands of
holding layers in a synthetic stress test) cannot overflow the interpreter
stack.  Components are emitted in reverse topological order of the
condensation, which is the order Tarjan's algorithm naturally produces.
"""

from __future__ import annotations

from typing import Any

from repro.graph.digraph import DiGraph, Node

__all__ = ["strongly_connected_components", "nontrivial_sccs"]


def strongly_connected_components(graph: DiGraph, color: Any = None) -> list[list[Node]]:
    """Return all strongly connected components of ``graph``.

    Each component is a list of nodes; every node appears in exactly one
    component (singletons included).  When ``color`` is given only arcs of
    that color are followed, which lets the caller run SCC detection on
    the investment arcs of a mixed-color graph directly.
    """
    index_of: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[list[Node]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        # Each work item is (node, iterator over its successors).
        work: list[tuple[Node, Any]] = [(root, iter(list(graph.successors(root, color))))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for nxt in successors:
                if nxt not in index_of:
                    index_of[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(list(graph.successors(nxt, color)))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def nontrivial_sccs(graph: DiGraph, color: Any = None) -> list[list[Node]]:
    """SCCs with more than one node, or a single node with a self-loop.

    These are exactly the strongly connected subgraphs the fusion pipeline
    must contract: a trivial singleton without a self-loop is already
    DAG-compatible.
    """
    result = []
    for component in strongly_connected_components(graph, color):
        if len(component) > 1:
            result.append(component)
        else:
            node = component[0]
            if graph.has_arc(node, node, color) or (
                color is None and graph.has_arc(node, node)
            ):
                result.append(component)
    return result
