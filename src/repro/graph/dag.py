"""Directed-acyclic-graph utilities.

Property 1 of the paper states that the antecedent network is a DAG after
strongly-connected-subgraph contraction, so every walk in it is a trail
and a path.  The pattern-tree construction (Algorithm 2) and the fast
mining engine both lean on the utilities here: acyclicity checking,
topological order, indegree-zero roots, and exhaustive simple-path
enumeration/counting between roots and reachable nodes.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator, Sequence
from typing import Any

from repro.errors import NodeNotFoundError, NotADagError
from repro.graph.digraph import DiGraph, Node

__all__ = [
    "is_dag",
    "topological_order",
    "roots",
    "leaves",
    "enumerate_paths_from",
    "count_paths_from_roots",
    "ancestor_closure",
    "path_arcs",
]


def topological_order(graph: DiGraph, color: Any = None) -> list[Node]:
    """Kahn topological order of ``graph`` (restricted to ``color`` arcs).

    Raises :class:`NotADagError` when a cycle exists among the selected
    arcs.  Nodes with no selected arcs appear in the order as well.
    """
    indegree = {node: graph.in_degree(node, color) for node in graph.nodes()}
    queue: deque[Node] = deque(n for n, d in indegree.items() if d == 0)
    order: list[Node] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for nxt in graph.successors(node, color):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                queue.append(nxt)
    if len(order) != graph.number_of_nodes():
        cyclic = sorted(
            (repr(n) for n, d in indegree.items() if d > 0 and n not in order)
        )[:5]
        raise NotADagError(
            "graph contains a directed cycle among nodes: " + ", ".join(cyclic)
        )
    return order


def is_dag(graph: DiGraph, color: Any = None) -> bool:
    """True when the (color-restricted) graph has no directed cycle."""
    try:
        topological_order(graph, color)
    except NotADagError:
        return False
    return True


def roots(graph: DiGraph, color: Any = None) -> list[Node]:
    """Nodes with indegree zero (the pattern-tree start nodes)."""
    return [n for n in graph.nodes() if graph.in_degree(n, color) == 0]


def leaves(graph: DiGraph, color: Any = None) -> list[Node]:
    """Nodes with outdegree zero (Rule 1 stop nodes)."""
    return [n for n in graph.nodes() if graph.out_degree(n, color) == 0]


def enumerate_paths_from(
    graph: DiGraph,
    start: Node,
    color: Any = None,
    *,
    max_paths: int | None = None,
) -> Iterator[tuple[Node, ...]]:
    """Yield every simple directed path starting at ``start``.

    The single-node path ``(start,)`` is yielded first, then longer paths
    in depth-first order.  On a DAG every walk is simple (Property 1), so
    this enumerates all trails from ``start``.  The graph is *not*
    required to be acyclic — a visited-set guard keeps paths simple either
    way, which the global-traversal baseline relies on.

    ``max_paths`` bounds the enumeration as a safety valve for the
    combinatorial-explosion benchmark; ``None`` means unbounded.
    """
    if not graph.has_node(start):
        raise NodeNotFoundError(start)
    emitted = 0
    path: list[Node] = [start]
    on_path = {start}
    # Stack of successor iterators, parallel to `path`.
    iters: list[Iterator[Node]] = [iter(list(graph.successors(start, color)))]
    yield (start,)
    emitted += 1
    if max_paths is not None and emitted >= max_paths:
        return
    while iters:
        try:
            nxt = next(iters[-1])
        except StopIteration:
            iters.pop()
            on_path.discard(path.pop())
            continue
        if nxt in on_path:
            continue
        path.append(nxt)
        on_path.add(nxt)
        yield tuple(path)
        emitted += 1
        if max_paths is not None and emitted >= max_paths:
            return
        iters.append(iter(list(graph.successors(nxt, color))))


def count_paths_from_roots(graph: DiGraph, color: Any = None) -> dict[Node, int]:
    """Number of distinct root-to-node paths for every node of a DAG.

    A *root* is an indegree-zero node; each root contributes the trivial
    path to itself.  Computed by a single topological-order sweep, so this
    scales to the provincial antecedent network where explicit enumeration
    would be wasteful.
    """
    counts: dict[Node, int] = {n: 0 for n in graph.nodes()}
    order = topological_order(graph, color)
    for node in order:
        if graph.in_degree(node, color) == 0:
            counts[node] = 1
    for node in order:
        for nxt in graph.successors(node, color):
            counts[nxt] += counts[node]
    return counts


def ancestor_closure(graph: DiGraph, color: Any = None) -> dict[Node, set[Node]]:
    """``node -> ancestors*(node)`` (ancestors including the node itself).

    The suspicious-arc oracle uses this closure: a trading arc
    ``c1 -> c2`` is suspicious iff the closures of its endpoints
    intersect.  Runs one topological sweep with set unions; adequate for
    test-scale graphs (the packed-bitset index in
    :mod:`repro.graph.bitset` covers provincial scale).
    """
    closure: dict[Node, set[Node]] = {}
    for node in topological_order(graph, color):
        own: set[Node] = {node}
        for prev in graph.predecessors(node, color):
            own |= closure[prev]
        closure[node] = own
    return closure


def path_arcs(path: Sequence[Node]) -> list[tuple[Node, Node]]:
    """The consecutive ``(tail, head)`` pairs of a node sequence."""
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]
