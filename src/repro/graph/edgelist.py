"""The paper's ``r x 3`` edge-list representation.

Algorithm 1 takes its TPIIN as an array ``tpiin`` of shape ``(r, 3)``:
column 0 is the arc's start-node index, column 1 the end-node index and
column 2 the arc color code, where the paper's convention is ``0 = black``
(trading relationship) and ``1 = blue`` (influence relationship).  The
first ``m - 1`` rows hold the antecedent network and the remaining rows
the trading network.

:class:`EdgeList` wraps that array together with the mapping between
integer indices and the caller's node identifiers, and converts to and
from :class:`~repro.graph.digraph.DiGraph`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import SerializationError
from repro.graph.digraph import DiGraph, Node

__all__ = ["EdgeList", "COLOR_TRADING", "COLOR_INFLUENCE"]

#: Paper color codes for column 2 of the ``tpiin`` array.
COLOR_TRADING = 0  # "black" arcs
COLOR_INFLUENCE = 1  # "blue" arcs


class EdgeList:
    """An ``(r, 3)`` integer arc array plus a node-id dictionary.

    Rows are ``(start_index, end_index, color_code)``.  The class keeps
    the paper's layout discipline: influence rows first, trading rows
    after, with :attr:`first_trading_row` playing the role of the paper's
    ``m`` marker.
    """

    def __init__(
        self,
        array: np.ndarray,
        index_to_node: Sequence[Node],
        *,
        node_colors: Mapping[Node, Any] | None = None,
    ) -> None:
        array = np.asarray(array, dtype=np.int64)
        if array.ndim != 2 or array.shape[1] != 3:
            raise SerializationError(
                f"edge list must have shape (r, 3); got {array.shape}"
            )
        if array.size and (array[:, :2].min() < 0 or array[:, :2].max() >= len(index_to_node)):
            raise SerializationError("edge list references an out-of-range node index")
        bad = set(np.unique(array[:, 2])) - {COLOR_TRADING, COLOR_INFLUENCE}
        if bad:
            raise SerializationError(f"unknown color codes in edge list: {sorted(bad)}")
        self._array = array
        self._index_to_node: list[Node] = list(index_to_node)
        self._node_to_index: dict[Node, int] = {
            node: i for i, node in enumerate(self._index_to_node)
        }
        if len(self._node_to_index) != len(self._index_to_node):
            raise SerializationError("duplicate node identifiers in edge list mapping")
        self._node_colors = dict(node_colors) if node_colors else {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_digraph(
        cls,
        graph: DiGraph,
        *,
        influence_color: Any,
        trading_color: Any,
    ) -> "EdgeList":
        """Build the paper layout from a two-arc-color :class:`DiGraph`.

        Influence arcs are emitted first (rows ``0 .. m-2``), trading arcs
        after, matching Algorithm 1's expectation.  Arc colors other than
        the two given ones are rejected.
        """
        index_to_node = list(graph.nodes())
        node_to_index = {node: i for i, node in enumerate(index_to_node)}
        influence_rows: list[tuple[int, int, int]] = []
        trading_rows: list[tuple[int, int, int]] = []
        for tail, head, color in graph.arcs():
            row = (node_to_index[tail], node_to_index[head])
            if color == influence_color:
                influence_rows.append((*row, COLOR_INFLUENCE))
            elif color == trading_color:
                trading_rows.append((*row, COLOR_TRADING))
            else:
                raise SerializationError(
                    f"arc color {color!r} is neither the influence color "
                    f"{influence_color!r} nor the trading color {trading_color!r}"
                )
        rows = influence_rows + trading_rows
        array = (
            np.array(rows, dtype=np.int64)
            if rows
            else np.empty((0, 3), dtype=np.int64)
        )
        colors = {node: graph.node_color(node) for node in index_to_node}
        return cls(array, index_to_node, node_colors=colors)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The raw ``(r, 3)`` array (a defensive copy is *not* taken)."""
        return self._array

    @property
    def nodes(self) -> list[Node]:
        return list(self._index_to_node)

    @property
    def number_of_arcs(self) -> int:
        return int(self._array.shape[0])

    @property
    def number_of_nodes(self) -> int:
        return len(self._index_to_node)

    def node_at(self, index: int) -> Node:
        return self._index_to_node[index]

    def index_of(self, node: Node) -> int:
        return self._node_to_index[node]

    @property
    def first_trading_row(self) -> int:
        """Index of the first trading row (the paper's ``m - 1``).

        Equals :attr:`number_of_arcs` when there are no trading rows.
        Raises when the layout discipline (influence before trading) is
        violated, since Algorithm 1's split would then be wrong.
        """
        colors = self._array[:, 2]
        trading = np.flatnonzero(colors == COLOR_TRADING)
        if trading.size == 0:
            return self.number_of_arcs
        first = int(trading[0])
        if np.any(colors[first:] != COLOR_TRADING):
            raise SerializationError(
                "edge list violates the paper layout: an influence row "
                "appears after the first trading row"
            )
        return first

    def antecedent_rows(self) -> np.ndarray:
        """The influence block (the paper's ``Antecedent`` matrix)."""
        return self._array[: self.first_trading_row]

    def trading_rows(self) -> np.ndarray:
        """The trading block (the paper's ``Trade`` matrix)."""
        return self._array[self.first_trading_row :]

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_digraph(
        self,
        *,
        influence_color: Any = COLOR_INFLUENCE,
        trading_color: Any = COLOR_TRADING,
        include_nodes: Iterable[Node] | None = None,
    ) -> DiGraph:
        """Materialize a :class:`DiGraph` with the caller's color labels.

        ``include_nodes`` may add isolated nodes (the edge list alone
        cannot represent them unless they are in the index mapping, which
        they always are for lists built by :meth:`from_digraph`).
        """
        graph = DiGraph()
        for node in self._index_to_node:
            graph.add_node(node, self._node_colors.get(node))
        if include_nodes is not None:
            for node in include_nodes:
                graph.add_node(node, self._node_colors.get(node))
        for tail_ix, head_ix, code in self._array:
            color = influence_color if code == COLOR_INFLUENCE else trading_color
            graph.add_arc(
                self._index_to_node[int(tail_ix)],
                self._index_to_node[int(head_ix)],
                color,
            )
        return graph

    def __len__(self) -> int:
        return self.number_of_arcs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EdgeList arcs={self.number_of_arcs} "
            f"nodes={self.number_of_nodes} "
            f"influence={self.first_trading_row}>"
        )
