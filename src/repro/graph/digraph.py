"""Directed and undirected colored graph cores.

The paper models every network as a graph whose nodes and edges carry
*colors* (types).  This module provides the two in-memory structures that
every other subsystem builds on:

* :class:`DiGraph` — a directed graph whose arcs are keyed by
  ``(tail, head, color)``.  Two arcs with the same endpoints but different
  colors coexist (a company may both *invest in* and *trade with* the same
  counterparty), while re-adding an arc with an identical color is a no-op.
* :class:`UnGraph` — a minimal undirected graph used for the
  interdependence network *G1* (kinship / interlocking links) before it is
  contracted away by the fusion pipeline.

Both classes are deliberately dependency-free: ``networkx`` is only used in
the test suite as an independent reference implementation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping, Sequence
from typing import Any

from repro.errors import ArcNotFoundError, NodeNotFoundError

Node = Hashable

__all__ = ["DiGraph", "UnGraph", "Node"]


class DiGraph:
    """A directed graph with colored nodes and colored arcs.

    Nodes are arbitrary hashable identifiers.  Each node has an optional
    ``color`` (the paper uses ``Person`` / ``Company``) and a free-form
    attribute dictionary.  Each arc has a mandatory ``color`` (the paper
    uses ``Influence`` / ``Trading`` in the fused TPIIN, and finer-grained
    relationship types in the homogeneous source graphs).

    Example
    -------
    >>> g = DiGraph()
    >>> g.add_node("P1", color="Person")
    >>> g.add_node("C1", color="Company")
    >>> g.add_arc("P1", "C1", color="IN")
    True
    >>> g.out_degree("P1")
    1
    >>> sorted(g.successors("P1"))
    ['C1']
    """

    __slots__ = (
        "_succ",
        "_pred",
        "_node_color",
        "_node_attrs",
        "_arc_count",
        "_color_counts",
    )

    def __init__(self) -> None:
        # _succ[u][v] -> set of colors; _pred mirrors it for reverse walks.
        self._succ: dict[Node, dict[Node, set[Any]]] = {}
        self._pred: dict[Node, dict[Node, set[Any]]] = {}
        self._node_color: dict[Node, Any] = {}
        self._node_attrs: dict[Node, dict[str, Any]] = {}
        self._arc_count = 0
        # Per-color arc tallies so number_of_arcs(color) is O(1); every
        # mutation path (add_arc/add_arcs/remove_arc/remove_node) keeps
        # them in sync with the adjacency sets.
        self._color_counts: dict[Any, int] = {}

    # ------------------------------------------------------------------
    # node API
    # ------------------------------------------------------------------
    def add_node(self, node: Node, color: Any = None, **attrs: Any) -> None:
        """Add ``node`` (idempotent).

        Re-adding an existing node may refine its color (``None`` -> value)
        and merges attributes; it never silently changes an established
        color to a different one — that raises ``ValueError`` because a
        node that is both a ``Person`` and a ``Company`` would corrupt
        every downstream invariant.
        """
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}
            self._node_color[node] = color
            self._node_attrs[node] = dict(attrs)
            return
        existing = self._node_color[node]
        if color is not None:
            if existing is not None and existing != color:
                raise ValueError(
                    f"node {node!r} already has color {existing!r}; "
                    f"cannot recolor to {color!r}"
                )
            self._node_color[node] = color
        if attrs:
            self._node_attrs[node].update(attrs)

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def node_color(self, node: Node) -> Any:
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return self._node_color[node]

    def node_attrs(self, node: Node) -> dict[str, Any]:
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return self._node_attrs[node]

    def nodes(self, color: Any = None) -> Iterator[Node]:
        """Iterate nodes, optionally restricted to one node color."""
        if color is None:
            return iter(self._succ)
        return (n for n, c in self._node_color.items() if c == color)

    def number_of_nodes(self, color: Any = None) -> int:
        if color is None:
            return len(self._succ)
        return sum(1 for c in self._node_color.values() if c == color)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every arc incident to it."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for head, colors in self._succ[node].items():
            self._arc_count -= len(colors)
            for c in colors:
                self._color_counts[c] -= 1
            del self._pred[head][node]
        for tail, colors in self._pred[node].items():
            if tail != node:  # self-loop colors already subtracted above
                self._arc_count -= len(colors)
                for c in colors:
                    self._color_counts[c] -= 1
                del self._succ[tail][node]
        del self._succ[node]
        del self._pred[node]
        del self._node_color[node]
        del self._node_attrs[node]

    # ------------------------------------------------------------------
    # arc API
    # ------------------------------------------------------------------
    def add_arc(self, tail: Node, head: Node, color: Any) -> bool:
        """Add the arc ``tail -> head`` with ``color``.

        Endpoints are created on demand (with no color).  Returns ``True``
        if the arc was new and ``False`` if an identical arc already
        existed.  Arc colors must not be ``None`` — an uncolored arc has
        no meaning in the paper's model.
        """
        if color is None:
            raise ValueError("arc color must not be None")
        self.add_node(tail)
        self.add_node(head)
        colors = self._succ[tail].setdefault(head, set())
        if color in colors:
            return False
        colors.add(color)
        self._pred[head].setdefault(tail, set()).add(color)
        self._arc_count += 1
        self._color_counts[color] = self._color_counts.get(color, 0) + 1
        return True

    def add_arcs(self, pairs: Iterable[tuple[Node, Node]], color: Any) -> int:
        """Bulk :meth:`add_arc` for one color; returns the number added.

        Skips per-arc method dispatch — the Table-1 sweep inserts up to
        ~600k trading arcs per probability setting, where the fast path
        matters.  Endpoints are created on demand (uncolored).
        """
        if color is None:
            raise ValueError("arc color must not be None")
        succ = self._succ
        pred = self._pred
        added = 0
        for tail, head in pairs:
            if tail not in succ:
                self.add_node(tail)
            if head not in succ:
                self.add_node(head)
            colors = succ[tail].setdefault(head, set())
            if color not in colors:
                colors.add(color)
                pred[head].setdefault(tail, set()).add(color)
                added += 1
        self._arc_count += added
        if added:
            self._color_counts[color] = self._color_counts.get(color, 0) + added
        return added

    def has_arc(self, tail: Node, head: Node, color: Any = None) -> bool:
        colors = self._succ.get(tail, {}).get(head)
        if not colors:
            return False
        return True if color is None else color in colors

    def arc_colors(self, tail: Node, head: Node) -> frozenset[Any]:
        """Return the (possibly empty) set of colors on ``tail -> head``."""
        return frozenset(self._succ.get(tail, {}).get(head, ()))

    def remove_arc(self, tail: Node, head: Node, color: Any = None) -> None:
        """Remove one colored arc, or all arcs ``tail -> head`` if no color."""
        colors = self._succ.get(tail, {}).get(head)
        if not colors or (color is not None and color not in colors):
            raise ArcNotFoundError(tail, head, color)
        if color is None:
            for c in colors:
                self._color_counts[c] -= 1
            removed = len(colors)
            del self._succ[tail][head]
            del self._pred[head][tail]
            self._arc_count -= removed
            return
        colors.discard(color)
        self._pred[head][tail].discard(color)
        if not colors:
            del self._succ[tail][head]
            del self._pred[head][tail]
        self._arc_count -= 1
        self._color_counts[color] -= 1

    def encoded_out_rows(
        self, order: Sequence[Node], index: Mapping[Node, int], color: Any
    ) -> tuple[list[int], list[int]]:
        """Bulk successor extraction for CSR freezing: ``(counts, heads)``.

        ``counts[i]`` is the ``color`` out-degree of ``order[i]`` and
        ``heads`` concatenates every row's successor ids (under
        ``index``) in ascending id order.  ``order`` must contain graph
        nodes and ``index`` must cover every successor.  One bulk call
        per color replaces a per-arc iterator protocol round-trip, which
        is what dominates freezing a large graph.
        """
        succ = self._succ
        counts = [0] * len(order)
        heads: list[int] = []
        extend = heads.extend
        for i, node in enumerate(order):
            nbrs = succ[node]
            if not nbrs:
                continue
            row = [index[h] for h, cs in nbrs.items() if color in cs]
            if row:
                row.sort()
                counts[i] = len(row)
                extend(row)
        return counts, heads

    def arcs(self, color: Any = None) -> Iterator[tuple[Node, Node, Any]]:
        """Iterate ``(tail, head, color)`` triples."""
        for tail, heads in self._succ.items():
            for head, colors in heads.items():
                for c in colors:
                    if color is None or c == color:
                        yield (tail, head, c)

    def number_of_arcs(self, color: Any = None) -> int:
        if color is None:
            return self._arc_count
        return self._color_counts.get(color, 0)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def successors(self, node: Node, color: Any = None) -> Iterator[Node]:
        if node not in self._succ:
            raise NodeNotFoundError(node)
        if color is None:
            return iter(self._succ[node])
        return (h for h, cs in self._succ[node].items() if color in cs)

    def predecessors(self, node: Node, color: Any = None) -> Iterator[Node]:
        if node not in self._pred:
            raise NodeNotFoundError(node)
        if color is None:
            return iter(self._pred[node])
        return (t for t, cs in self._pred[node].items() if color in cs)

    def out_arcs(self, node: Node) -> Iterator[tuple[Node, Node, Any]]:
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for head, colors in self._succ[node].items():
            for c in colors:
                yield (node, head, c)

    def in_arcs(self, node: Node) -> Iterator[tuple[Node, Node, Any]]:
        if node not in self._pred:
            raise NodeNotFoundError(node)
        for tail, colors in self._pred[node].items():
            for c in colors:
                yield (tail, node, c)

    def out_degree(self, node: Node, color: Any = None) -> int:
        if node not in self._succ:
            raise NodeNotFoundError(node)
        if color is None:
            return sum(len(cs) for cs in self._succ[node].values())
        return sum(1 for cs in self._succ[node].values() if color in cs)

    def in_degree(self, node: Node, color: Any = None) -> int:
        if node not in self._pred:
            raise NodeNotFoundError(node)
        if color is None:
            return sum(len(cs) for cs in self._pred[node].values())
        return sum(1 for cs in self._pred[node].values() if color in cs)

    def degree(self, node: Node, color: Any = None) -> int:
        return self.in_degree(node, color) + self.out_degree(node, color)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "DiGraph":
        clone = DiGraph()
        for node in self._succ:
            clone.add_node(node, self._node_color[node], **self._node_attrs[node])
        for tail, head, color in self.arcs():
            clone.add_arc(tail, head, color)
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Induced subgraph on ``nodes`` (unknown ids are ignored)."""
        keep = {n for n in nodes if n in self._succ}
        sub = DiGraph()
        for node in keep:
            sub.add_node(node, self._node_color[node], **self._node_attrs[node])
        for tail in keep:
            for head, colors in self._succ[tail].items():
                if head in keep:
                    for c in colors:
                        sub.add_arc(tail, head, c)
        return sub

    def color_subgraph(self, arc_color: Any, *, keep_all_nodes: bool = True) -> "DiGraph":
        """Subgraph containing only arcs of ``arc_color``.

        With ``keep_all_nodes`` (the default) every node survives even if
        isolated, which matches how Algorithm 1 splits the TPIIN edge list
        into an antecedent part and a trading part over the same node set.
        """
        sub = DiGraph()
        if keep_all_nodes:
            for node in self._succ:
                sub.add_node(node, self._node_color[node], **self._node_attrs[node])
        for tail, head, color in self.arcs(arc_color):
            if not keep_all_nodes:
                sub.add_node(tail, self._node_color[tail])
                sub.add_node(head, self._node_color[head])
            sub.add_arc(tail, head, color)
        return sub

    def reversed(self) -> "DiGraph":
        """A copy with every arc direction flipped (colors preserved)."""
        rev = DiGraph()
        for node in self._succ:
            rev.add_node(node, self._node_color[node], **self._node_attrs[node])
        for tail, head, color in self.arcs():
            rev.add_arc(head, tail, color)
        return rev

    # ------------------------------------------------------------------
    # pickling (__slots__ classes need explicit state support; the
    # parallel detector ships subTPIINs to worker processes)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DiGraph nodes={self.number_of_nodes()} "
            f"arcs={self.number_of_arcs()}>"
        )


class UnGraph:
    """A minimal undirected graph with colored edges.

    Used for the interdependence network *G1*, whose kinship and
    interlocking links are unidirectional (symmetric) in the paper.  The
    fusion pipeline contracts these edges away, so only a small API is
    needed: add/query/iterate and neighborhood access.
    """

    __slots__ = ("_adj", "_node_color", "_edge_count")

    def __init__(self) -> None:
        self._adj: dict[Node, dict[Node, set[Any]]] = {}
        self._node_color: dict[Node, Any] = {}
        self._edge_count = 0

    def add_node(self, node: Node, color: Any = None) -> None:
        if node not in self._adj:
            self._adj[node] = {}
            self._node_color[node] = color
        elif color is not None:
            existing = self._node_color[node]
            if existing is not None and existing != color:
                raise ValueError(
                    f"node {node!r} already has color {existing!r}; "
                    f"cannot recolor to {color!r}"
                )
            self._node_color[node] = color

    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def node_color(self, node: Node) -> Any:
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return self._node_color[node]

    def nodes(self) -> Iterator[Node]:
        return iter(self._adj)

    def number_of_nodes(self) -> int:
        return len(self._adj)

    def add_edge(self, u: Node, v: Node, color: Any) -> bool:
        """Add the undirected edge ``{u, v}``; returns ``True`` if new."""
        if color is None:
            raise ValueError("edge color must not be None")
        if u == v:
            raise ValueError(f"self-loop on {u!r}: interdependence links join distinct persons")
        self.add_node(u)
        self.add_node(v)
        colors = self._adj[u].setdefault(v, set())
        if color in colors:
            return False
        colors.add(color)
        self._adj[v].setdefault(u, set()).add(color)
        self._edge_count += 1
        return True

    def has_edge(self, u: Node, v: Node, color: Any = None) -> bool:
        colors = self._adj.get(u, {}).get(v)
        if not colors:
            return False
        return True if color is None else color in colors

    def edge_colors(self, u: Node, v: Node) -> frozenset[Any]:
        return frozenset(self._adj.get(u, {}).get(v, ()))

    def edges(self, color: Any = None) -> Iterator[tuple[Node, Node, Any]]:
        """Iterate each undirected edge once as ``(u, v, color)``."""
        seen: set[frozenset[Node]] = set()
        for u, neighbors in self._adj.items():
            for v, colors in neighbors.items():
                key = frozenset((u, v))
                if key in seen:
                    continue
                seen.add(key)
                for c in colors:
                    if color is None or c == color:
                        yield (u, v, c)

    def number_of_edges(self, color: Any = None) -> int:
        if color is None:
            return self._edge_count
        return sum(1 for _ in self.edges(color))

    def neighbors(self, node: Node) -> Iterator[Node]:
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return iter(self._adj[node])

    def degree(self, node: Node) -> int:
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return sum(len(cs) for cs in self._adj[node].values())

    def connected_components(self) -> list[set[Node]]:
        """Connected components (each component is a set of nodes)."""
        seen: set[Node] = set()
        components: list[set[Node]] = []
        for start in self._adj:
            if start in seen:
                continue
            component = {start}
            stack = [start]
            seen.add(start)
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        component.add(v)
                        stack.append(v)
            components.append(component)
        return components

    def __getstate__(self) -> dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<UnGraph nodes={self.number_of_nodes()} "
            f"edges={self.number_of_edges()}>"
        )
