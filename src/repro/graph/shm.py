"""POSIX shared-memory segment lifecycle for zero-copy worker attach.

The shared-memory parallel engine exports one frozen CSR adjacency
(see :meth:`repro.graph.csr.CSRGraph.to_shared`) into a single
``multiprocessing.shared_memory`` segment; every worker process then
*attaches* to the same physical pages instead of receiving a pickled
copy.  :class:`SharedSegment` wraps the stdlib ``SharedMemory`` object
with the lifecycle discipline that makes this safe:

* **Creation** keeps the stdlib resource-tracker registration.  The
  tracker is a separate watchdog process that unlinks every registered
  segment when its owner dies — so a crash, an unhandled exception or a
  ``SIGTERM`` that skips ``atexit`` still cannot leak ``/dev/shm``
  entries.  An :mod:`atexit` hook and context-manager support cover the
  orderly paths without waiting for the tracker.
* **Attachment** (in a worker) leaves the tracker state alone.  Worker
  processes spawned by :mod:`multiprocessing` — fork *and* spawn alike
  — share the creator's tracker process, whose cache is a name *set*:
  the attach-side re-registration Python 3.11 performs is an idempotent
  no-op there, and the single entry is removed exactly once, by the
  owner's :meth:`SharedSegment.unlink`.  (Explicitly unregistering on
  attach — a common workaround for *unrelated* processes with trackers
  of their own — would strip the owner's crash net here.)
* **Close/unlink are idempotent** and split owner from attacher: every
  process closes its own mapping; only the creating process unlinks the
  name.

Segment names carry a recognizable ``repro_shm_`` prefix plus the
creator pid so leak checks (tests, benchmarks) can scan ``/dev/shm``
for strays.  The process-wide ``repro_shm_bytes`` gauge tracks the
bytes currently owned by this process.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from multiprocessing import shared_memory
from types import TracebackType

from repro.obs.registry import get_registry

__all__ = ["SHM_NAME_PREFIX", "SharedSegment", "live_owned_segments"]

#: Public (``/dev/shm``) name prefix of every segment this module creates.
SHM_NAME_PREFIX = "repro_shm_"

_GAUGE_NAME = "repro_shm_bytes"
_GAUGE_HELP = "Bytes of POSIX shared memory currently owned by this process."

_registry_lock = threading.Lock()
_owned: dict[str, "SharedSegment"] = {}


def live_owned_segments() -> list[str]:
    """Names of segments this process created and has not yet unlinked."""
    with _registry_lock:
        return sorted(_owned)


def _cleanup_owned_at_exit() -> None:
    with _registry_lock:
        leftovers = list(_owned.values())
    for segment in leftovers:
        try:
            segment.close()
        except BufferError:  # view still pinned at exit; unlink anyway
            pass
        segment.unlink()


atexit.register(_cleanup_owned_at_exit)


class SharedSegment:
    """One POSIX shared-memory segment, created or attached.

    Use :meth:`create` in the exporting process and :meth:`attach` in
    workers.  Both forms are context managers: ``__exit__`` closes the
    local mapping, and additionally unlinks the name when this process
    is the owner.
    """

    __slots__ = ("_shm", "_size", "_owner", "_closed", "_unlinked")

    def __init__(self, shm: shared_memory.SharedMemory, *, owner: bool) -> None:
        self._shm = shm
        self._size = shm.size
        self._owner = owner
        self._closed = False
        self._unlinked = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, size: int) -> "SharedSegment":
        """Create a new segment of at least ``size`` bytes (owner side).

        The segment stays registered with the stdlib resource tracker:
        if this process dies without unlinking — crash, ``SIGTERM``,
        ``os._exit`` — the tracker unlinks it post-mortem.
        """
        name = f"{SHM_NAME_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, size))
        segment = cls(shm, owner=True)
        with _registry_lock:
            _owned[segment.name] = segment
        get_registry().gauge(_GAUGE_NAME, help=_GAUGE_HELP).inc(segment.size)
        return segment

    @classmethod
    def attach(cls, name: str) -> "SharedSegment":
        """Attach to an existing segment by public name (worker side).

        Python 3.11 re-registers the name with the resource tracker on
        attach; in a :mod:`multiprocessing` worker that tracker is the
        creator's own (its cache is a set, so this is a no-op) and the
        owner's unlink removes the single entry.  Do not attach from a
        process with an unrelated resource tracker — its exit would
        unlink the segment out from under the owner.
        """
        return cls(shared_memory.SharedMemory(name=name), owner=False)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Public segment name (the ``/dev/shm`` basename on Linux)."""
        return self._shm.name

    @property
    def size(self) -> int:
        """Mapped size in bytes (may exceed the requested size)."""
        return self._size

    @property
    def owner(self) -> bool:
        """Whether this process created (and must unlink) the segment."""
        return self._owner

    @property
    def buf(self) -> memoryview:
        """The raw byte view of the mapping."""
        if self._closed:
            raise ValueError(f"shared segment {self.name!r} is closed")
        buf = self._shm.buf
        assert buf is not None
        return buf

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (idempotent).

        Every derived :class:`memoryview` over :attr:`buf` must be
        released first or the underlying ``mmap`` refuses to close.
        """
        if self._closed:
            return
        self._shm.close()
        self._closed = True

    def unlink(self) -> None:
        """Remove the segment name (owner only, idempotent)."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        with _registry_lock:
            _owned.pop(self.name, None)
        get_registry().gauge(_GAUGE_NAME, help=_GAUGE_HELP).dec(self._size)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass

    def __enter__(self) -> "SharedSegment":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self._owner else "attached"
        state = "closed" if self._closed else "open"
        return f"<SharedSegment {self.name!r} {self._size}B {role} {state}>"
