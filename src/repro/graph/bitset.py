"""Packed-bit root-ancestor index for common-antecedent tests.

The decisive question of the whole mining problem is: *do two companies
share an antecedent?*  In a DAG, two nodes share an ancestor (allowing a
node to count as its own ancestor) if and only if they share an
indegree-zero **root** ancestor, because every ancestor is itself reached
from some root.  The fast mining engine therefore precomputes, for every
node, the set of roots that reach it, packed into a fixed-width bit row,
and answers each of the hundreds of thousands of Table-1 trading-arc
queries with one vectorized ``AND``.

Memory: the provincial network has ~2,100 roots and ~4,600 nodes, i.e.
roughly ``4600 * ceil(2100 / 8)`` = 1.2 MB packed.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.errors import NodeNotFoundError
from repro.graph.dag import topological_order
from repro.graph.digraph import DiGraph, Node

__all__ = ["RootAncestorIndex"]


class RootAncestorIndex:
    """For each node of a DAG, the packed set of its root ancestors.

    A root counts as its own ancestor, so ``common_roots(r, x)`` is
    non-empty whenever root ``r`` reaches ``x`` — including ``x == r``.
    """

    def __init__(self, graph: DiGraph, color: Any = None) -> None:
        self._nodes: list[Node] = list(graph.nodes())
        self._node_index: dict[Node, int] = {n: i for i, n in enumerate(self._nodes)}
        self._roots: list[Node] = [
            n for n in self._nodes if graph.in_degree(n, color) == 0
        ]
        self._root_index: dict[Node, int] = {r: i for i, r in enumerate(self._roots)}
        n_nodes = len(self._nodes)
        n_roots = len(self._roots)
        width = max(1, -(-n_roots // 8))  # ceil-div; keep >=1 so rows exist
        bits = np.zeros((n_nodes, n_roots if n_roots else 1), dtype=bool)
        for root in self._roots:
            bits[self._node_index[root], self._root_index[root]] = True
        # One topological sweep ORs each node's row into its successors.
        for node in topological_order(graph, color):
            row = bits[self._node_index[node]]
            for nxt in graph.successors(node, color):
                bits[self._node_index[nxt]] |= row
        self._packed = np.packbits(bits, axis=1)
        assert self._packed.shape[1] <= max(width, 1)

    # ------------------------------------------------------------------
    @property
    def roots(self) -> list[Node]:
        return list(self._roots)

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes)

    def row(self, node: Node) -> np.ndarray:
        """The packed root-ancestor bit row of ``node``."""
        try:
            return self._packed[self._node_index[node]]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def root_ancestors(self, node: Node) -> set[Node]:
        """The unpacked set of roots that reach ``node``."""
        unpacked = np.unpackbits(self.row(node))[: len(self._roots)]
        return {self._roots[i] for i in np.flatnonzero(unpacked)}

    def shares_root(self, a: Node, b: Node) -> bool:
        """True when ``a`` and ``b`` have a common root ancestor."""
        return bool(np.any(self.row(a) & self.row(b)))

    def common_roots(self, a: Node, b: Node) -> set[Node]:
        both = np.unpackbits(self.row(a) & self.row(b))[: len(self._roots)]
        return {self._roots[i] for i in np.flatnonzero(both)}

    # ------------------------------------------------------------------
    def shares_root_bulk(
        self, tails: Sequence[Node], heads: Sequence[Node], *, chunk: int = 65536
    ) -> np.ndarray:
        """Vectorized :meth:`shares_root` over parallel arc endpoint lists.

        Returns a boolean vector of length ``len(tails)``.  This is the
        hot path of the Table-1 sweep: at trading probability 0.1 the
        provincial TPIIN holds ~600k trading arcs, each needing one
        common-antecedent test.
        """
        if len(tails) != len(heads):
            raise ValueError("tails and heads must have equal length")
        tail_ix = np.fromiter(
            (self._node_index[t] for t in tails), dtype=np.int64, count=len(tails)
        )
        head_ix = np.fromiter(
            (self._node_index[h] for h in heads), dtype=np.int64, count=len(heads)
        )
        out = np.empty(len(tails), dtype=bool)
        for lo in range(0, len(tails), chunk):
            hi = min(lo + chunk, len(tails))
            rows = self._packed[tail_ix[lo:hi]] & self._packed[head_ix[lo:hi]]
            out[lo:hi] = rows.any(axis=1)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RootAncestorIndex nodes={len(self._nodes)} "
            f"roots={len(self._roots)}>"
        )
