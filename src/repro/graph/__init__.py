"""Graph substrate: colored digraphs and the algorithms the paper cites.

Everything in this package is implemented from scratch (no ``networkx``
at runtime): the colored digraph core, DFS/BFS and the ``findsubgraph``
weak-component extraction of Appendix B, Tarjan's SCC algorithm [26], DAG
utilities backing Property 1, the paper's ``r x 3`` edge-list format, a
packed-bit root-ancestor index used by the fast mining engine, and the
frozen color-partitioned CSR kernel the mining hot paths run on.
"""

from repro.graph.bitset import RootAncestorIndex
from repro.graph.csr import CSRGraph
from repro.graph.dag import (
    ancestor_closure,
    count_paths_from_roots,
    enumerate_paths_from,
    is_dag,
    leaves,
    roots,
    topological_order,
)
from repro.graph.digraph import DiGraph, Node, UnGraph
from repro.graph.edgelist import COLOR_INFLUENCE, COLOR_TRADING, EdgeList
from repro.graph.tarjan import nontrivial_sccs, strongly_connected_components
from repro.graph.traversal import (
    ancestors,
    bfs_order,
    descendants,
    dfs_preorder,
    find_subgraphs,
    has_path,
    weakly_connected_components,
)

__all__ = [
    "CSRGraph",
    "DiGraph",
    "UnGraph",
    "Node",
    "EdgeList",
    "COLOR_INFLUENCE",
    "COLOR_TRADING",
    "RootAncestorIndex",
    "ancestor_closure",
    "ancestors",
    "bfs_order",
    "count_paths_from_roots",
    "descendants",
    "dfs_preorder",
    "enumerate_paths_from",
    "find_subgraphs",
    "has_path",
    "is_dag",
    "leaves",
    "nontrivial_sccs",
    "roots",
    "strongly_connected_components",
    "topological_order",
    "weakly_connected_components",
]
