"""Frozen, interned, color-partitioned CSR adjacency (the mining kernel).

The hash-based :class:`~repro.graph.digraph.DiGraph` is the right
structure while a network is being *built* — arcs arrive in any order,
colors accumulate per endpoint pair — but it is the wrong structure to
*mine*: Algorithm 2's DFS re-reads each node's successor dictionary on
every visit, pays a string-keyed sort per step, and pickles as a deep
dict-of-dict-of-set when shipped to worker processes.

:class:`CSRGraph` freezes a finished graph into compressed sparse rows:

* nodes are **interned** to dense ``int`` ids, assigned in ``str``-sorted
  order so that integer order reproduces the ``sorted(..., key=str)``
  determinism of the hash-based traversals bit for bit;
* adjacency is **partitioned by arc color** — one forward and one
  reverse ``(offsets, targets)`` array pair per color, each row sorted
  once at freeze time, so a DFS step is an index range scan with no
  hashing, no sorting and no per-visit allocation;
* the ``decode`` table maps ids back to the original node objects, and
  the buffers are plain :mod:`array` arrays, which pickle as compact
  byte blobs (the parallel engine's IPC payload).

A frozen graph is immutable; re-freeze after mutating the source.
"""

from __future__ import annotations

import pickle
import struct
from array import array
from bisect import bisect_left
from collections.abc import Iterable, Iterator, Sequence
from typing import Any, Union

import numpy as np

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, Node
from repro.graph.shm import SharedSegment

__all__ = ["CSRGraph", "IntBuffer"]

# 64-bit signed targets/offsets: node counts and arc counts both fit with
# room to spare, and 'q' slices exchange cleanly with plain ints.
_TYPECODE = "q"

#: A CSR buffer: an owned ``array('q')`` after :meth:`CSRGraph.freeze`, or
#: a zero-copy ``memoryview`` (cast to ``'q'``) over a shared segment
#: after :meth:`CSRGraph.from_shared`.  Both index, slice and iterate as
#: plain ints, which is all the kernels do.
IntBuffer = Union["array[int]", memoryview]


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


class CSRGraph:
    """An immutable CSR snapshot of a colored :class:`DiGraph`.

    Construction goes through :meth:`freeze`.  Every query is available
    both in *id space* (dense ints, for kernels) and in *node space*
    (original identifiers, for tests and round-trips).
    """

    __slots__ = (
        "_decode",
        "_encode",
        "_node_colors",
        "_colors",
        "_out_offsets",
        "_out_targets",
        "_in_offsets",
        "_in_targets",
    )

    def __init__(
        self,
        decode: tuple[Node, ...],
        node_colors: tuple[Any, ...],
        colors: tuple[Any, ...],
        out_offsets: dict[Any, IntBuffer],
        out_targets: dict[Any, IntBuffer],
        in_offsets: dict[Any, IntBuffer],
        in_targets: dict[Any, IntBuffer],
    ) -> None:
        self._decode = decode
        self._encode: dict[Node, int] = {n: i for i, n in enumerate(decode)}
        self._node_colors = node_colors
        self._colors = colors
        self._out_offsets = out_offsets
        self._out_targets = out_targets
        self._in_offsets = in_offsets
        self._in_targets = in_targets

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def freeze(
        cls, graph: DiGraph, colors: Sequence[Any] | None = None
    ) -> "CSRGraph":
        """Intern ``graph`` into a frozen CSR snapshot.

        ``colors`` selects (and orders) the arc-color partitions; by
        default every color present in the graph is kept, in
        ``str``-sorted order.  Arcs of unselected colors are dropped —
        freezing the influence partition alone is how the path engines
        avoid paying for trading arcs they never walk.
        """
        decode = tuple(sorted(graph.nodes(), key=str))
        encode = {n: i for i, n in enumerate(decode)}
        node_colors = tuple(graph.node_color(n) for n in decode)
        if colors is None:
            palette = tuple(sorted({c for _, _, c in graph.arcs()}, key=str))
        else:
            palette = tuple(colors)

        n = len(decode)
        node_range = np.arange(n, dtype=np.int64)
        out_offsets: dict[Any, IntBuffer] = {}
        out_targets: dict[Any, IntBuffer] = {}
        in_offsets: dict[Any, IntBuffer] = {}
        in_targets: dict[Any, IntBuffer] = {}
        for color in palette:
            # One bulk pass yields the out-CSR directly; the in-CSR is a
            # stable (head, tail) re-sort of the same arc list in numpy,
            # skipping a second per-arc Python pass entirely.
            counts, flat = graph.encoded_out_rows(decode, encode, color)
            deg = np.asarray(counts, dtype=np.int64)
            heads = np.asarray(flat, dtype=np.int64)
            out_offs = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(deg, out=out_offs[1:])
            tails = np.repeat(node_range, deg)
            in_deg = np.bincount(heads, minlength=n)
            in_offs = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(in_deg, out=in_offs[1:])
            in_tgts = tails[np.lexsort((tails, heads))]
            out_offsets[color] = _from_int64(out_offs)
            out_targets[color] = _from_int64(heads)
            in_offsets[color] = _from_int64(in_offs)
            in_targets[color] = _from_int64(in_tgts)
        return cls(
            decode,
            node_colors,
            palette,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        )

    @classmethod
    def freeze_parts(
        cls,
        nodes: Iterable[tuple[Node, Any]],
        arcs: Iterable[tuple[Node, Node, Any]],
        colors: Sequence[Any],
    ) -> "CSRGraph":
        """Freeze directly from ``(node, color)`` and ``(tail, head, color)``.

        Skips the intermediate :class:`DiGraph` — the detection engines
        slice one parent graph into per-component kernels, and building a
        throwaway dict-of-dict graph per slice just to re-read it here
        would dominate the freeze.  Arc colors must be drawn from
        ``colors``; interning and row layout are identical to
        :meth:`freeze` on the equivalent graph.
        """
        node_list = sorted(nodes, key=lambda pair: str(pair[0]))
        decode = tuple(node for node, _ in node_list)
        encode = {n: i for i, n in enumerate(decode)}
        node_colors = tuple(color for _, color in node_list)
        palette = tuple(colors)

        n = len(decode)
        out_rows: dict[Any, list[list[int]]] = {
            c: [[] for _ in range(n)] for c in palette
        }
        in_rows: dict[Any, list[list[int]]] = {
            c: [[] for _ in range(n)] for c in palette
        }
        for tail, head, color in arcs:
            t = encode[tail]
            h = encode[head]
            out_rows[color][t].append(h)
            in_rows[color][h].append(t)

        out_offsets: dict[Any, IntBuffer] = {}
        out_targets: dict[Any, IntBuffer] = {}
        in_offsets: dict[Any, IntBuffer] = {}
        in_targets: dict[Any, IntBuffer] = {}
        for color in palette:
            out_offsets[color], out_targets[color] = _pack(out_rows[color])
            in_offsets[color], in_targets[color] = _pack(in_rows[color])
        return cls(
            decode,
            node_colors,
            palette,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        )

    # ------------------------------------------------------------------
    # id space (kernel API)
    # ------------------------------------------------------------------
    @property
    def decode_table(self) -> tuple[Node, ...]:
        """Dense id -> original node; index directly in hot loops."""
        return self._decode

    def encode(self, node: Node) -> int:
        """Original node -> dense id."""
        try:
            return self._encode[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def decode(self, node_id: int) -> Node:
        return self._decode[node_id]

    def out_adjacency(self, color: Any) -> tuple[IntBuffer, IntBuffer]:
        """The forward ``(offsets, targets)`` pair of one color partition.

        Successors of id ``u`` are ``targets[offsets[u]:offsets[u + 1]]``,
        sorted ascending (= ``str``-sorted original order).
        """
        return self._out_offsets[self._check_color(color)], self._out_targets[color]

    def in_adjacency(self, color: Any) -> tuple[IntBuffer, IntBuffer]:
        """The reverse ``(offsets, targets)`` pair of one color partition."""
        return self._in_offsets[self._check_color(color)], self._in_targets[color]

    def out_degree_id(self, node_id: int, color: Any = None) -> int:
        if color is None:
            return sum(
                o[node_id + 1] - o[node_id] for o in self._out_offsets.values()
            )
        offsets = self._out_offsets[self._check_color(color)]
        return offsets[node_id + 1] - offsets[node_id]

    def in_degree_id(self, node_id: int, color: Any = None) -> int:
        if color is None:
            return sum(
                o[node_id + 1] - o[node_id] for o in self._in_offsets.values()
            )
        offsets = self._in_offsets[self._check_color(color)]
        return offsets[node_id + 1] - offsets[node_id]

    def root_ids(self, color: Any) -> list[int]:
        """Ids with zero in-degree in one color partition, ascending."""
        offsets = self._in_offsets[self._check_color(color)]
        return [u for u in range(len(self._decode)) if offsets[u] == offsets[u + 1]]

    def node_color_id(self, node_id: int) -> Any:
        return self._node_colors[node_id]

    # ------------------------------------------------------------------
    # node space (compatibility / test API)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._decode)

    def __contains__(self, node: Node) -> bool:
        return node in self._encode

    def number_of_nodes(self) -> int:
        return len(self._decode)

    def nodes(self) -> Iterator[Node]:
        return iter(self._decode)

    def node_color(self, node: Node) -> Any:
        return self._node_colors[self.encode(node)]

    @property
    def arc_color_domain(self) -> tuple[Any, ...]:
        """The frozen color partitions, in partition order."""
        return self._colors

    def number_of_arcs(self, color: Any = None) -> int:
        if color is None:
            return sum(len(t) for t in self._out_targets.values())
        return len(self._out_targets[self._check_color(color)])

    def successors(self, node: Node, color: Any) -> Iterator[Node]:
        offsets, targets = self.out_adjacency(color)
        u = self.encode(node)
        decode = self._decode
        return (decode[targets[i]] for i in range(offsets[u], offsets[u + 1]))

    def predecessors(self, node: Node, color: Any) -> Iterator[Node]:
        offsets, targets = self.in_adjacency(color)
        u = self.encode(node)
        decode = self._decode
        return (decode[targets[i]] for i in range(offsets[u], offsets[u + 1]))

    def out_degree(self, node: Node, color: Any = None) -> int:
        return self.out_degree_id(self.encode(node), color)

    def in_degree(self, node: Node, color: Any = None) -> int:
        return self.in_degree_id(self.encode(node), color)

    def has_arc(self, tail: Node, head: Node, color: Any = None) -> bool:
        t = self.encode(tail)
        h = self.encode(head)
        palette = self._colors if color is None else (self._check_color(color),)
        for c in palette:
            offsets, targets = self._out_offsets[c], self._out_targets[c]
            lo, hi = offsets[t], offsets[t + 1]
            i = bisect_left(targets, h, lo, hi)
            if i < hi and targets[i] == h:
                return True
        return False

    def arc_colors(self, tail: Node, head: Node) -> frozenset[Any]:
        """Frozen colors present on ``tail -> head`` (parallel-arc aware)."""
        return frozenset(c for c in self._colors if self.has_arc(tail, head, c))

    def to_digraph(self) -> DiGraph:
        """Thaw back into a mutable :class:`DiGraph` (round-trip check)."""
        graph = DiGraph()
        for node, color in zip(self._decode, self._node_colors):
            graph.add_node(node, color)
        decode = self._decode
        for c in self._colors:
            offsets, targets = self._out_offsets[c], self._out_targets[c]
            for u in range(len(decode)):
                for i in range(offsets[u], offsets[u + 1]):
                    graph.add_arc(decode[u], decode[targets[i]], c)
        return graph

    @property
    def nbytes(self) -> int:
        """Approximate buffer payload (offset + target arrays only)."""
        buffers = (
            list(self._out_offsets.values())
            + list(self._out_targets.values())
            + list(self._in_offsets.values())
            + list(self._in_targets.values())
        )
        return sum(a.itemsize * len(a) for a in buffers)

    # ------------------------------------------------------------------
    # shared memory (zero-copy worker attach)
    # ------------------------------------------------------------------
    def to_shared(self) -> SharedSegment:
        """Export this graph into one shared-memory segment (owner side).

        Layout: an 8-byte little-endian pickle length, the pickled meta
        blob (decode table, node colors, palette, buffer lengths), then
        — 8-byte aligned — every CSR buffer concatenated as raw ``'q'``
        items in ``(out_offsets, out_targets, in_offsets, in_targets)``
        order per color.  Workers rebuild the graph with
        :meth:`from_shared`; only the meta blob is copied, the adjacency
        stays in the segment.

        The caller owns the returned segment: close + unlink it (or use
        it as a context manager) once every worker has detached.
        """
        order: list[IntBuffer] = []
        for color in self._colors:
            order.append(self._out_offsets[color])
            order.append(self._out_targets[color])
            order.append(self._in_offsets[color])
            order.append(self._in_targets[color])
        lengths = [len(buf) for buf in order]
        meta = pickle.dumps(
            {
                "decode": self._decode,
                "node_colors": self._node_colors,
                "colors": self._colors,
                "lengths": lengths,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        data_start = _align8(8 + len(meta))
        segment = SharedSegment.create(data_start + 8 * sum(lengths))
        buf = segment.buf
        struct.pack_into("<q", buf, 0, len(meta))
        buf[8 : 8 + len(meta)] = meta
        position = data_start
        for source in order:
            nbytes = 8 * len(source)
            buf[position : position + nbytes] = memoryview(source).cast("B")
            position += nbytes
        return segment

    @classmethod
    def from_shared(cls, segment: SharedSegment) -> "CSRGraph":
        """Attach to an exported graph without copying the adjacency.

        The returned graph's CSR buffers are ``memoryview`` slices over
        the segment — drop every reference to the graph before closing
        the segment, and do not pickle it (re-attach in each process
        instead).
        """
        buf = segment.buf
        (meta_len,) = struct.unpack_from("<q", buf, 0)
        meta = pickle.loads(bytes(buf[8 : 8 + meta_len]))
        lengths: list[int] = meta["lengths"]
        data_start = _align8(8 + meta_len)
        items = buf[data_start : data_start + 8 * sum(lengths)].cast(_TYPECODE)
        views: list[memoryview] = []
        position = 0
        for length in lengths:
            views.append(items[position : position + length])
            position += length
        colors: tuple[Any, ...] = meta["colors"]
        out_offsets: dict[Any, IntBuffer] = {}
        out_targets: dict[Any, IntBuffer] = {}
        in_offsets: dict[Any, IntBuffer] = {}
        in_targets: dict[Any, IntBuffer] = {}
        cursor = iter(views)
        for color in colors:
            out_offsets[color] = next(cursor)
            out_targets[color] = next(cursor)
            in_offsets[color] = next(cursor)
            in_targets[color] = next(cursor)
        return cls(
            meta["decode"],
            meta["node_colors"],
            colors,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        )

    # ------------------------------------------------------------------
    def _check_color(self, color: Any) -> Any:
        if color not in self._out_offsets:
            raise ValueError(
                f"arc color {color!r} was not frozen into this CSRGraph "
                f"(frozen partitions: {list(self._colors)!r})"
            )
        return color

    # __slots__ classes need explicit pickle support; the parallel
    # detector ships frozen subTPIINs to worker processes.
    def __getstate__(self) -> dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CSRGraph nodes={len(self._decode)} "
            f"arcs={self.number_of_arcs()} "
            f"partitions={[str(c) for c in self._colors]}>"
        )


def _from_int64(values: "np.ndarray") -> "array[int]":
    """Copy a contiguous int64 numpy array into the canonical buffer type."""
    out = array(_TYPECODE)
    out.frombytes(values.tobytes())
    return out


def _pack(rows: list[list[int]]) -> tuple["array[int]", "array[int]"]:
    """Rows of target ids -> sorted CSR ``(offsets, targets)`` arrays."""
    offsets = array(_TYPECODE, [0] * (len(rows) + 1))
    targets = array(_TYPECODE)
    total = 0
    for u, row in enumerate(rows):
        row.sort()
        targets.extend(row)
        total += len(row)
        offsets[u + 1] = total
    return offsets, targets
