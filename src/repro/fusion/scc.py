"""Strongly-connected-subgraph (SCS) contraction (``GB -> G123``).

Mutual and circular investment arrangements (Fig. A-3/A-4 of the paper's
appendix) put directed cycles into the combined influence + investment
graph ``GB``.  Section 4.1 removes them in two steps: detect every
strongly connected subgraph of the investment graph with Tarjan's
algorithm [26] and *save it*, then contract each SCS into a single
*Company* syndicate.  The result ``G123`` — the **antecedent network** —
is a DAG whose arcs all carry the influence color.

The saved SCSs matter later: a trading arc between two companies of the
same SCS is suspicious by construction (Section 4.3's closing remark),
and the detector re-emits those arcs from the provenance kept here.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.graph.digraph import DiGraph, Node
from repro.graph.tarjan import nontrivial_sccs
from repro.model.colors import VColor
from repro.model.entities import Syndicate

__all__ = ["SccContractionResult", "contract_strongly_connected", "default_scs_namer"]


@dataclass
class SccContractionResult:
    """Outcome of contracting the strongly connected investment subgraphs.

    Attributes
    ----------
    graph:
        The contracted DAG (all arcs keep their original colors; the
        pipeline recolors them to ``IN`` when assembling the TPIIN).
    node_map:
        original company id -> surviving node id.
    syndicates:
        Company syndicates created, keyed by syndicate id.
    saved_subgraphs:
        For each syndicate id, the induced subgraph of its members as it
        existed before contraction (the paper's "save it" step).
    """

    graph: DiGraph
    node_map: dict[Node, Node] = field(default_factory=dict)
    syndicates: dict[Node, Syndicate] = field(default_factory=dict)
    saved_subgraphs: dict[Node, DiGraph] = field(default_factory=dict)

    def resolve(self, node: Node) -> Node:
        return self.node_map.get(node, node)


def default_scs_namer(members: frozenset[Node]) -> str:
    """Deterministic company-syndicate id from the merged member ids."""
    return "scs:" + "+".join(sorted(str(m) for m in members))


def contract_strongly_connected(
    graph: DiGraph,
    *,
    cycle_color: object = None,
    namer: Callable[[frozenset[Node]], str] = default_scs_namer,
) -> SccContractionResult:
    """Contract each nontrivial SCS of ``graph`` into one syndicate node.

    ``cycle_color`` restricts cycle detection to arcs of one color (the
    investment color in the fusion pipeline); pass ``None`` to consider
    every arc.  Arcs internal to an SCS disappear from the output but
    survive inside ``saved_subgraphs``; arcs crossing between different
    SCSs (or between an SCS and an untouched node) are reattached to the
    syndicate endpoints, dropping duplicates.
    """
    components = nontrivial_sccs(graph, cycle_color)
    node_map: dict[Node, Node] = {}
    syndicates: dict[Node, Syndicate] = {}
    saved: dict[Node, DiGraph] = {}
    for component in components:
        members = frozenset(component)
        if len(members) == 1:
            # A self-loop "cycle": contract in place — the node survives
            # under its own id, the loop arc is dropped (and saved).
            node = next(iter(members))
            node_map[node] = node
            saved[node] = graph.subgraph(members)
            continue
        syndicate_id = namer(members)
        syndicates[syndicate_id] = Syndicate(
            syndicate_id=syndicate_id,
            members=frozenset(str(m) for m in members),
            kind="company",
            via=frozenset({"mutual-investment"}),
        )
        saved[syndicate_id] = graph.subgraph(members)
        for member in members:
            node_map[member] = syndicate_id

    contracted = DiGraph()
    for node in graph.nodes():
        target = node_map.get(node)
        if target is None or target == node:
            contracted.add_node(node, graph.node_color(node))
    for syndicate_id in syndicates:
        contracted.add_node(syndicate_id, VColor.COMPANY)
    for tail, head, color in graph.arcs():
        new_tail = node_map.get(tail, tail)
        new_head = node_map.get(head, head)
        if new_tail == new_head:
            continue  # internal to one SCS: saved, not carried over
        contracted.add_arc(new_tail, new_head, color)
    return SccContractionResult(
        graph=contracted,
        node_map=node_map,
        syndicates=syndicates,
        saved_subgraphs=saved,
    )
