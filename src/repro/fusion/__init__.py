"""Multi-network fusion: homogeneous graphs -> TPIIN (Section 4.1, Fig. 5)."""

from repro.fusion.contraction import (
    ContractionResult,
    contract_edge_once,
    contract_interdependence,
)
from repro.fusion.pipeline import FusionResult, StageStats, fuse
from repro.fusion.scc import SccContractionResult, contract_strongly_connected
from repro.fusion.tpiin import TPIIN, TPIINStats

__all__ = [
    "ContractionResult",
    "FusionResult",
    "SccContractionResult",
    "StageStats",
    "TPIIN",
    "TPIINStats",
    "contract_edge_once",
    "contract_interdependence",
    "contract_strongly_connected",
    "fuse",
]
