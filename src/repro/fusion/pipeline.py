"""The multi-network fusion procedure of Fig. 5 (``G1..G4 -> TPIIN``).

Steps, following Section 4.1:

1. **G12** — overlay the interdependence links of *G1* on the influence
   bipartite graph *G2*.
2. **G12'** — contract every interdependence link, producing person
   syndicates (:mod:`repro.fusion.contraction`).
3. **GB** — add the investment arcs of *GI* between company nodes.
4. **G123** — detect each strongly connected investment subgraph with
   Tarjan's algorithm, save it, and contract it into a company syndicate
   (:mod:`repro.fusion.scc`).  G123 is the antecedent network, a DAG;
   investment is henceforth treated as a kind of influence, so all its
   arcs take the ``IN`` color.
5. **TPIIN** — overlay the trading arcs of *G4*, remapped through the
   contractions.  A trading arc landing inside one company syndicate is
   recorded as an intra-SCS trade (suspicious by construction) instead
   of becoming a self-loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FusionError
from repro.fusion.contraction import contract_interdependence
from repro.fusion.scc import contract_strongly_connected
from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import DiGraph, Node
from repro.model.colors import EColor, RelationKind, VColor
from repro.model.entities import EntityRegistry
from repro.model.homogeneous import (
    AffiliationGraph,
    InfluenceGraph,
    InterdependenceGraph,
    InvestmentGraph,
    TradingGraph,
)
from repro.obs.tracing import NULL_TRACER, TracerLike

__all__ = ["FusionResult", "StageStats", "fuse"]


@dataclass(frozen=True, slots=True)
class StageStats:
    """Node/arc counts of one intermediate fusion stage (for Fig. 5)."""

    stage: str
    nodes: int
    arcs: int
    detail: str = ""


@dataclass
class FusionResult:
    """Everything the fusion pipeline produced."""

    tpiin: TPIIN
    stages: list[StageStats] = field(default_factory=list)
    person_syndicates: dict[Node, object] = field(default_factory=dict)
    company_syndicates: dict[Node, object] = field(default_factory=dict)
    saved_scs: dict[Node, DiGraph] = field(default_factory=dict)
    intermediates: dict[str, DiGraph] = field(default_factory=dict)

    def stage_report(self) -> str:
        """Plain-text rendering of the Fig. 5 stage progression."""
        lines = ["stage      nodes    arcs  detail"]
        for s in self.stages:
            lines.append(f"{s.stage:<9} {s.nodes:>6}  {s.arcs:>6}  {s.detail}")
        return "\n".join(lines)


def fuse(
    interdependence: InterdependenceGraph,
    influence: InfluenceGraph,
    investment: InvestmentGraph,
    trading: TradingGraph,
    *,
    affiliations: "AffiliationGraph | None" = None,
    registry: EntityRegistry | None = None,
    validate_inputs: bool = True,
    keep_intermediates: bool = False,
    tracer: TracerLike = NULL_TRACER,
) -> FusionResult:
    """Run the full multi-network fusion and return the TPIIN.

    With ``validate_inputs`` each homogeneous graph is checked against
    its Appendix-A structural properties first, and any company appearing
    in the investment or trading graph must be known to the influence
    graph (every registered company has a legal person).  The produced
    TPIIN is always validated against Definition 1 before returning.

    ``affiliations`` optionally adds the future-work covert
    company-to-company relationships (guarantee, franchise, licensing,
    exclusive supply); they enter the antecedent network next to the
    investment arcs, and cycles they close are contracted like mutual
    investment.

    ``registry`` receives the created syndicates so that mined groups can
    be expanded back to source entities.
    """
    if validate_inputs:
        with tracer.span("validate_inputs"):
            interdependence.validate()
            influence.validate()
            investment.validate()
            trading.validate()
            if affiliations is not None:
                affiliations.validate()
            known = set(influence.graph.nodes(VColor.COMPANY))
            sources = [("investment", investment), ("trading", trading)]
            if affiliations is not None:
                sources.append(("affiliation", affiliations))
            for source_name, source in sources:
                missing = set(source.graph.nodes()) - known
                if missing:
                    sample = ", ".join(sorted(repr(m) for m in missing)[:5])
                    raise FusionError(
                        f"{source_name} graph references companies unknown to the "
                        f"influence graph (no legal person): {sample}"
                    )

    stages: list[StageStats] = []
    intermediates: dict[str, DiGraph] = {}

    # Stage 1: G12 = G2 + G1 (the overlay exists only conceptually; the
    # contraction consumes both graphs directly).
    g12_nodes = len(
        set(influence.graph.nodes()) | set(interdependence.graph.nodes())
    )
    g12_arcs = influence.number_of_influences + interdependence.number_of_links
    stages.append(
        StageStats(
            "G12",
            g12_nodes,
            g12_arcs,
            f"{interdependence.number_of_links} interdependence links overlaid",
        )
    )

    # Stage 2: contract interdependence links -> G12'.
    with tracer.span("contract_interdependence") as stage_span:
        person_contraction = contract_interdependence(
            influence.graph, interdependence.graph
        )
        if tracer.enabled:
            stage_span.set(syndicates=len(person_contraction.syndicates))
    g12p = person_contraction.graph
    stages.append(
        StageStats(
            "G12'",
            g12p.number_of_nodes(),
            g12p.number_of_arcs(),
            f"{len(person_contraction.syndicates)} person syndicates",
        )
    )
    if keep_intermediates:
        intermediates["G12'"] = g12p.copy()

    # Stage 3: GB = G12' + investment (and affiliation) arcs.
    gb = g12p  # mutated in place; G12' snapshot (if any) was copied above
    with tracer.span("add_investment") as stage_span:
        for investor, investee, _color in investment.arcs():
            gb.add_node(investor, VColor.COMPANY)
            gb.add_node(investee, VColor.COMPANY)
            gb.add_arc(investor, investee, RelationKind.INVESTMENT)
        affiliation_count = 0
        if affiliations is not None:
            for source, target, _kind in affiliations.arcs():
                gb.add_node(source, VColor.COMPANY)
                gb.add_node(target, VColor.COMPANY)
                if gb.add_arc(source, target, RelationKind.AFFILIATION):
                    affiliation_count += 1
        if tracer.enabled:
            stage_span.set(
                investment_arcs=investment.number_of_arcs,
                affiliation_arcs=affiliation_count,
            )
    stages.append(
        StageStats(
            "GB",
            gb.number_of_nodes(),
            gb.number_of_arcs(),
            f"{investment.number_of_arcs} investment arcs added"
            + (f", {affiliation_count} affiliation arcs" if affiliation_count else ""),
        )
    )
    if keep_intermediates:
        intermediates["GB"] = gb.copy()

    # Stage 4: Tarjan + SCS contraction -> G123 (the antecedent network).
    # Cycle detection runs over every arc: persons have indegree zero, so
    # directed cycles can only form among the company-to-company arcs
    # (investment and affiliation).
    with tracer.span("contract_scc") as stage_span:
        scs_contraction = contract_strongly_connected(gb, cycle_color=None)
        if tracer.enabled:
            stage_span.set(syndicates=len(scs_contraction.syndicates))
    g123 = scs_contraction.graph
    stages.append(
        StageStats(
            "G123",
            g123.number_of_nodes(),
            g123.number_of_arcs(),
            f"{len(scs_contraction.syndicates)} SCSs contracted",
        )
    )
    if keep_intermediates:
        intermediates["G123"] = g123.copy()

    # Stage 5: recolor to the fused vocabulary and overlay trading arcs.
    # The original relationship subclasses survive as per-arc provenance
    # labels for the explanation layer.
    with tracer.span("overlay_trading") as stage_span:
        fused = DiGraph()
        arc_provenance: dict[tuple[Node, Node], set[str]] = {}
        for node in g123.nodes():
            fused.add_node(node, g123.node_color(node))
        for tail, head, color in g123.arcs():
            fused.add_arc(tail, head, EColor.INFLUENCE)
            label = str(getattr(color, "value", color))
            arc_provenance.setdefault((tail, head), set()).add(label)

        company_map = scs_contraction.node_map
        intra_scs: list[tuple[Node, Node]] = []
        for seller, buyer, _color in trading.arcs():
            new_seller = company_map.get(seller, seller)
            new_buyer = company_map.get(buyer, buyer)
            fused.add_node(new_seller, VColor.COMPANY)
            fused.add_node(new_buyer, VColor.COMPANY)
            if new_seller == new_buyer:
                intra_scs.append((seller, buyer))
                continue
            fused.add_arc(new_seller, new_buyer, EColor.TRADING)
        if tracer.enabled:
            stage_span.set(
                nodes=fused.number_of_nodes(),
                arcs=fused.number_of_arcs(),
                intra_scs_trades=len(intra_scs),
            )
    stages.append(
        StageStats(
            "TPIIN",
            fused.number_of_nodes(),
            fused.number_of_arcs(),
            f"{len(intra_scs)} intra-SCS trades set aside",
        )
    )

    node_map: dict[Node, Node] = dict(person_contraction.node_map)
    node_map.update(company_map)
    tpiin = TPIIN(
        graph=fused,
        registry=registry,
        node_map=node_map,
        intra_scs_trades=intra_scs,
        scs_subgraphs=dict(scs_contraction.saved_subgraphs),
        arc_provenance={
            arc: frozenset(labels) for arc, labels in arc_provenance.items()
        },
    )
    tpiin.validate()

    if registry is not None:
        for syndicate in person_contraction.syndicates.values():
            registry.add_syndicate(syndicate)
        for syndicate in scs_contraction.syndicates.values():
            registry.add_syndicate(syndicate)

    return FusionResult(
        tpiin=tpiin,
        stages=stages,
        person_syndicates=dict(person_contraction.syndicates),
        company_syndicates=dict(scs_contraction.syndicates),
        saved_scs=dict(scs_contraction.saved_subgraphs),
        intermediates=intermediates,
    )
