"""Interdependence edge contraction (``G12 -> G12'``).

Section 4.1 combines the interdependence graph *G1* with the influence
graph *G2* into *G12*, then repeatedly applies an **edge contraction
operation**: pick an interdependence link, merge its two endpoints into a
*syndicate*, delete the link, and reattach all influence arcs to the
syndicate.  The process repeats — contracting person/person, then
syndicate/person, then syndicate/syndicate pairs — until no
interdependence link remains.  The result ``G12'`` is again a bipartite
influence digraph whose "persons" may be syndicates (e.g. node *B* of
Fig. 3(b), and *L1*/*B2* of Fig. 8).

Iterated pairwise contraction merges exactly the connected components of
*G1*; :func:`contract_interdependence` exploits that, while
:func:`contract_edge_once` provides the paper's literal single-step
operation (the equivalence is property-tested).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import FusionError
from repro.graph.digraph import DiGraph, Node, UnGraph
from repro.model.colors import VColor
from repro.model.entities import Syndicate

__all__ = [
    "ContractionResult",
    "contract_interdependence",
    "contract_edge_once",
    "default_syndicate_namer",
    "fully_contract_by_edges",
]


@dataclass
class ContractionResult:
    """Outcome of contracting all interdependence links.

    Attributes
    ----------
    graph:
        The contracted influence digraph ``G12'``.
    node_map:
        original person id -> surviving node id (syndicate id for merged
        persons, identity otherwise).
    syndicates:
        The person syndicates created, keyed by syndicate id.
    """

    graph: DiGraph
    node_map: dict[Node, Node] = field(default_factory=dict)
    syndicates: dict[Node, Syndicate] = field(default_factory=dict)

    def resolve(self, node: Node) -> Node:
        return self.node_map.get(node, node)


def default_syndicate_namer(members: frozenset[Node]) -> str:
    """Deterministic syndicate id derived from the merged member ids."""
    return "syn:" + "+".join(sorted(str(m) for m in members))


def contract_interdependence(
    influence: DiGraph,
    interdependence: UnGraph,
    *,
    namer: Callable[[frozenset[Node]], str] = default_syndicate_namer,
) -> ContractionResult:
    """Contract every interdependence link of ``interdependence``.

    ``influence`` is the *G2* digraph (persons -> companies); the output
    graph replaces each connected group of interdependent persons with a
    single syndicate node carrying the union of the group's influence
    arcs.  Persons appearing only in *G1* (no influence arcs) still merge
    into their syndicate; companies are untouched.
    """
    for node in interdependence.nodes():
        if influence.has_node(node) and influence.node_color(node) == VColor.COMPANY:
            raise FusionError(
                f"interdependence link endpoint {node!r} is a company; "
                "G1 joins persons only"
            )

    node_map: dict[Node, Node] = {}
    syndicates: dict[Node, Syndicate] = {}
    for component in interdependence.connected_components():
        if len(component) < 2:
            continue
        members = frozenset(component)
        syndicate_id = namer(members)
        link_kinds = frozenset(
            str(getattr(kind, "value", kind))
            for u, v, kind in interdependence.edges()
            if u in members and v in members
        )
        syndicate = Syndicate(
            syndicate_id=syndicate_id,
            members=frozenset(str(m) for m in members),
            kind="person",
            via=link_kinds,
        )
        syndicates[syndicate_id] = syndicate
        for member in members:
            node_map[member] = syndicate_id

    contracted = DiGraph()
    for node in influence.nodes():
        target = node_map.get(node, node)
        contracted.add_node(target, influence.node_color(node))
    for syndicate_id in syndicates:
        contracted.add_node(syndicate_id, VColor.PERSON)
    # Persons known only to G1 (edge case: registry lag) survive too.
    for node in interdependence.nodes():
        contracted.add_node(node_map.get(node, node), VColor.PERSON)
    for tail, head, color in influence.arcs():
        new_tail = node_map.get(tail, tail)
        new_head = node_map.get(head, head)
        if new_tail == new_head:
            raise FusionError(
                f"contraction collapsed influence arc ({tail!r} -> {head!r}) "
                "into a self-loop; G1 must not join a person to a company"
            )
        # Preserve the original influence subclass (is-CEO-of, is-a-D-of,
        # ...) so the fused TPIIN can carry arc provenance for the
        # explanation layer; parallel subclasses coexist as parallel
        # colored arcs until the final recoloring.
        contracted.add_arc(new_tail, new_head, color)
    return ContractionResult(graph=contracted, node_map=node_map, syndicates=syndicates)


def contract_edge_once(
    graph: DiGraph,
    interdependence: UnGraph,
    u: Node,
    v: Node,
    *,
    namer: Callable[[frozenset[Node]], str] = default_syndicate_namer,
    members_of: dict[Node, frozenset[Node]] | None = None,
) -> tuple[DiGraph, UnGraph, Node]:
    """The paper's literal single edge-contraction step.

    Merges the endpoints ``u`` and ``v`` of one interdependence link into
    a fresh syndicate node, reattaches both nodes' influence arcs and
    remaining interdependence links to it, and returns the new influence
    graph, the new interdependence graph and the syndicate id.

    ``members_of`` tracks which original persons each current node stands
    for, so repeated application produces the same syndicate identifiers
    as :func:`contract_interdependence`.  The two approaches are proven
    equivalent in the property-test suite.
    """
    if not interdependence.has_edge(u, v):
        raise FusionError(f"no interdependence link between {u!r} and {v!r}")
    members_of = members_of if members_of is not None else {}
    u_members = members_of.get(u, frozenset((u,)))
    v_members = members_of.get(v, frozenset((v,)))
    merged_members = u_members | v_members
    syndicate_id: Node = namer(merged_members)
    members_of[syndicate_id] = merged_members

    new_graph = DiGraph()
    for node in graph.nodes():
        if node in (u, v):
            continue
        new_graph.add_node(node, graph.node_color(node))
    new_graph.add_node(syndicate_id, VColor.PERSON)
    for tail, head, color in graph.arcs():
        new_tail = syndicate_id if tail in (u, v) else tail
        new_head = syndicate_id if head in (u, v) else head
        if new_tail == new_head:
            raise FusionError(
                f"contracting ({u!r}, {v!r}) collapsed arc ({tail!r} -> {head!r})"
            )
        new_graph.add_arc(new_tail, new_head, color)

    new_inter = UnGraph()
    for node in interdependence.nodes():
        if node not in (u, v):
            new_inter.add_node(node, interdependence.node_color(node))
    new_inter.add_node(syndicate_id, VColor.PERSON)
    for a, b, color in interdependence.edges():
        if {a, b} == {u, v}:
            continue  # the contracted link disappears
        new_a = syndicate_id if a in (u, v) else a
        new_b = syndicate_id if b in (u, v) else b
        if new_a == new_b:
            continue  # parallel link inside the syndicate dissolves
        new_inter.add_edge(new_a, new_b, color)
    return new_graph, new_inter, syndicate_id


def fully_contract_by_edges(
    influence: DiGraph,
    interdependence: UnGraph,
    *,
    namer: Callable[[frozenset[Node]], str] = default_syndicate_namer,
) -> tuple[DiGraph, dict[Node, frozenset[Node]]]:
    """Apply :func:`contract_edge_once` until no link remains.

    Reference implementation used to cross-validate the component-based
    fast path; quadratic, so only suitable for tests and small graphs.
    """
    graph = influence.copy()
    inter = interdependence
    members_of: dict[Node, frozenset[Node]] = {}
    while inter.number_of_edges():
        u, v, _color = next(iter(inter.edges()))
        graph, inter, _sid = contract_edge_once(
            graph, inter, u, v, namer=_interim_namer, members_of=members_of
        )
    # Rename interim syndicates to their canonical (final-membership) ids.
    rename: dict[Node, Node] = {}
    for node in list(graph.nodes()):
        members = members_of.get(node)
        if members is not None:
            rename[node] = namer(members)
    if not rename:
        return graph, members_of
    renamed = DiGraph()
    for node in graph.nodes():
        renamed.add_node(rename.get(node, node), graph.node_color(node))
    for tail, head, color in graph.arcs():
        renamed.add_arc(rename.get(tail, tail), rename.get(head, head), color)
    final_members = {rename[n]: m for n, m in members_of.items() if n in rename}
    return renamed, final_members


def _interim_namer(members: frozenset[Node]) -> str:
    return "interim:" + "+".join(sorted(str(m) for m in members))

