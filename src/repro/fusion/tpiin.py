"""The Taxpayer Interest Interacted Network (Definition 1).

A TPIIN is the quadruple ``{V, E, VColor, EColor}`` with node colors
``{Person, Company}`` and arc colors ``{IN, TR}``.  It decomposes into

* the **antecedent network** — all ``IN`` arcs: person-to-company
  influence and company-to-company investment folded into one color.
  After fusion this is a DAG (Property 1); and
* the **trading network** — all ``TR`` arcs between companies.

:class:`TPIIN` wraps the fused :class:`~repro.graph.digraph.DiGraph`
together with the entity registry and contraction provenance, validates
Definition 1's constraints, and converts to/from the paper's ``r x 3``
edge-list format consumed by Algorithm 1.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ValidationError
from repro.graph.dag import is_dag, roots
from repro.graph.digraph import DiGraph, Node
from repro.graph.edgelist import EdgeList
from repro.model.colors import EColor, VColor
from repro.model.entities import EntityRegistry

__all__ = ["TPIIN", "TPIINStats"]


@dataclass(frozen=True, slots=True)
class TPIINStats:
    """Summary counts, matching the captions of Figs. 11-16."""

    persons: int
    companies: int
    influence_arcs: int
    trading_arcs: int

    @property
    def nodes(self) -> int:
        return self.persons + self.companies

    @property
    def arcs(self) -> int:
        return self.influence_arcs + self.trading_arcs

    @property
    def average_node_degree(self) -> float:
        """Arcs per node — the "average node degree" column of Table 1.

        Solving the paper's reported figures against its arc totals shows
        the column is (total arcs) / (total nodes); see DESIGN.md.
        """
        return self.arcs / self.nodes if self.nodes else 0.0


@dataclass
class TPIIN:
    """A fused taxpayer interest interacted network.

    Parameters
    ----------
    graph:
        The fused digraph: ``VColor`` node colors, ``EColor`` arc colors.
    registry:
        Optional entity registry resolving node ids (including
        syndicates) to source entities.
    node_map:
        Provenance: original node id -> fused node id.  Identity entries
        may be omitted.
    intra_scs_trades:
        Trading arcs whose endpoints were merged into the same company
        syndicate by SCC contraction.  They cannot live in the graph
        (they would be self-loops) but are suspicious by construction
        (Section 4.3) and are re-emitted by the detector.
    scs_subgraphs:
        The saved strongly connected investment subgraphs, keyed by the
        syndicate id that replaced them; the detector extracts witness
        trails for intra-SCS trades from these.
    """

    graph: DiGraph
    registry: EntityRegistry | None = None
    node_map: dict[Node, Node] = field(default_factory=dict)
    intra_scs_trades: list[tuple[Node, Node]] = field(default_factory=list)
    scs_subgraphs: dict[Node, DiGraph] = field(default_factory=dict)
    arc_provenance: dict[tuple[Node, Node], frozenset[str]] = field(
        default_factory=dict
    )

    def provenance_of(self, tail: Node, head: Node) -> frozenset[str]:
        """Original relationship labels behind one fused influence arc.

        Empty for hand-built TPIINs (``TPIIN.build``) that never went
        through the fusion pipeline.
        """
        return self.arc_provenance.get((tail, head), frozenset())

    @property
    def scs_members(self) -> dict[Node, frozenset[Node]]:
        """Member node sets of each contracted investment syndicate."""
        return {
            sid: frozenset(sub.nodes()) for sid, sub in self.scs_subgraphs.items()
        }

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        *,
        persons: Iterable[Node] = (),
        companies: Iterable[Node] = (),
        influence: Iterable[tuple[Node, Node]] = (),
        trading: Iterable[tuple[Node, Node]] = (),
    ) -> "TPIIN":
        """Assemble a TPIIN directly from colored node and arc lists.

        This is the quick path for examples and tests that start from an
        already-fused network (like Fig. 6); production flows should use
        :func:`repro.fusion.pipeline.fuse`.
        """
        graph = DiGraph()
        for person in persons:
            graph.add_node(person, VColor.PERSON)
        for company in companies:
            graph.add_node(company, VColor.COMPANY)
        for tail, head in influence:
            graph.add_arc(tail, head, EColor.INFLUENCE)
        for tail, head in trading:
            graph.add_arc(tail, head, EColor.TRADING)
        return cls(graph=graph)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def antecedent_graph(self) -> DiGraph:
        """The antecedent network: every node, only ``IN`` arcs."""
        return self.graph.color_subgraph(EColor.INFLUENCE)

    def antecedent_view(self) -> "TPIIN":
        """A trading-free copy sharing this TPIIN's antecedent state.

        The copy keeps the influence graph, registry, contraction
        provenance and saved SCS subgraphs but drops every trading arc
        (including the recorded intra-SCS trades).  Streaming consumers
        (:class:`~repro.mining.incremental.IncrementalDetector`, the
        serving daemon) start from this view and replay trading arcs as
        explicit updates.
        """
        return TPIIN(
            graph=self.antecedent_graph(),
            registry=self.registry,
            node_map=dict(self.node_map),
            intra_scs_trades=[],
            scs_subgraphs=dict(self.scs_subgraphs),
            arc_provenance=dict(self.arc_provenance),
        )

    def trading_graph(self) -> DiGraph:
        """The trading network: every node, only ``TR`` arcs."""
        return self.graph.color_subgraph(EColor.TRADING)

    def persons(self) -> Iterator[Node]:
        return self.graph.nodes(VColor.PERSON)

    def companies(self) -> Iterator[Node]:
        return self.graph.nodes(VColor.COMPANY)

    def trading_arcs(self) -> Iterator[tuple[Node, Node]]:
        for tail, head, _color in self.graph.arcs(EColor.TRADING):
            yield (tail, head)

    def influence_arcs(self) -> Iterator[tuple[Node, Node]]:
        for tail, head, _color in self.graph.arcs(EColor.INFLUENCE):
            yield (tail, head)

    def antecedent_roots(self) -> list[Node]:
        """Indegree-zero nodes of the antecedent network."""
        return roots(self.graph, EColor.INFLUENCE)

    def stats(self) -> TPIINStats:
        return TPIINStats(
            persons=self.graph.number_of_nodes(VColor.PERSON),
            companies=self.graph.number_of_nodes(VColor.COMPANY),
            influence_arcs=self.graph.number_of_arcs(EColor.INFLUENCE),
            trading_arcs=self.graph.number_of_arcs(EColor.TRADING),
        )

    # ------------------------------------------------------------------
    # validation (Definition 1 + Property 1)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the structural constraints of a well-formed TPIIN.

        * every node is colored ``Person`` or ``Company``;
        * persons have indegree zero (influence flows away from persons);
        * trading arcs join companies only;
        * influence arcs end at companies (a person never receives
          influence; person-to-person links were contracted away);
        * the antecedent network is acyclic (Property 1).
        """
        for node in self.graph.nodes():
            color = self.graph.node_color(node)
            if color not in (VColor.PERSON, VColor.COMPANY):
                raise ValidationError(f"TPIIN node {node!r} has color {color!r}")
            if color == VColor.PERSON and self.graph.in_degree(node) != 0:
                raise ValidationError(f"TPIIN person {node!r} has positive indegree")
        for tail, head, color in self.graph.arcs():
            if color == EColor.TRADING:
                if (
                    self.graph.node_color(tail) != VColor.COMPANY
                    or self.graph.node_color(head) != VColor.COMPANY
                ):
                    raise ValidationError(
                        f"trading arc ({tail!r} -> {head!r}) must join companies"
                    )
            elif color == EColor.INFLUENCE:
                if self.graph.node_color(head) != VColor.COMPANY:
                    raise ValidationError(
                        f"influence arc ({tail!r} -> {head!r}) must end at a company"
                    )
            else:
                raise ValidationError(
                    f"arc ({tail!r} -> {head!r}) has unknown color {color!r}"
                )
            if tail == head:
                raise ValidationError(f"self-loop on {tail!r}")
        if not is_dag(self.graph, EColor.INFLUENCE):
            raise ValidationError(
                "antecedent network contains a directed cycle; run SCC "
                "contraction (repro.fusion) before building the TPIIN"
            )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_edge_list(self) -> EdgeList:
        """The ``r x 3`` array layout Algorithm 1 consumes."""
        return EdgeList.from_digraph(
            self.graph,
            influence_color=EColor.INFLUENCE,
            trading_color=EColor.TRADING,
        )

    @classmethod
    def from_edge_list(
        cls, edge_list: EdgeList, *, node_colors: dict[Node, Any] | None = None
    ) -> "TPIIN":
        """Rebuild a TPIIN from an edge list.

        ``node_colors`` overrides/supplies colors when the edge list was
        produced outside :meth:`to_edge_list` (e.g. loaded from CSV).
        Nodes with trading arcs or incoming influence are inferred as
        companies; remaining uncolored nodes default to persons, matching
        the paper's construction where only persons are pure sources.
        """
        graph = edge_list.to_digraph(
            influence_color=EColor.INFLUENCE, trading_color=EColor.TRADING
        )
        if node_colors:
            for node, color in node_colors.items():
                if graph.has_node(node) and graph.node_color(node) is None:
                    graph.add_node(node, color)
        inferred = DiGraph()
        for node in graph.nodes():
            color = graph.node_color(node)
            if color is None:
                has_trade = any(True for _ in graph.out_arcs(node) if _[2] == EColor.TRADING)
                has_in = graph.in_degree(node) > 0
                color = VColor.COMPANY if (has_trade or has_in) else VColor.PERSON
            inferred.add_node(node, color)
        for tail, head, color in graph.arcs():
            inferred.add_arc(tail, head, color)
        return cls(graph=inferred)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"<TPIIN persons={s.persons} companies={s.companies} "
            f"IN={s.influence_arcs} TR={s.trading_arcs}>"
        )
