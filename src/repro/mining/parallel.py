"""Parallel subTPIIN mining (the paper's future-work item).

Algorithm 1's divide-and-conquer segmentation makes the mining
embarrassingly parallel: each subTPIIN is mined independently and only
the group lists are merged.  This module distributes the per-subTPIIN
pipeline (Algorithm 2 + matching, in its CSR-kernel form) over a
process pool.

Worker payloads are **frozen CSR kernels**, not pickled
dict-of-dict :class:`~repro.graph.digraph.DiGraph` objects: the
``(offsets, targets)`` arrays pickle as flat byte blobs, so IPC ships a
fraction of the bytes and workers unpickle buffers instead of
rebuilding hash tables.  Payloads are ordered **largest-first** (LPT
scheduling) so one giant subTPIIN starts immediately instead of
tail-blocking the pool from the last chunk.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro.fusion.tpiin import TPIIN
from repro.graph.csr import CSRGraph
from repro.mining.csr_engine import freeze_subtpiin, mine_frozen
from repro.mining.detector import DetectionResult, SubTPIINResult
from repro.mining.groups import SuspiciousGroup
from repro.mining.scs_groups import scs_suspicious_groups
from repro.mining.segmentation import segment
from repro.model.colors import EColor
from repro.obs.profile import SUBTPIIN_SPAN
from repro.obs.tracing import NULL_TRACER, TracerLike

__all__ = ["parallel_detect"]

#: One worker outcome: (index, trails, groups, worker wall seconds).
_Outcome = tuple[int, int, list[SuspiciousGroup], float]


def _mine_one(payload: tuple[int, CSRGraph]) -> _Outcome:
    """Worker: mine one frozen subTPIIN; returns (index, trails, groups, secs).

    The elapsed wall time rides back with the result so the parent can
    attach a per-worker span at the join point (workers cannot share the
    parent's tracer across the process boundary).
    """
    index, csr = payload
    started = time.perf_counter()
    trail_count, _truncated, groups = mine_frozen(csr)
    return index, trail_count, groups, time.perf_counter() - started


def parallel_detect(
    tpiin: TPIIN,
    *,
    processes: int | None = None,
    min_subtpiins_for_pool: int = 2,
    tracer: TracerLike = NULL_TRACER,
) -> DetectionResult:
    """CSR-kernel detection with subTPIINs fanned out across processes.

    Falls back to in-process execution when there are fewer than
    ``min_subtpiins_for_pool`` non-trivial subTPIINs (pool startup would
    dominate).  Results are identical to ``detect(engine="faithful")``
    up to group ordering; the property suite compares them as sets.
    """
    with tracer.span("segment") as seg_span:
        segmentation = segment(tpiin, skip_trivial=True)
        if tracer.enabled:
            seg_span.set(
                subtpiins=len(segmentation.subtpiins),
                components=segmentation.total_components,
            )
    with tracer.span("freeze") as freeze_span:
        payloads = [
            (sub.index, freeze_subtpiin(sub.graph)) for sub in segmentation.subtpiins
        ]
        # Largest-first: the heaviest kernels enter the pool first, so the
        # slowest subTPIIN overlaps with everything else instead of being
        # scheduled last and stretching the tail.
        payloads.sort(key=lambda p: p[1].number_of_arcs(), reverse=True)
        if tracer.enabled:
            freeze_span.set(payloads=len(payloads))

    outcomes: list[_Outcome]
    with tracer.span("fan_out") as fan_span:
        if len(payloads) < min_subtpiins_for_pool:
            pooled = False
            outcomes = [_mine_one(p) for p in payloads]
        else:
            pooled = True
            # Resolve the worker count the same way the pool would, so the
            # chunk size tracks the actual parallelism (4 chunks per worker)
            # instead of assuming a 4-process pool.
            workers = processes if processes is not None else (os.cpu_count() or 1)
            chunk = max(1, len(payloads) // (workers * 4))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(_mine_one, payloads, chunksize=chunk))
        if tracer.enabled:
            fan_span.set(
                pooled=pooled,
                processes=(
                    processes if processes is not None else (os.cpu_count() or 1)
                ),
            )
            # Per-worker spans, aggregated at the join: each subTPIIN's
            # wall time is stamped onto the parent's clock ending "now".
            for index, trail_count, sub_groups, seconds in outcomes:
                tracer.record(
                    SUBTPIIN_SPAN,
                    seconds,
                    index=index,
                    trails=trail_count,
                    groups=len(sub_groups),
                )

    outcomes.sort(key=lambda item: item[0])
    groups: list[SuspiciousGroup] = []
    sub_results: list[SubTPIINResult] = []
    trail_total = 0
    by_index = {sub.index: sub for sub in segmentation.subtpiins}
    for index, trail_count, sub_groups, _seconds in outcomes:
        trail_total += trail_count
        groups.extend(sub_groups)
        sub = by_index[index]
        sub_results.append(
            SubTPIINResult(
                index=index,
                node_count=len(sub.nodes),
                trading_arc_count=sub.trading_arc_count,
                pattern_trail_count=trail_count,
                groups=sub_groups,
            )
        )
    with tracer.span("scs_groups") as scs_span:
        scs_groups = scs_suspicious_groups(tpiin)
        if tracer.enabled:
            scs_span.set(groups=len(scs_groups))
    groups.extend(scs_groups)

    total_trading = tpiin.graph.number_of_arcs(EColor.TRADING) + len(
        tpiin.intra_scs_trades
    )
    return DetectionResult(
        groups=groups,
        total_trading_arcs=total_trading,
        cross_component_trades=len(segmentation.cross_component_trades),
        subtpiin_count=segmentation.total_components,
        engine="parallel",
        pattern_trail_count=trail_total,
        sub_results=sub_results,
    )
