"""Zero-copy shared-memory parallel mining (``engine="parallel"``).

Algorithm 1's divide-and-conquer segmentation makes the mining
embarrassingly parallel: each influence component is mined
independently and only the results are merged.  Earlier revisions
pickled one frozen kernel *per subTPIIN* to a process pool; this module
replaces that fan-out end to end:

* the whole TPIIN is frozen **once** into a
  :class:`~repro.graph.csr.CSRGraph` and exported into a single POSIX
  shared-memory segment (:meth:`~repro.graph.csr.CSRGraph.to_shared`);
  workers attach the same physical pages zero-copy instead of
  unpickling per-component adjacency;
* components are grouped into one bucket per worker by **estimated
  mining work** (the :class:`~repro.mining.compact.MiningPlan` path-
  count estimate, assigned largest-first / LPT), not by node count —
  tree size, not graph size, is what a component costs;
* each bucket runs the compact kernels
  (:func:`~repro.mining.csr_engine.mine_components`: batched frontier
  expansion for large acyclic components, the guarded stack walk for
  the rest) and returns flat count + tree arrays, never group objects;
* group objects materialize **lazily**
  (:class:`~repro.mining.compact.LazyGroups`) in the parent, only if a
  caller actually reads them.

Small jobs skip the pool entirely and mine in-process on the very same
kernels — on a single-CPU host the parallel engine is therefore the
fastest *serial* engine, not a degraded one.  Segment lifecycle is
crash-safe: the owner unlinks in a ``finally``, an ``atexit`` hook and
the stdlib resource tracker cover abnormal exits (see
:mod:`repro.graph.shm`).
"""

from __future__ import annotations

import heapq
import os
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.fusion.tpiin import TPIIN
from repro.graph.csr import CSRGraph
from repro.graph.shm import SharedSegment
from repro.mining.compact import (
    CompactCounts,
    CompactMine,
    LazyGroups,
    MiningPlan,
    build_plan,
    count_mine,
    make_group_store,
    merge_counts,
    unpack_arcs,
)
from repro.mining.csr_engine import mine_components
from repro.mining.detector import DetectionResult, SubTPIINResult
from repro.mining.groups import GroupKind
from repro.mining.scs_groups import scs_suspicious_groups
from repro.model.colors import EColor
from repro.obs.tracing import NULL_TRACER, TracerLike

__all__ = ["DEFAULT_MIN_POOL_WORK", "parallel_detect"]

#: Minimum total estimated mining work (tree nodes + emissions) before
#: a worker pool is spawned.  Below it, process start-up and result
#: pickling dominate any speedup, so the job mines in-process on the
#: same compact kernels.  Calibrated against the benchmark sweep: the
#: densest-720 setting (~0.5 M estimated work) mines in well under the
#: ~100 ms a pool costs to spin up.
DEFAULT_MIN_POOL_WORK = 5_000_000

#: One worker outcome: (mine, counts, attach/mine/detach wall seconds).
_Outcome = tuple[CompactMine, CompactCounts, float, float, float]


def _lpt_buckets(
    comps: np.ndarray, weights: np.ndarray, buckets: int
) -> list[list[int]]:
    """Longest-processing-time assignment of components to buckets.

    Components are placed heaviest-first onto the least-loaded bucket,
    so one giant component starts immediately instead of tail-blocking
    the pool.  Empty buckets are dropped.
    """
    order = np.argsort(weights, kind="stable")[::-1]
    heap: list[tuple[float, int]] = [(0.0, index) for index in range(buckets)]
    heapq.heapify(heap)
    assigned: list[list[int]] = [[] for _ in range(buckets)]
    for comp, weight in zip(comps[order].tolist(), weights[order].tolist()):
        load, index = heapq.heappop(heap)
        assigned[index].append(comp)
        heapq.heappush(heap, (load + weight, index))
    return [bucket for bucket in assigned if bucket]


def _mine_bucket(
    payload: tuple[str, MiningPlan, list[int]],
) -> _Outcome:
    """Worker: attach the shared adjacency, mine one bucket, detach.

    The attach is zero-copy — the worker maps the owner's pages and the
    CSR buffers are ``memoryview`` slices into them.  Only the compact
    result arrays travel back through the result pickle.  Wall times
    for attach/mine/detach ride along so the parent can stamp spans at
    the join (workers cannot share the parent's tracer).
    """
    segment_name, plan, comp_ids = payload
    started = time.perf_counter()
    segment = SharedSegment.attach(segment_name)
    csr = CSRGraph.from_shared(segment)
    attach_seconds = time.perf_counter() - started
    try:
        started = time.perf_counter()
        mine = mine_components(csr, plan, np.asarray(comp_ids, dtype=np.int64))
        counts = count_mine(mine, plan)
        mine_seconds = time.perf_counter() - started
    finally:
        started = time.perf_counter()
        del csr
        try:
            segment.close()
        except BufferError:  # pragma: no cover - view pinned by a traceback
            pass  # the mapping is released when the worker exits
        detach_seconds = time.perf_counter() - started
    return mine, counts, attach_seconds, mine_seconds, detach_seconds


def _pooled_mine(
    csr: CSRGraph,
    plan: MiningPlan,
    buckets: list[list[int]],
    tracer: TracerLike,
) -> tuple[CompactMine, CompactCounts]:
    """Fan buckets out over a pool attached to one shared segment."""
    segment = csr.to_shared()
    try:
        with ProcessPoolExecutor(max_workers=len(buckets)) as pool:
            payloads = [(segment.name, plan, bucket) for bucket in buckets]
            outcomes: list[_Outcome] = list(pool.map(_mine_bucket, payloads))
    finally:
        segment.close()
        segment.unlink()
    if tracer.enabled:
        for index, outcome in enumerate(outcomes):
            _, _, attach_seconds, mine_seconds, detach_seconds = outcome
            tracer.record("worker_attach", attach_seconds, bucket=index)
            tracer.record(
                "mine_bucket",
                mine_seconds,
                bucket=index,
                components=len(buckets[index]),
            )
            tracer.record("worker_detach", detach_seconds, bucket=index)
    mine = CompactMine.merge([o[0] for o in outcomes], plan.n_components)
    counts = merge_counts([o[1] for o in outcomes], plan.n_components)
    return mine, counts


def parallel_detect(
    tpiin: TPIIN,
    *,
    processes: int | None = None,
    min_pool_work: int | None = None,
    tracer: TracerLike = NULL_TRACER,
) -> DetectionResult:
    """Shared-memory parallel detection over the compact CSR kernels.

    ``processes`` bounds the worker pool (default: CPU count); the pool
    only spawns when there are at least two workers, at least two
    non-trivial components, and the total estimated mining work clears
    ``min_pool_work`` (default :data:`DEFAULT_MIN_POOL_WORK`) — below
    that the same kernels run in-process, which beats every other
    engine serially.  Results are identical to
    ``detect(engine="faithful")`` up to group ordering; the property
    suite compares them as sets.
    """
    with tracer.span("freeze") as freeze_span:
        csr = CSRGraph.freeze(
            tpiin.graph, colors=(EColor.INFLUENCE, EColor.TRADING)
        )
        if tracer.enabled:
            freeze_span.set(nodes=len(csr), arcs=csr.number_of_arcs())
    with tracer.span("plan") as plan_span:
        plan = build_plan(csr, tpiin.graph.nodes())
        selected = plan.nontrivial()
        total_work = float(plan.est_work[selected].sum())
        if tracer.enabled:
            plan_span.set(
                components=plan.n_components,
                nontrivial=int(selected.size),
                cross_component_trades=plan.cross_count,
                estimated_work=total_work,
            )

    workers = processes if processes is not None else (os.cpu_count() or 1)
    threshold = DEFAULT_MIN_POOL_WORK if min_pool_work is None else min_pool_work
    pooled = workers >= 2 and selected.size >= 2 and total_work >= threshold
    with tracer.span("mine") as mine_span:
        if pooled:
            buckets = _lpt_buckets(selected, plan.est_work[selected], workers)
            mine, counts = _pooled_mine(csr, plan, buckets, tracer)
            if tracer.enabled:
                mine_span.set(
                    pooled=True,
                    workers=len(buckets),
                    shm_bytes=csr.nbytes,
                )
        else:
            mine = mine_components(csr, plan, selected)
            counts = count_mine(mine, plan)
            if tracer.enabled:
                mine_span.set(pooled=False, workers=1)

    decode = csr.decode_table
    store = make_group_store(mine, decode, plan.comp_id)
    groups_by_comp = counts.matched_by_comp + counts.circle_by_comp
    sub_results: list[SubTPIINResult] = []
    for running_index, comp in enumerate(selected.tolist()):
        sub_results.append(
            SubTPIINResult(
                index=running_index,
                node_count=int(plan.comp_sizes[comp]),
                trading_arc_count=int(plan.trading_by_comp[comp]),
                pattern_trail_count=int(counts.trails_by_comp[comp]),
                groups=LazyGroups(store, comp, int(groups_by_comp[comp])),
            )
        )

    with tracer.span("scs_groups") as scs_span:
        scs_groups = scs_suspicious_groups(tpiin)
        if tracer.enabled:
            scs_span.set(groups=len(scs_groups))

    matched_total = int(counts.matched_by_comp.sum())
    circle_total = int(counts.circle_by_comp.sum())
    arc_tails, arc_heads = unpack_arcs(counts.suspicious_arcs, plan.n_nodes)
    suspicious_arcs = {
        (decode[tail], decode[head])
        for tail, head in zip(arc_tails.tolist(), arc_heads.tolist())
    }
    suspicious_arcs.update(g.trading_arc for g in scs_groups)
    kind_counts: Counter[GroupKind] = Counter()
    kind_counts[GroupKind.MATCHED] = matched_total
    kind_counts[GroupKind.CIRCLE] = circle_total
    kind_counts[GroupKind.SCS] = len(scs_groups)

    total_trading = tpiin.graph.number_of_arcs(EColor.TRADING) + len(
        tpiin.intra_scs_trades
    )
    groups: LazyGroups = LazyGroups(
        store, None, matched_total + circle_total, tail=scs_groups
    )
    return DetectionResult(
        groups=groups,
        total_trading_arcs=total_trading,
        cross_component_trades=plan.cross_count,
        subtpiin_count=plan.n_components,
        engine="parallel",
        pattern_trail_count=int(counts.trails_by_comp.sum()),
        sub_results=sub_results,
        kind_counts_override=kind_counts,
        suspicious_arcs_override=suspicious_arcs,
    )
