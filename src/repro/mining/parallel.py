"""Parallel subTPIIN mining (the paper's future-work item).

Algorithm 1's divide-and-conquer segmentation makes the mining
embarrassingly parallel: each subTPIIN is mined independently and only
the group lists are merged.  This module distributes the per-subTPIIN
pipeline (Algorithm 2 + matching, in its CSR-kernel form) over a
process pool.

Worker payloads are **frozen CSR kernels**, not pickled
dict-of-dict :class:`~repro.graph.digraph.DiGraph` objects: the
``(offsets, targets)`` arrays pickle as flat byte blobs, so IPC ships a
fraction of the bytes and workers unpickle buffers instead of
rebuilding hash tables.  Payloads are ordered **largest-first** (LPT
scheduling) so one giant subTPIIN starts immediately instead of
tail-blocking the pool from the last chunk.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.fusion.tpiin import TPIIN
from repro.graph.csr import CSRGraph
from repro.mining.csr_engine import freeze_subtpiin, mine_frozen
from repro.mining.detector import DetectionResult, SubTPIINResult
from repro.mining.groups import SuspiciousGroup
from repro.mining.scs_groups import scs_suspicious_groups
from repro.mining.segmentation import segment
from repro.model.colors import EColor

__all__ = ["parallel_detect"]


def _mine_one(payload: tuple[int, CSRGraph]) -> tuple[int, int, list[SuspiciousGroup]]:
    """Worker: mine one frozen subTPIIN; returns (index, trails, groups)."""
    index, csr = payload
    trail_count, _truncated, groups = mine_frozen(csr)
    return index, trail_count, groups


def parallel_detect(
    tpiin: TPIIN,
    *,
    processes: int | None = None,
    min_subtpiins_for_pool: int = 2,
) -> DetectionResult:
    """CSR-kernel detection with subTPIINs fanned out across processes.

    Falls back to in-process execution when there are fewer than
    ``min_subtpiins_for_pool`` non-trivial subTPIINs (pool startup would
    dominate).  Results are identical to ``detect(engine="faithful")``
    up to group ordering; the property suite compares them as sets.
    """
    segmentation = segment(tpiin, skip_trivial=True)
    payloads = [
        (sub.index, freeze_subtpiin(sub.graph)) for sub in segmentation.subtpiins
    ]
    # Largest-first: the heaviest kernels enter the pool first, so the
    # slowest subTPIIN overlaps with everything else instead of being
    # scheduled last and stretching the tail.
    payloads.sort(key=lambda p: p[1].number_of_arcs(), reverse=True)

    outcomes: list[tuple[int, int, list[SuspiciousGroup]]]
    if len(payloads) < min_subtpiins_for_pool:
        outcomes = [_mine_one(p) for p in payloads]
    else:
        # Resolve the worker count the same way the pool would, so the
        # chunk size tracks the actual parallelism (4 chunks per worker)
        # instead of assuming a 4-process pool.
        workers = processes if processes is not None else (os.cpu_count() or 1)
        chunk = max(1, len(payloads) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_mine_one, payloads, chunksize=chunk))

    outcomes.sort(key=lambda item: item[0])
    groups: list[SuspiciousGroup] = []
    sub_results: list[SubTPIINResult] = []
    trail_total = 0
    by_index = {sub.index: sub for sub in segmentation.subtpiins}
    for index, trail_count, sub_groups in outcomes:
        trail_total += trail_count
        groups.extend(sub_groups)
        sub = by_index[index]
        sub_results.append(
            SubTPIINResult(
                index=index,
                node_count=len(sub.nodes),
                trading_arc_count=sub.trading_arc_count,
                pattern_trail_count=trail_count,
                groups=sub_groups,
            )
        )
    groups.extend(scs_suspicious_groups(tpiin))

    total_trading = tpiin.graph.number_of_arcs(EColor.TRADING) + len(
        tpiin.intra_scs_trades
    )
    return DetectionResult(
        groups=groups,
        total_trading_arcs=total_trading,
        cross_component_trades=len(segmentation.cross_component_trades),
        subtpiin_count=segmentation.total_components,
        engine="parallel",
        pattern_trail_count=trail_total,
        sub_results=sub_results,
    )
