"""Sampled estimation of the suspicious share for ultra-large TPIINs.

At NTICS scale (a billion records a year) even one packed-bitset test
per trading arc may be more than a monitoring dashboard needs.  The
Table-1 statistic of interest — the share of trading relationships that
are suspicious — is a population proportion, so it can be estimated
from a uniform sample of arcs with a Wilson confidence interval.  A
dashboard refresh then costs a few thousand bitset tests regardless of
how many billions of arcs are on file.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.graph.bitset import RootAncestorIndex
from repro.model.colors import EColor

__all__ = ["ShareEstimate", "estimate_suspicious_share"]


@dataclass(frozen=True, slots=True)
class ShareEstimate:
    """Point estimate and Wilson interval for the suspicious share."""

    sample_size: int
    suspicious_in_sample: int
    point: float
    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def render(self) -> str:
        return (
            f"suspicious share ~= {100 * self.point:.2f}% "
            f"[{100 * self.low:.2f}%, {100 * self.high:.2f}%] "
            f"at {100 * self.confidence:.0f}% confidence "
            f"(n={self.sample_size})"
        )


def _wilson(successes: int, n: int, z: float) -> tuple[float, float]:
    if n == 0:
        return (0.0, 1.0)
    p = successes / n
    denom = 1.0 + z * z / n
    center = (p + z * z / (2 * n)) / denom
    spread = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
    return (max(0.0, center - spread), min(1.0, center + spread))


# Two-sided z-scores for the confidence levels a dashboard would offer.
_Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def estimate_suspicious_share(
    tpiin: TPIIN,
    *,
    sample_size: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
    index: RootAncestorIndex | None = None,
) -> ShareEstimate:
    """Estimate the suspicious share from a uniform arc sample.

    Sampling is without replacement when the population fits, otherwise
    the whole population is used (the estimate is then exact and the
    interval degenerates accordingly).  ``index`` lets callers reuse a
    prebuilt root-ancestor index across refreshes.
    """
    if sample_size <= 0:
        raise MiningError("sample_size must be positive")
    z = _Z_SCORES.get(round(confidence, 2))
    if z is None:
        raise MiningError(
            f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}"
        )
    arcs = list(tpiin.trading_arcs())
    intra = len(tpiin.intra_scs_trades)
    population = len(arcs) + intra
    if population == 0:
        return ShareEstimate(0, 0, 0.0, 0.0, 0.0, confidence)

    if index is None:
        index = RootAncestorIndex(tpiin.graph, EColor.INFLUENCE)

    rng = np.random.default_rng(seed)
    # Intra-SCS trades are suspicious by construction; sample over the
    # combined population, short-circuiting those indexes.
    if sample_size >= population:
        chosen = np.arange(population)
    else:
        chosen = rng.choice(population, size=sample_size, replace=False)
    sampled_arcs = [arcs[int(i)] for i in chosen if i < len(arcs)]
    intra_hits = int(np.count_nonzero(chosen >= len(arcs)))

    suspicious = intra_hits
    if sampled_arcs:
        mask = index.shares_root_bulk(
            [a for a, _b in sampled_arcs], [b for _a, b in sampled_arcs]
        )
        suspicious += int(mask.sum())

    n = len(sampled_arcs) + intra_hits
    point = suspicious / n if n else 0.0
    low, high = _wilson(suspicious, n, z)
    return ShareEstimate(
        sample_size=n,
        suspicious_in_sample=suspicious,
        point=point,
        low=low,
        high=high,
        confidence=confidence,
    )
