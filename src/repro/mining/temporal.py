"""Temporal detection: sliding windows over timed trading relationships.

Tax filings carry periods; a trading relationship that existed in 2014
may be gone by 2016, and an IAT investigation is usually scoped to a
filing window.  Building on the arc-decomposability that powers
:mod:`repro.mining.incremental`, this module slides a window over a set
of *timed* trades and emits one detection result per window, paying
only for the arcs that enter or leave between consecutive windows.

Times are opaque integers (days, months, filing periods — the caller
chooses the unit).  A trade is active in window ``[ws, we)`` when its
validity interval ``[effective_from, effective_to)`` intersects it.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import Node
from repro.mining.detector import DetectionResult
from repro.mining.incremental import IncrementalDetector

__all__ = ["TimedTrade", "WindowResult", "sliding_window_detect", "active_in"]


@dataclass(frozen=True, slots=True)
class TimedTrade:
    """One trading relationship with a validity interval.

    ``effective_to=None`` means still in force (open-ended).  Intervals
    are half-open: ``[effective_from, effective_to)``.
    """

    seller: Node
    buyer: Node
    effective_from: int
    effective_to: int | None = None

    def __post_init__(self) -> None:
        if self.effective_to is not None and self.effective_to <= self.effective_from:
            raise MiningError(
                f"trade {self.seller!r}->{self.buyer!r}: empty validity "
                f"interval [{self.effective_from}, {self.effective_to})"
            )

    @property
    def arc(self) -> tuple[Node, Node]:
        return (self.seller, self.buyer)

    def overlaps(self, window_start: int, window_end: int) -> bool:
        if window_end <= self.effective_from:
            return False
        return self.effective_to is None or self.effective_to > window_start


def active_in(
    trades: Iterable[TimedTrade], window_start: int, window_end: int
) -> set[tuple[Node, Node]]:
    """Distinct arcs active anywhere inside ``[window_start, window_end)``."""
    return {t.arc for t in trades if t.overlaps(window_start, window_end)}


@dataclass(slots=True)
class WindowResult:
    """Detection outcome for one window position."""

    window_start: int
    window_end: int
    result: DetectionResult
    new_suspicious: set[tuple[Node, Node]]
    resolved_suspicious: set[tuple[Node, Node]]

    @property
    def suspicious_arcs(self) -> set[tuple[Node, Node]]:
        return self.result.suspicious_trading_arcs


def sliding_window_detect(
    antecedent: TPIIN,
    trades: Iterable[TimedTrade],
    *,
    window: int,
    step: int | None = None,
    start: int | None = None,
    end: int | None = None,
    collect_groups: bool = False,
) -> Iterator[WindowResult]:
    """Slide a ``window``-wide detection over the timed ``trades``.

    ``antecedent`` supplies the (static) influence structure; any
    trading arcs already on it are rejected — temporal mode owns the
    trading side.  ``step`` defaults to ``window`` (tumbling windows);
    ``start``/``end`` default to the data's extent.  Yields one
    :class:`WindowResult` per position, with the deltas against the
    previous window for alerting.
    """
    if window <= 0:
        raise MiningError("window must be positive")
    step = window if step is None else step
    if step <= 0:
        raise MiningError("step must be positive")
    if any(True for _ in antecedent.trading_arcs()):
        raise MiningError(
            "temporal detection expects an antecedent-only TPIIN; strip "
            "its trading arcs first"
        )

    trades = list(trades)
    if not trades:
        return
    if start is None:
        start = min(t.effective_from for t in trades)
    if end is None:
        horizon = [
            t.effective_to for t in trades if t.effective_to is not None
        ]
        end = max(
            max(horizon, default=start),
            max(t.effective_from for t in trades) + 1,
        )

    detector = IncrementalDetector(antecedent, collect_groups=collect_groups)
    refcount: Counter[tuple[Node, Node]] = Counter()
    previous_suspicious: set[tuple[Node, Node]] = set()

    position = start
    while position < end:
        window_end = position + window
        wanted: Counter[tuple[Node, Node]] = Counter(
            t.arc for t in trades if t.overlaps(position, window_end)
        )
        # Apply deltas against the currently loaded arc multiset.
        for arc in list(refcount):
            if arc not in wanted:
                del refcount[arc]
                detector.remove_trading_arc(*arc)
        for arc, count in wanted.items():
            if arc not in refcount:
                detector.add_trading_arc(*arc)
            refcount[arc] = count

        result = detector.result()
        suspicious = set(result.suspicious_trading_arcs)
        yield WindowResult(
            window_start=position,
            window_end=window_end,
            result=result,
            new_suspicious=suspicious - previous_suspicious,
            resolved_suspicious=previous_suspicious - suspicious,
        )
        previous_suspicious = suspicious
        position += step
