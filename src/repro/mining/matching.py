"""Component-pattern matching (Section 4.3 and Appendix B).

Given the component pattern base of one subTPIIN, a suspicious group is
found wherever two patterns share the same antecedent node ``A1`` and one
of them (type (b)) ends with a trading arc into ``Cj`` while the other
contains ``Cj`` among its influence elements; the matched pair is the
type-(b) walk plus the other walk's prefix up to ``Cj``.  Two special
shapes complete the semantics:

* a **circle** inside a type-(b) walk — the trading target appears among
  the walk's own influence nodes — is itself a simple suspicious group
  (paper example ``{A1, C4, C5, -> C4}``); such a walk is *not* matched
  pairwise because the full walk revisits ``Cj`` and would not be a
  simple trail;
* intra-SCS trades are handled separately by
  :mod:`repro.mining.scs_groups`.

Two implementations are provided: :func:`match_component_patterns`
(prefix-indexed, linear in the base size plus output size) and
:func:`match_pairs_naive` (the literal pairwise scan of Appendix B); the
test suite proves them equivalent.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.digraph import Node
from repro.mining.groups import GroupKind, SuspiciousGroup
from repro.mining.patterns import PatternTrail

__all__ = ["match_component_patterns", "match_pairs_naive", "extract_circle"]


def extract_circle(trail: PatternTrail) -> tuple[Node, ...]:
    """The circle node sequence of a circular InOT-FTAOP walk.

    For ``{A1, C4, C5, -> C4}`` this returns ``(C4, C5, C4)`` — the
    influence sub-walk from the trading target's earlier occurrence,
    closed by the trading arc.
    """
    if not trail.has_circle:
        raise ValueError(f"trail {trail.render()!r} has no circle")
    target = trail.trading_target
    position = trail.nodes.index(target)
    return trail.nodes[position:] + (target,)


def match_component_patterns(
    trails: Iterable[PatternTrail],
) -> list[SuspiciousGroup]:
    """Find every suspicious group certified by a pattern base.

    Deduplication is by the (trading trail, support trail) node-sequence
    pair; distinct full patterns sharing a prefix contribute that prefix
    only once, matching the paper's count of one group per pair of
    component patterns.
    """
    trails = list(trails)
    # Index: antecedent -> node -> set of influence prefixes reaching it.
    prefix_index: dict[Node, dict[Node, set[tuple[Node, ...]]]] = {}
    for trail in trails:
        per_root = prefix_index.setdefault(trail.antecedent, {})
        nodes = trail.nodes
        for i, node in enumerate(nodes):
            per_root.setdefault(node, set()).add(nodes[: i + 1])

    groups: list[SuspiciousGroup] = []
    seen_keys: set[tuple[tuple[Node, ...], tuple[Node, ...]]] = set()
    seen_circles: set[tuple[Node, ...]] = set()
    for trail in trails:
        if not trail.is_ftaop:
            continue
        target = trail.trading_target
        if trail.has_circle:
            circle = extract_circle(trail)
            if circle not in seen_circles:
                seen_circles.add(circle)
                groups.append(
                    SuspiciousGroup(
                        trading_trail=circle,
                        support_trail=(target,),
                        kind=GroupKind.CIRCLE,
                    )
                )
            continue
        trading_trail = trail.nodes + (target,)
        supports = prefix_index[trail.antecedent].get(target)
        if not supports:
            continue
        for support in supports:
            key = (trading_trail, support)
            if key in seen_keys:
                continue
            seen_keys.add(key)
            groups.append(
                SuspiciousGroup(
                    trading_trail=trading_trail,
                    support_trail=support,
                    kind=GroupKind.MATCHED,
                )
            )
    return groups


def match_pairs_naive(trails: Iterable[PatternTrail]) -> list[SuspiciousGroup]:
    """Literal Appendix-B matching: scan pattern pairs per antecedent.

    Quadratic in the per-antecedent base size; retained as the reference
    implementation the indexed matcher is verified against.
    """
    by_root: dict[Node, list[PatternTrail]] = {}
    for trail in trails:
        by_root.setdefault(trail.antecedent, []).append(trail)

    groups: list[SuspiciousGroup] = []
    seen_keys: set[tuple[tuple[Node, ...], tuple[Node, ...]]] = set()
    seen_circles: set[tuple[Node, ...]] = set()
    for root_trails in by_root.values():
        for pb in root_trails:
            if not pb.is_ftaop:
                continue
            target = pb.trading_target
            if pb.has_circle:
                circle = extract_circle(pb)
                if circle not in seen_circles:
                    seen_circles.add(circle)
                    groups.append(
                        SuspiciousGroup(
                            trading_trail=circle,
                            support_trail=(target,),
                            kind=GroupKind.CIRCLE,
                        )
                    )
                continue
            trading_trail = pb.nodes + (target,)
            for pa in root_trails:
                if target not in pa.nodes:
                    continue
                support = pa.nodes[: pa.nodes.index(target) + 1]
                key = (trading_trail, support)
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                groups.append(
                    SuspiciousGroup(
                        trading_trail=trading_trail,
                        support_trail=support,
                        kind=GroupKind.MATCHED,
                    )
                )
    return groups
