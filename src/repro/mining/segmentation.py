"""TPIIN segmentation into subTPIINs (Definition 4; Algorithm 1, steps 1-6).

The divide-and-conquer step rests on the observation that a trading arc
joining two *different* weakly connected subgraphs of the antecedent
network cannot be suspicious: no party can stand behind both endpoints.
Each maximal weakly connected subgraph (MWCS) of the antecedent network,
together with the trading arcs between its own company nodes, forms one
``subTPIIN`` that can be mined independently — the soundness of this
split (no group is lost) is property-tested against whole-network
mining.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import weakly_connected_components
from repro.model.colors import EColor

__all__ = ["SubTPIIN", "SegmentationResult", "segment"]


@dataclass(slots=True)
class SubTPIIN:
    """One weakly connected slice of a TPIIN.

    ``graph`` holds the antecedent arcs of the MWCS plus the trading arcs
    between its company nodes — the edge-list the paper feeds to
    Algorithm 2.
    """

    index: int
    graph: DiGraph

    @property
    def nodes(self) -> set[Node]:
        return set(self.graph.nodes())

    @property
    def influence_arc_count(self) -> int:
        return self.graph.number_of_arcs(EColor.INFLUENCE)

    @property
    def trading_arc_count(self) -> int:
        return self.graph.number_of_arcs(EColor.TRADING)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SubTPIIN #{self.index} nodes={len(self.nodes)} "
            f"IN={self.influence_arc_count} TR={self.trading_arc_count}>"
        )


@dataclass(slots=True)
class SegmentationResult:
    """All subTPIINs plus the trading arcs the split dismissed.

    ``total_components`` counts every MWCS of the antecedent network
    (Algorithm 1's ``L``), including trivial ones that ``skip_trivial``
    dropped from ``subtpiins``.
    """

    subtpiins: list[SubTPIIN] = field(default_factory=list)
    cross_component_trades: list[tuple[Node, Node]] = field(default_factory=list)
    total_components: int = 0

    @property
    def number_of_subtpiins(self) -> int:
        return len(self.subtpiins)

    def __iter__(self) -> Iterator[SubTPIIN]:
        return iter(self.subtpiins)


def segment(tpiin: TPIIN, *, skip_trivial: bool = False) -> SegmentationResult:
    """Split ``tpiin`` into its subTPIINs.

    Components are discovered over the influence arcs only (Algorithm 1,
    step 3: ``findsubgraph`` on the ``Antecedent`` matrix); each trading
    arc is then attached to the component containing both endpoints, or
    recorded as an unsuspicious *cross-component trade* otherwise
    (Algorithm 1, step 5).

    ``skip_trivial`` drops subTPIINs that cannot possibly host a group —
    those without any trading arc — which is a pure optimization: the
    pattern search on them yields no type-(b) walk and hence no match.
    """
    graph = tpiin.graph
    components = weakly_connected_components(graph, EColor.INFLUENCE)
    component_of: dict[Node, int] = {}
    for index, component in enumerate(components):
        for node in component:
            component_of[node] = index

    subgraphs: list[DiGraph] = []
    for component in components:
        sub = DiGraph()
        for node in component:
            sub.add_node(node, graph.node_color(node))
        subgraphs.append(sub)
    for tail, head, _color in graph.arcs(EColor.INFLUENCE):
        subgraphs[component_of[tail]].add_arc(tail, head, EColor.INFLUENCE)

    cross: list[tuple[Node, Node]] = []
    for tail, head, _color in graph.arcs(EColor.TRADING):
        tail_component = component_of[tail]
        if tail_component == component_of[head]:
            subgraphs[tail_component].add_arc(tail, head, EColor.TRADING)
        else:
            cross.append((tail, head))

    subtpiins: list[SubTPIIN] = []
    for sub in subgraphs:
        if skip_trivial and sub.number_of_arcs(EColor.TRADING) == 0:
            continue
        subtpiins.append(SubTPIIN(index=len(subtpiins), graph=sub))
    return SegmentationResult(
        subtpiins=subtpiins,
        cross_component_trades=cross,
        total_components=len(components),
    )
