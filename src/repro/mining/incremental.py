"""Incremental (streaming) suspicious-group detection.

The paper motivates the MSG-phase with NTICS-scale data: a billion
tax-related records a year with daily peaks of ten million.  At that
rate re-mining the whole TPIIN per batch is wasteful.  The key
observation — provable from Definition 2 — is that detection is
**arc-decomposable**: a suspicious group contains exactly one trading
arc, so the groups behind one trading relationship depend only on that
arc and the (comparatively stable) antecedent network, never on other
trading arcs.

:class:`IncrementalDetector` exploits this: it indexes the antecedent
network once — packed root-ancestor bitsets, a frozen
:class:`~repro.graph.csr.CSRGraph` of the influence arcs (reused for
every path walk across the detector's lifetime, which is what the
serving daemon amortizes between requests), and lazy per-root path
caches as in :mod:`repro.mining.fast` — and then processes trading-arc
insertions and deletions in isolation.  After any sequence of updates
its aggregate result equals a batch run over the same arc set — a
property the hypothesis suite verifies.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.graph.bitset import RootAncestorIndex
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import weakly_connected_components
from repro.mining.detector import DetectionResult
from repro.mining.fast import enumerate_arc_groups, enumerate_root_paths
from repro.mining.groups import GroupKind, SuspiciousGroup
from repro.mining.scs_groups import shortest_path_in
from repro.model.colors import EColor, VColor
from repro.obs.registry import get_registry
from repro.obs.tracing import NULL_TRACER, TracerLike

__all__ = ["ArcUpdate", "IncrementalDetector", "PathCacheStats"]


@dataclass(frozen=True, slots=True)
class PathCacheStats:
    """Counters for the per-root influence-path cache.

    A long-lived detector (the serving daemon) needs these to bound its
    memory and to report cache effectiveness on ``/metrics``.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int | None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict[str, int | float | None]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True, slots=True)
class ArcUpdate:
    """Outcome of one streaming update."""

    arc: tuple[Node, Node]
    suspicious: bool
    groups: tuple[SuspiciousGroup, ...]
    applied: bool  # False for duplicate adds / removals of absent arcs

    @property
    def group_count(self) -> int:
        return len(self.groups)


@dataclass(slots=True)
class _ArcState:
    suspicious: bool
    groups: list[SuspiciousGroup] = field(default_factory=list)


class IncrementalDetector:
    """Streaming detector over a fixed antecedent network.

    Parameters
    ----------
    tpiin:
        The fused TPIIN.  Its influence arcs, contraction provenance and
        saved SCS subgraphs define the static antecedent side; any
        trading arcs already present (including recorded intra-SCS
        trades) are ingested as the initial stream.
    collect_groups:
        With ``False`` only counts are tracked, mirroring
        ``fast_detect(collect_groups=False)``.
    max_cached_roots:
        Upper bound on the number of roots whose influence-path
        enumerations are kept in the LRU cache.  ``None`` disables the
        cap (the pre-bounded behaviour); the default is generous enough
        that batch-equivalent workloads never evict.
    tracer:
        Observability tracer for the construction phases (antecedent
        indexing and initial-stream ingest); defaults to the null
        tracer.  Long-lived callers (the daemon) trace per-mutation
        with their own tracers instead.
    ingest_baseline:
        With ``False`` the TPIIN's own trading arcs (and recorded
        intra-SCS trades) are *not* ingested at construction — the
        caller owns the initial stream.  The sharded service uses this:
        each shard detector starts empty and receives only the arcs its
        component partition owns.
    share_antecedent_from:
        An existing detector over the *same* TPIIN whose immutable
        antecedent indexes (root-ancestor bitsets, frozen influence
        CSR, component map, SCS membership) this one reuses instead of
        rebuilding.  Mutable state — the live arc set, the per-root
        path cache and its counters — stays per-instance, so N shard
        detectors share one index build and memory footprint for the
        antecedent side while streaming independently.
    """

    def __init__(
        self,
        tpiin: TPIIN,
        *,
        collect_groups: bool = True,
        max_cached_roots: int | None = 4096,
        tracer: TracerLike = NULL_TRACER,
        ingest_baseline: bool = True,
        share_antecedent_from: "IncrementalDetector | None" = None,
    ) -> None:
        if max_cached_roots is not None and max_cached_roots < 1:
            raise MiningError(
                f"max_cached_roots must be positive or None, got {max_cached_roots}"
            )
        self._tpiin = tpiin
        self._collect = collect_groups
        if share_antecedent_from is not None:
            donor = share_antecedent_from
            if donor._tpiin is not tpiin:
                raise MiningError(
                    "share_antecedent_from requires a detector over the same TPIIN"
                )
            # Antecedent indexes are immutable for the detector lifetime,
            # so sharing references (not copies) is safe across threads.
            self._graph = donor._graph
            self._index = donor._index
            self._csr = donor._csr
        else:
            self._graph = tpiin.antecedent_graph()
            with tracer.span("index_antecedent") as index_span:
                self._index = RootAncestorIndex(self._graph, EColor.INFLUENCE)
                # The antecedent side is immutable for the detector's
                # lifetime: freeze it once and let every per-arc path walk
                # (across all requests of a serving daemon) run over the
                # CSR kernel.
                self._csr = CSRGraph.freeze(self._graph, colors=(EColor.INFLUENCE,))
                if tracer.enabled:
                    index_span.set(nodes=len(self._csr))
        self._max_cached_roots = max_cached_roots
        self._path_cache: OrderedDict[
            Node, dict[Node, list[tuple[Node, ...]]]
        ] = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        # Process-wide mirrors of the per-instance cache counters; held
        # as objects so the hot path pays one inc(), not a registry
        # lookup.  Shared across detectors by design (cumulative).
        registry = get_registry()
        self._hits_counter = registry.counter(
            "repro_path_cache_hits_total",
            help="Per-root influence-path cache hits.",
        )
        self._misses_counter = registry.counter(
            "repro_path_cache_misses_total",
            help="Per-root influence-path cache misses.",
        )
        self._evictions_counter = registry.counter(
            "repro_path_cache_evictions_total",
            help="Per-root influence-path cache LRU evictions.",
        )
        if share_antecedent_from is not None:
            self._member_to_scs = share_antecedent_from._member_to_scs
            self._component_of = share_antecedent_from._component_of
        else:
            self._member_to_scs = {}
            for scs_id, subgraph in tpiin.scs_subgraphs.items():
                for member in subgraph.nodes():
                    self._member_to_scs[member] = scs_id

            self._component_of = {}
            for i, component in enumerate(
                weakly_connected_components(self._graph, EColor.INFLUENCE)
            ):
                for node in component:
                    self._component_of[node] = i

        self._arcs: dict[tuple[Node, Node], _ArcState] = {}
        self._simple = 0
        self._complex = 0
        self._kinds: Counter[GroupKind] = Counter()

        if ingest_baseline:
            with tracer.span("ingest") as ingest_span:
                for arc in tpiin.trading_arcs():
                    self.add_trading_arc(*arc)
                for arc in tpiin.intra_scs_trades:
                    self.add_trading_arc(*arc)
                if tracer.enabled:
                    ingest_span.set(
                        arcs=len(self._arcs), suspicious=len(self.suspicious_arcs)
                    )

    # ------------------------------------------------------------------
    # stream operations
    # ------------------------------------------------------------------
    def add_trading_arc(self, seller: Node, buyer: Node) -> ArcUpdate:
        """Process one new trading relationship.

        Returns the arc's suspiciousness and its proof-chain groups
        (this is what an online monitoring system would alert on).
        Duplicate insertions are idempotent (``applied=False``).
        """
        arc = self._resolve_arc(seller, buyer)
        key = (seller, buyer)
        if key in self._arcs:
            state = self._arcs[key]
            return ArcUpdate(key, state.suspicious, tuple(state.groups), False)

        groups = self._groups_for(seller, buyer, arc)
        state = _ArcState(suspicious=bool(groups), groups=list(groups))
        self._arcs[key] = state
        self._account(groups, sign=+1)
        return ArcUpdate(key, state.suspicious, tuple(groups), True)

    def remove_trading_arc(self, seller: Node, buyer: Node) -> ArcUpdate:
        """Retract a trading relationship (e.g. a corrected filing)."""
        key = (seller, buyer)
        state = self._arcs.pop(key, None)
        if state is None:
            return ArcUpdate(key, False, (), False)
        self._account(state.groups, sign=-1)
        return ArcUpdate(key, state.suspicious, tuple(state.groups), True)

    def __contains__(self, arc: tuple[Node, Node]) -> bool:
        return arc in self._arcs

    def __len__(self) -> int:
        return len(self._arcs)

    def trading_arcs(self) -> list[tuple[Node, Node]]:
        """The currently live trading arcs, in insertion order.

        This is the state a serving layer must persist to reconstruct
        the detector (the antecedent network is immutable).
        """
        return list(self._arcs)

    # ------------------------------------------------------------------
    # aggregate view
    # ------------------------------------------------------------------
    @property
    def suspicious_arcs(self) -> set[tuple[Node, Node]]:
        return {arc for arc, state in self._arcs.items() if state.suspicious}

    @property
    def path_cache_stats(self) -> PathCacheStats:
        """Hit/miss/eviction counters of the per-root path cache."""
        return PathCacheStats(
            hits=self._cache_hits,
            misses=self._cache_misses,
            evictions=self._cache_evictions,
            size=len(self._path_cache),
            capacity=self._max_cached_roots,
        )

    def groups_for_arc(self, seller: Node, buyer: Node) -> list[SuspiciousGroup]:
        state = self._arcs.get((seller, buyer))
        return list(state.groups) if state else []

    def is_suspicious_arc(self, seller: Node, buyer: Node) -> bool:
        """Whether the (present) arc backs at least one group — O(1)."""
        state = self._arcs.get((seller, buyer))
        return state.suspicious if state else False

    @property
    def component_count(self) -> int:
        """Number of antecedent components (subTPIINs)."""
        return len(set(self._component_of.values()))

    def component_of(self, node: Node) -> int:
        """The antecedent-component (subTPIIN) index of ``node``.

        Accepts original company ids (contracted members are mapped to
        their SCS node first).  This is the subTPIIN key the service's
        ``/v1/trace/{subtpiin}`` endpoint files mutation traces under.
        """
        mapped = self._map(node)
        try:
            return self._component_of[mapped]
        except KeyError:
            raise MiningError(f"node {node!r} is unknown to the TPIIN") from None

    def result(self) -> DetectionResult:
        """A :class:`DetectionResult` equal to a batch run over the arcs."""
        groups: list[SuspiciousGroup] = []
        if self._collect:
            for state in self._arcs.values():
                groups.extend(state.groups)
        return DetectionResult(
            groups=groups,
            total_trading_arcs=len(self._arcs),
            cross_component_trades=sum(
                1
                for (s, b) in self._arcs
                if self._component_of[self._map(s)]
                != self._component_of[self._map(b)]
            ),
            subtpiin_count=self.component_count,
            engine="incremental",
            simple_count_override=None if self._collect else self._simple,
            complex_count_override=None if self._collect else self._complex,
            kind_counts_override=None if self._collect else Counter(self._kinds),
            suspicious_arcs_override=None if self._collect else self.suspicious_arcs,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _map(self, node: Node) -> Node:
        return self._tpiin.node_map.get(node, node)

    def _resolve_arc(self, seller: Node, buyer: Node) -> tuple[Node, Node]:
        if seller == buyer:
            raise MiningError(f"self trade on {seller!r}")
        mapped = (self._map(seller), self._map(buyer))
        for original, node in zip((seller, buyer), mapped):
            if not self._graph.has_node(node):
                raise MiningError(
                    f"trading endpoint {original!r} is unknown to the TPIIN"
                )
            if self._graph.node_color(node) != VColor.COMPANY:
                raise MiningError(f"trading endpoint {original!r} is not a company")
        return mapped

    def _paths_of(self, root: Node) -> dict[Node, list[tuple[Node, ...]]]:
        cached = self._path_cache.get(root)
        if cached is not None:
            self._cache_hits += 1
            self._hits_counter.inc()
            self._path_cache.move_to_end(root)
            return cached
        self._cache_misses += 1
        self._misses_counter.inc()
        cached = enumerate_root_paths(self._csr, root, EColor.INFLUENCE)
        self._path_cache[root] = cached
        if (
            self._max_cached_roots is not None
            and len(self._path_cache) > self._max_cached_roots
        ):
            self._path_cache.popitem(last=False)
            self._cache_evictions += 1
            self._evictions_counter.inc()
        return cached

    def _groups_for(
        self, seller: Node, buyer: Node, mapped: tuple[Node, Node]
    ) -> list[SuspiciousGroup]:
        c1, c2 = mapped
        if c1 == c2:
            # Both endpoints inside one contracted SCS: suspicious by
            # construction, witnessed by an investment trail.
            scs_id = self._member_to_scs.get(seller)
            if scs_id is None or self._member_to_scs.get(buyer) != scs_id:
                raise MiningError(
                    f"endpoints {seller!r}, {buyer!r} map to one node but are "
                    "not members of a saved SCS"
                )
            witness = shortest_path_in(
                self._tpiin.scs_subgraphs[scs_id], seller, buyer
            )
            return [
                SuspiciousGroup(
                    trading_trail=(seller, buyer),
                    support_trail=witness,
                    kind=GroupKind.SCS,
                )
            ]

        return enumerate_arc_groups(
            self._csr, self._index, self._paths_of, c1, c2
        )

    def _account(self, groups: list[SuspiciousGroup], *, sign: int) -> None:
        for group in groups:
            self._kinds[group.kind] += sign
            if group.is_simple:
                self._simple += sign
            else:
                self._complex += sign
