"""Patterns-tree construction and the component pattern base (Algorithm 2).

Starting from every indegree-zero node of a subTPIIN's antecedent
network, a depth-first search follows arcs and terminates a branch on one
of the two stop criteria:

* **Rule 1** — the current node has no outgoing arc at all; the emitted
  walk is an *InOT-OutOSP* walk (Definition 5), a pure influence trail;
* **Rule 2** — a trading arc is traversed; the walk ends at that arc's
  head and is an *InOT-FTAOP* walk (Definition 6), an influence trail
  closed by its first trading arc.

Every root-to-leaf branch of the resulting *patterns tree* is one
**potential component pattern** (a *suspicious relationship trail*); the
collection is the pattern base of Fig. 10.

Note on start nodes: the paper computes indegrees over the whole
subTPIIN, whose roots are persons in every example.  For completeness on
networks where a company has incoming *trading* arcs but no influence
ancestor at all, this implementation takes indegree-zero with respect to
the **influence** arcs (a superset of the paper's start set); each extra
start is a company that no person or investor influences, and its walks
are exactly the Definition-5/6 walks anchored there.  DESIGN.md records
the decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.graph.digraph import DiGraph, Node
from repro.model.colors import EColor

__all__ = [
    "PatternTrail",
    "PatternTreeNode",
    "PatternsTreeResult",
    "list_d_order",
    "build_patterns_tree",
]


@dataclass(frozen=True, slots=True)
class PatternTrail:
    """One entry of the component pattern base.

    ``nodes`` is the influence walk ``A1, ..., Am``; ``trading_target``
    is ``Cj`` when the walk was closed by a trading arc (an InOT-FTAOP
    walk, case (b)) and ``None`` for a pure influence walk (an
    InOT-OutOSP walk, case (a)).
    """

    nodes: tuple[Node, ...]
    trading_target: Node | None = None

    @property
    def antecedent(self) -> Node:
        """The walk's start node ``A1``."""
        return self.nodes[0]

    @property
    def is_ftaop(self) -> bool:
        """True for case (b): ends with a trading arc (Definition 6)."""
        return self.trading_target is not None

    @property
    def is_outosp(self) -> bool:
        """True for case (a): a pure influence walk (Definition 5)."""
        return self.trading_target is None

    @property
    def trading_arc(self) -> tuple[Node, Node] | None:
        if self.trading_target is None:
            return None
        return (self.nodes[-1], self.trading_target)

    @property
    def has_circle(self) -> bool:
        """True when the trading arc closes a circle within the walk."""
        return self.trading_target is not None and self.trading_target in self.nodes

    def render(self) -> str:
        """The Fig. 10 textual form, e.g. ``"L1, C2, C5 -> C6"``."""
        body = ", ".join(str(n) for n in self.nodes)
        if self.trading_target is None:
            return body
        return f"{body} -> {self.trading_target}"

    def __len__(self) -> int:
        return len(self.nodes) + (1 if self.trading_target is not None else 0)


@dataclass(slots=True)
class PatternTreeNode:
    """A node of the patterns tree (Fig. 9)."""

    node: Node
    via_trading: bool = False
    children: list["PatternTreeNode"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        lines: list[str] = []
        stack: list[tuple[PatternTreeNode, int]] = [(self, indent)]
        while stack:
            current, depth = stack.pop()
            marker = "=> " if current.via_trading else ""
            lines.append(" " * depth + marker + str(current.node))
            stack.extend(
                (child, depth + 2) for child in reversed(current.children)
            )
        return "\n".join(lines)

    def leaf_count(self) -> int:
        count = 0
        stack: list[PatternTreeNode] = [self]
        while stack:
            current = stack.pop()
            if current.children:
                stack.extend(current.children)
            else:
                count += 1
        return count


@dataclass(slots=True)
class PatternsTreeResult:
    """The patterns tree plus its flattened component pattern base.

    ``truncated`` is ``True`` when a ``max_trails`` cap stopped the
    search early, i.e. ``trails`` is a prefix of the full pattern base
    and every result derived from it is a lower bound.
    """

    roots: list[PatternTreeNode]
    trails: list[PatternTrail]
    list_d: list[Node]
    truncated: bool = False

    def render_tree(self) -> str:
        """Fig. 9-style indented rendering of the whole forest."""
        return "\n".join(root.render() for root in self.roots)

    def render_base(self) -> str:
        """Fig. 10-style numbered rendering of the pattern base."""
        return "\n".join(
            f"{i}. {trail.render()}" for i, trail in enumerate(self.trails, start=1)
        )

    def trails_by_antecedent(self) -> dict[Node, list[PatternTrail]]:
        grouped: dict[Node, list[PatternTrail]] = {}
        for trail in self.trails:
            grouped.setdefault(trail.antecedent, []).append(trail)
        return grouped

    def __iter__(self) -> Iterator[PatternTrail]:
        return iter(self.trails)


def list_d_order(graph: DiGraph) -> list[Node]:
    """Algorithm 2, steps 1-2: the ``ListD`` node ordering.

    Nodes sorted by increasing indegree, ties broken by decreasing
    outdegree (both over all arcs of the subTPIIN), then by node id for
    determinism.  The indegree-zero prefix of this list seeds the
    pattern search.
    """
    return sorted(
        graph.nodes(),
        key=lambda n: (graph.in_degree(n), -graph.out_degree(n), str(n)),
    )


def build_patterns_tree(
    graph: DiGraph,
    *,
    max_trails: int | None = None,
    build_tree: bool = True,
) -> PatternsTreeResult:
    """Run Algorithm 2 on one subTPIIN graph.

    Parameters
    ----------
    graph:
        A subTPIIN: influence + trading arcs over Person/Company nodes.
    max_trails:
        Optional safety bound on the number of emitted trails (the
        pattern base can be large at high trading density); ``None``
        means unbounded.
    build_tree:
        When ``False``, only the trail base is produced and the explicit
        tree nodes are skipped — the mining path uses this to avoid
        materializing the Fig. 9 structure it never reads.

    Returns the tree forest (one root per start node), the component
    pattern base, and the ``ListD`` ordering.
    """
    list_d = list_d_order(graph)
    start_nodes = [n for n in list_d if graph.in_degree(n, EColor.INFLUENCE) == 0]

    trails: list[PatternTrail] = []
    forest: list[PatternTreeNode] = []

    # Sorted (successor, is_trading) lists, memoized per node for the
    # duration of this call: a node revisited along many walks pays the
    # O(d log d) string sort once, not once per DFS step.
    arc_cache: dict[Node, tuple[tuple[Node, bool], ...]] = {}

    def out_arcs_of(node: Node) -> Iterator[tuple[Node, bool]]:
        """(successor, is_trading) pairs in deterministic order."""
        cached = arc_cache.get(node)
        if cached is None:
            pairs: list[tuple[Node, bool]] = []
            for head, colors in sorted(
                ((h, graph.arc_colors(node, h)) for h in graph.successors(node)),
                key=lambda item: str(item[0]),
            ):
                if EColor.INFLUENCE in colors:
                    pairs.append((head, False))
                if EColor.TRADING in colors:
                    pairs.append((head, True))
            cached = tuple(pairs)
            arc_cache[node] = cached
        return iter(cached)

    for start in start_nodes:
        root = PatternTreeNode(start) if build_tree else None
        if root is not None:
            forest.append(root)
        # Iterative DFS.  Each stack frame: (node, tree_node, iterator of
        # remaining out-arcs).  `path`/`on_path` hold the influence walk.
        path: list[Node] = [start]
        on_path: set[Node] = {start}
        emitted_any: list[bool] = [False]

        stack: list[tuple[Node, PatternTreeNode | None, Iterator[tuple[Node, bool]]]] = [
            (start, root, out_arcs_of(start))
        ]
        while stack:
            node, tree_node, arcs = stack[-1]
            step = next(arcs, None)
            if step is None:
                if not emitted_any[-1]:
                    # Rule 1: no outgoing arc consumed a continuation —
                    # emit the pure influence walk.  (A node with only a
                    # trading successor never reaches here: the trading
                    # branch below marks the frame as emitted.)
                    trails.append(PatternTrail(tuple(path)))
                stack.pop()
                emitted_any.pop()
                on_path.discard(path.pop())
                continue
            successor, is_trading = step
            if is_trading:
                # Rule 2: traverse the first trading arc and stop.
                trails.append(PatternTrail(tuple(path), trading_target=successor))
                emitted_any[-1] = True
                if tree_node is not None:
                    tree_node.children.append(
                        PatternTreeNode(successor, via_trading=True)
                    )
                if max_trails is not None and len(trails) >= max_trails:
                    return PatternsTreeResult(forest, trails, list_d, truncated=True)
                continue
            if successor in on_path:
                # Cannot happen on a valid (DAG) antecedent network;
                # guarded so malformed inputs terminate rather than loop.
                continue
            child = PatternTreeNode(successor) if tree_node is not None else None
            if tree_node is not None and child is not None:
                tree_node.children.append(child)
            path.append(successor)
            on_path.add(successor)
            emitted_any[-1] = True
            emitted_any.append(False)
            stack.append((successor, child, out_arcs_of(successor)))
            if max_trails is not None and len(trails) >= max_trails:
                return PatternsTreeResult(forest, trails, list_d, truncated=True)
    return PatternsTreeResult(forest, trails, list_d)
