"""Suspicious-group data structures (Definitions 2 and 3).

A *suspicious tax evasion group* consists of two simple directed trails
with the same start node (the **antecedent**) and the same end node,
whose edge union contains exactly one trading arc, incoming to the end
node.  The group is *simple* when the trails share no node besides the
start and end.

Three shapes arise in a TPIIN:

* **matched** — the regular case: an influence trail closed by a trading
  arc, paired with a pure influence trail to the trading arc's head;
* **circle** — an influence trail from the trading arc's head back to
  its tail, closed by the trading arc itself (Section 4.3's
  ``{A1, C4, C5, -> C4}`` special case); the support trail degenerates
  to the single end node; and
* **scs** — a trading arc inside a contracted strongly-connected
  investment syndicate, witnessed by an investment trail between the
  same endpoints (Section 4.3's closing remark).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import MiningError
from repro.graph.digraph import Node

__all__ = ["GroupKind", "SuspiciousGroup", "minimal_groups"]


class GroupKind(str, enum.Enum):
    MATCHED = "matched"
    CIRCLE = "circle"
    SCS = "scs"


@dataclass(frozen=True, slots=True)
class SuspiciousGroup:
    """One suspicious tax evasion group.

    Attributes
    ----------
    trading_trail:
        Node sequence of the trail that carries the trading arc as its
        final step: ``(start, ..., c1, c2)`` where ``c1 -> c2`` is the
        trading arc.  For circle groups the start equals the end
        (``(c2, ..., c1, c2)``).
    support_trail:
        Node sequence of the pure influence trail ``(start, ..., c2)``.
        For circle groups this is the trivial trail ``(c2,)``; for SCS
        groups it is the investment witness trail inside the syndicate.
    kind:
        Which of the three shapes this group is.
    """

    trading_trail: tuple[Node, ...]
    support_trail: tuple[Node, ...]
    kind: GroupKind = GroupKind.MATCHED

    def __post_init__(self) -> None:
        if len(self.trading_trail) < 2:
            raise MiningError("trading trail must contain the trading arc")
        if not self.support_trail:
            raise MiningError("support trail must contain at least the end node")
        if self.kind is GroupKind.CIRCLE:
            if self.trading_trail[0] != self.trading_trail[-1]:
                raise MiningError("circle group must start and end at the same node")
            if self.support_trail != (self.trading_trail[-1],):
                raise MiningError("circle group support trail must be trivial")
        else:
            if self.trading_trail[0] != self.support_trail[0]:
                raise MiningError("the two trails must share their start node")
            if self.trading_trail[-1] != self.support_trail[-1]:
                raise MiningError("the two trails must share their end node")

    # ------------------------------------------------------------------
    @classmethod
    def trusted(
        cls,
        trading_trail: tuple[Node, ...],
        support_trail: tuple[Node, ...],
        kind: GroupKind,
    ) -> "SuspiciousGroup":
        """Construct without ``__post_init__`` validation.

        For miners that guarantee the trail invariants by construction
        (the CSR engine's fused DFS/matcher emits millions of groups on
        dense settings, where per-group re-validation is pure overhead).
        Everything else should go through the regular constructor.
        """
        self = object.__new__(cls)
        _SET_TRADING(self, trading_trail)
        _SET_SUPPORT(self, support_trail)
        _SET_KIND(self, kind)
        return self

    @property
    def antecedent(self) -> Node:
        """The shared start node of the two trails."""
        return self.trading_trail[0]

    @property
    def end(self) -> Node:
        """The shared end node (head of the trading arc)."""
        return self.trading_trail[-1]

    @property
    def trading_arc(self) -> tuple[Node, Node]:
        """The single trading arc ``(c1, c2)`` behind the group."""
        return (self.trading_trail[-2], self.trading_trail[-1])

    @property
    def members(self) -> frozenset[Node]:
        """All distinct nodes involved in the group."""
        return frozenset(self.trading_trail) | frozenset(self.support_trail)

    @property
    def is_simple(self) -> bool:
        """Definition 3: the trails share no node besides start and end.

        Circle and SCS groups are simple by construction (the paper
        classifies the circle case as a simple suspicious group, and SCS
        witnesses are chosen as shortest — hence interior-disjoint —
        investment paths).
        """
        if self.kind in (GroupKind.CIRCLE, GroupKind.SCS):
            return True
        trading_interior = set(self.trading_trail[1:-1])
        support_interior = set(self.support_trail[1:-1])
        return not (trading_interior & support_interior)

    @property
    def is_complex(self) -> bool:
        return not self.is_simple

    # ------------------------------------------------------------------
    def component_patterns(self) -> tuple[tuple[Node, ...], tuple[Node, ...]]:
        """The two component patterns (Definition 3) as node sequences."""
        return (self.trading_trail, self.support_trail)

    def key(self) -> tuple[tuple[Node, ...], tuple[Node, ...]]:
        """Canonical deduplication key."""
        return (self.trading_trail, self.support_trail)

    def render(self) -> str:
        """Human-readable form, e.g. ``{L1, C1, C3 -> C5} + {L1, C2, C5}``."""
        lead = self.trading_trail
        trading = ", ".join(str(n) for n in lead[:-1]) + f" -> {lead[-1]}"
        support = ", ".join(str(n) for n in self.support_trail)
        flavor = "simple" if self.is_simple else "complex"
        return f"[{flavor}/{self.kind.value}] {{{trading}}} + {{{support}}}"

    def __iter__(self) -> Iterator[Node]:
        return iter(sorted(self.members, key=str))


# Slot descriptors sidestep both the frozen-dataclass __setattr__ guard
# and object.__setattr__'s per-call attribute-name lookup in trusted().
_SET_TRADING = SuspiciousGroup.__dict__["trading_trail"].__set__
_SET_SUPPORT = SuspiciousGroup.__dict__["support_trail"].__set__
_SET_KIND = SuspiciousGroup.__dict__["kind"].__set__


def minimal_groups(groups: list[SuspiciousGroup]) -> list[SuspiciousGroup]:
    """Per trading arc, keep only membership-minimal groups.

    The counting semantics of Table 1 enumerate every trail pair, so a
    suspicious arc in a dense conglomerate carries many nested groups
    (e.g. the root-anchored complex group that contains a smaller simple
    one).  An auditor opening a case wants the *minimal* proof chains: a
    group is kept iff no other group over the same trading arc has a
    strictly smaller member set.  Ties (incomparable member sets) are
    all kept.  Order is preserved.
    """
    by_arc: dict[tuple[Node, Node], list[SuspiciousGroup]] = {}
    for group in groups:
        by_arc.setdefault(group.trading_arc, []).append(group)
    keep: set[int] = set()
    for arc_groups in by_arc.values():
        for group in arc_groups:
            dominated = any(
                other is not group and other.members < group.members
                for other in arc_groups
            )
            if not dominated:
                keep.add(id(group))
    return [g for g in groups if id(g) in keep]
