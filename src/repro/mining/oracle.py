"""Ground-truth characterization of suspicious trading arcs.

DESIGN.md proves (and the property suite verifies) the following exact
characterization: in a TPIIN whose antecedent network is a DAG, a
trading arc ``c1 -> c2`` closes at least one suspicious group **iff**
``c1`` and ``c2`` share an indegree-zero root ancestor in the antecedent
network (every node counting as its own ancestor).  Intra-SCS trades are
suspicious unconditionally.

The oracle is independent of the pattern-tree machinery — it only uses
ancestor reachability — which makes it the arbiter behind the 100%
accuracy columns of Table 1: detector output is compared against oracle
output arc by arc.
"""

from __future__ import annotations

from repro.fusion.tpiin import TPIIN
from repro.graph.bitset import RootAncestorIndex
from repro.graph.dag import ancestor_closure
from repro.graph.digraph import Node
from repro.model.colors import EColor

__all__ = ["suspicious_arc_oracle", "suspicious_arc_oracle_closure"]


def suspicious_arc_oracle(tpiin: TPIIN) -> set[tuple[Node, Node]]:
    """All suspicious trading arcs, via the packed root-ancestor index.

    Returns in-TPIIN trading arcs whose endpoints share a root ancestor,
    plus every intra-SCS trade (in original company ids).
    """
    arcs = list(tpiin.trading_arcs())
    suspicious: set[tuple[Node, Node]] = set(tpiin.intra_scs_trades)
    if arcs:
        index = RootAncestorIndex(tpiin.graph, EColor.INFLUENCE)
        tails = [a for a, _b in arcs]
        heads = [b for _a, b in arcs]
        mask = index.shares_root_bulk(tails, heads)
        suspicious.update(arc for arc, flag in zip(arcs, mask) if flag)
    return suspicious


def suspicious_arc_oracle_closure(tpiin: TPIIN) -> set[tuple[Node, Node]]:
    """Second, independent oracle via full ancestor-set closures.

    Uses *all* common ancestors rather than common roots; the two oracles
    agree on DAGs (a common ancestor always has a common root above it),
    and the property suite checks this equivalence — it is the keystone
    of the completeness argument.
    """
    closure = ancestor_closure(tpiin.graph, EColor.INFLUENCE)
    suspicious: set[tuple[Node, Node]] = set(tpiin.intra_scs_trades)
    for tail, head in tpiin.trading_arcs():
        if closure[tail] & closure[head]:
            suspicious.add((tail, head))
    return suspicious
