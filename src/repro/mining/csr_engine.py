"""CSR-backed mining engine (``engine="csr"``).

Runs the faithful pipeline — segmentation, Algorithm 2's patterns tree,
Appendix-B matching, SCS groups — but over the frozen
:class:`~repro.graph.csr.CSRGraph` kernel instead of the hash-based
:class:`~repro.graph.digraph.DiGraph`:

* each subTPIIN is **frozen once**: nodes interned to dense ints
  (``str``-sorted, so int order equals the faithful engine's sort
  order), adjacency packed into color-partitioned CSR arrays, and the
  per-node ``(successor, is_trading)`` merge precomputed;
* the trail DFS walks precomputed tuples — no hashing, no per-visit
  sorting, no per-step allocation beyond the emitted trail;
* the DFS and Appendix-B matcher are **fused**: every influence prefix
  is a path to a DFS tree node, so the matcher's prefix index is built
  during the walk (one registration per tree node) instead of slicing
  every trail's prefixes afterwards, and groups are emitted directly
  in decoded form.

Equivalence with the faithful engine is exact, not just set-wise:
:func:`build_patterns_tree_csr` reproduces
:func:`~repro.mining.patterns.build_patterns_tree`'s trail list in
order, which the property suite asserts.
"""

from __future__ import annotations

import numpy as np

from repro.fusion.tpiin import TPIIN
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import weakly_connected_components
from repro.mining.compact import CompactMine, MiningPlan, as_int64
from repro.mining.detector import DetectionResult, SubTPIINResult
from repro.mining.groups import GroupKind, SuspiciousGroup
from repro.mining.patterns import (
    PatternsTreeResult,
    PatternTrail,
    PatternTreeNode,
)
from repro.mining.scs_groups import scs_suspicious_groups
from repro.model.colors import EColor
from repro.obs.profile import SUBTPIIN_SPAN
from repro.obs.tracing import NULL_TRACER, TracerLike

__all__ = [
    "build_patterns_tree_csr",
    "csr_detect",
    "freeze_subtpiin",
    "merged_out_arcs",
    "mine_components",
    "mine_frontier_compact",
    "mine_frozen",
    "mine_stack_compact",
]

#: Acyclic components whose predicted DFS tree is at least this large
#: take the vectorized frontier kernel; smaller (or cyclic) ones stay
#: on the guarded python stack kernel, whose per-node constant is lower.
_FRONTIER_MIN_TREE = 256.0

_trusted = SuspiciousGroup.trusted
_MATCHED = GroupKind.MATCHED


def freeze_subtpiin(graph: DiGraph) -> CSRGraph:
    """Freeze one subTPIIN with the two mining partitions (IN, TR)."""
    return CSRGraph.freeze(graph, colors=(EColor.INFLUENCE, EColor.TRADING))


def merged_out_arcs(csr: CSRGraph) -> list[tuple[tuple[int, bool], ...]]:
    """Per node, the merged ``(successor_id, is_trading)`` out-arc tuple.

    Ordered by successor id (= the faithful engine's ``str`` order) with
    the influence arc before the trading arc on a two-color pair —
    exactly the order ``patterns.py::out_arcs_of`` produces, computed
    once per freeze instead of once per DFS visit.
    """
    infl_offs, infl_tgts = csr.out_adjacency(EColor.INFLUENCE)
    tr_offs, tr_tgts = csr.out_adjacency(EColor.TRADING)
    merged: list[tuple[tuple[int, bool], ...]] = []
    for u in range(len(csr)):
        pairs = [(v, False) for v in infl_tgts[infl_offs[u] : infl_offs[u + 1]]]
        pairs += [(v, True) for v in tr_tgts[tr_offs[u] : tr_offs[u + 1]]]
        pairs.sort()
        merged.append(tuple(pairs))
    return merged


def _list_d_ids(csr: CSRGraph) -> list[int]:
    """Algorithm 2's ``ListD`` ordering, in id space.

    Increasing total indegree, decreasing total outdegree, then id —
    ids were interned in ``str`` order, so this equals
    :func:`~repro.mining.patterns.list_d_order` node for node.
    """
    keys = [
        (csr.in_degree_id(u), -csr.out_degree_id(u), u) for u in range(len(csr))
    ]
    keys.sort()
    return [u for _, _, u in keys]


def _enumerate(
    csr: CSRGraph,
    *,
    max_trails: int | None = None,
    build_tree: bool = False,
) -> tuple[list[PatternTrail], list[int], bool, list[PatternTreeNode]]:
    """Algorithm 2's DFS over the frozen kernel.

    Returns ``(trails, list_d, truncated, forest)`` where trails carry
    **id-space** nodes; tree nodes (when built) are decoded so their
    rendering matches the faithful forest.  The control flow mirrors
    ``patterns.py::build_patterns_tree`` statement for statement — the
    property suite holds the two to ordered equality.
    """
    list_d = _list_d_ids(csr)
    in_offs, _ = csr.in_adjacency(EColor.INFLUENCE)
    start_ids = [u for u in list_d if in_offs[u] == in_offs[u + 1]]
    arcs_of = merged_out_arcs(csr)
    decode = csr.decode_table

    trails: list[PatternTrail] = []
    forest: list[PatternTreeNode] = []
    append_trail = trails.append

    for start in start_ids:
        root = PatternTreeNode(decode[start]) if build_tree else None
        if root is not None:
            forest.append(root)
        path: list[int] = [start]
        on_path: set[int] = {start}
        emitted_any: list[bool] = [False]
        # Stack frames: (node, tree_node, arc tuple, next arc index).
        stack: list[tuple[int, PatternTreeNode | None, tuple[tuple[int, bool], ...]]] = [
            (start, root, arcs_of[start])
        ]
        cursor: list[int] = [0]
        while stack:
            node, tree_node, arcs = stack[-1]
            i = cursor[-1]
            if i == len(arcs):
                if not emitted_any[-1]:
                    # Rule 1: pure influence walk.
                    append_trail(PatternTrail(tuple(path)))
                stack.pop()
                cursor.pop()
                emitted_any.pop()
                on_path.discard(path.pop())
                continue
            cursor[-1] = i + 1
            successor, is_trading = arcs[i]
            if is_trading:
                # Rule 2: first trading arc closes the walk.
                append_trail(PatternTrail(tuple(path), trading_target=successor))
                emitted_any[-1] = True
                if tree_node is not None:
                    tree_node.children.append(
                        PatternTreeNode(decode[successor], via_trading=True)
                    )
                if max_trails is not None and len(trails) >= max_trails:
                    return trails, list_d, True, forest
                continue
            if successor in on_path:
                # Malformed (cyclic) input guard, as in the faithful DFS.
                continue
            child = PatternTreeNode(decode[successor]) if tree_node is not None else None
            if tree_node is not None and child is not None:
                tree_node.children.append(child)
            path.append(successor)
            on_path.add(successor)
            emitted_any[-1] = True
            emitted_any.append(False)
            stack.append((successor, child, arcs_of[successor]))
            cursor.append(0)
            if max_trails is not None and len(trails) >= max_trails:
                return trails, list_d, True, forest
    return trails, list_d, False, forest


def build_patterns_tree_csr(
    source: DiGraph | CSRGraph,
    *,
    max_trails: int | None = None,
    build_tree: bool = True,
) -> PatternsTreeResult:
    """CSR-backed :func:`~repro.mining.patterns.build_patterns_tree`.

    Accepts a raw subTPIIN graph (frozen on entry) or an already-frozen
    kernel; emits the same :class:`PatternsTreeResult` — same trails in
    the same order, same forest rendering, same ``ListD``.
    """
    csr = source if isinstance(source, CSRGraph) else freeze_subtpiin(source)
    id_trails, id_list_d, truncated, forest = _enumerate(
        csr, max_trails=max_trails, build_tree=build_tree
    )
    decode = csr.decode_table
    trails = [
        PatternTrail(
            tuple(decode[u] for u in t.nodes),
            trading_target=(
                None if t.trading_target is None else decode[t.trading_target]
            ),
        )
        for t in id_trails
    ]
    return PatternsTreeResult(
        roots=forest,
        trails=trails,
        list_d=[decode[u] for u in id_list_d],
        truncated=truncated,
    )


def mine_frozen(
    csr: CSRGraph, *, max_trails: int | None = None
) -> tuple[int, bool, list[SuspiciousGroup]]:
    """Mine one frozen subTPIIN: trails, matching, decoded groups.

    The DFS and matcher are fused: every influence prefix is a path to a
    DFS tree node, so the matcher's prefix index is registered *during*
    the walk — each prefix materialized exactly once — instead of
    re-slicing every trail's prefixes afterwards (the quadratic part of
    :func:`~repro.mining.matching.match_component_patterns`).  Groups
    are built decoded, straight off the incrementally-decoded prefixes.
    The group *set* equals running the generic matcher on the faithful
    trail list: trading trails are pairwise distinct (the DFS emits each
    ``(path, target)`` once) and per-root prefixes are distinct paths,
    so the generic matcher's pair-key dedup can never fire; circle
    dedup, which can (two roots reaching one cycle), is kept.  Within
    one trading trail the supports come out in deterministic
    first-occurrence order, whereas the generic matcher iterates its
    set-backed prefix index in (process-dependent) hash order — set
    equality is the cross-engine contract, and what the property suite
    asserts.
    """
    list_d = _list_d_ids(csr)
    in_offs, _ = csr.in_adjacency(EColor.INFLUENCE)
    start_ids = [u for u in list_d if in_offs[u] == in_offs[u + 1]]
    arcs_of = merged_out_arcs(csr)
    decode = csr.decode_table

    groups: list[SuspiciousGroup] = []
    seen_circles: set[tuple[int, ...]] = set()
    trail_count = 0
    truncated = False

    for start in start_ids:
        path: list[int] = [start]
        on_path: set[int] = {start}
        emitted_any: list[bool] = [False]
        arc_stack: list[tuple[tuple[int, bool], ...]] = [arcs_of[start]]
        cursor: list[int] = [0]
        # Lazily-registered prefixes of the current path (ids + decoded),
        # filled top-down at emission time so only prefixes of *emitted*
        # trails enter the index — crucial under a max_trails cap.
        pids: list[tuple[int, ...] | None] = [None]
        pdec: list[tuple[Node, ...] | None] = [None]
        # Per-root matcher index: last node id -> decoded prefixes.
        index: dict[int, list[tuple[Node, ...]]] = {}
        # FTAOP emissions, in trail order: (path ids, decoded, target).
        emissions: list[tuple[tuple[int, ...], tuple[Node, ...], int]] = []

        while arc_stack:
            arcs = arc_stack[-1]
            i = cursor[-1]
            if i == len(arcs):
                if not emitted_any[-1]:
                    # Rule 1: pure influence walk — index its prefixes.
                    depth = len(path) - 1
                    while depth >= 0 and pids[depth] is None:
                        depth -= 1
                    for j in range(depth + 1, len(path)):
                        node = path[j]
                        if j:
                            pids[j] = pids[j - 1] + (node,)  # type: ignore[operator]
                            dec = pdec[j - 1] + (decode[node],)  # type: ignore[operator]
                        else:
                            pids[j] = (node,)
                            dec = (decode[node],)
                        pdec[j] = dec
                        index.setdefault(node, []).append(dec)
                    trail_count += 1
                    if max_trails is not None and trail_count >= max_trails:
                        truncated = True
                        break
                arc_stack.pop()
                cursor.pop()
                emitted_any.pop()
                pids.pop()
                pdec.pop()
                on_path.discard(path.pop())
                continue
            cursor[-1] = i + 1
            successor, is_trading = arcs[i]
            if is_trading:
                # Rule 2: first trading arc closes the walk — index the
                # path's prefixes, then record the FTAOP emission.
                depth = len(path) - 1
                while depth >= 0 and pids[depth] is None:
                    depth -= 1
                for j in range(depth + 1, len(path)):
                    node = path[j]
                    if j:
                        pids[j] = pids[j - 1] + (node,)  # type: ignore[operator]
                        dec = pdec[j - 1] + (decode[node],)  # type: ignore[operator]
                    else:
                        pids[j] = (node,)
                        dec = (decode[node],)
                    pdec[j] = dec
                    index.setdefault(node, []).append(dec)
                path_ids = pids[-1]
                path_dec = pdec[-1]
                assert path_ids is not None and path_dec is not None
                emissions.append((path_ids, path_dec, successor))
                emitted_any[-1] = True
                trail_count += 1
                if max_trails is not None and trail_count >= max_trails:
                    truncated = True
                    break
                continue
            if successor in on_path:
                # Malformed (cyclic) input guard, as in the faithful DFS.
                continue
            path.append(successor)
            on_path.add(successor)
            emitted_any[-1] = True
            emitted_any.append(False)
            arc_stack.append(arcs_of[successor])
            cursor.append(0)
            pids.append(None)
            pdec.append(None)

        # Match this root's FTAOP emissions against its prefix index.
        for path_ids, path_dec, target in emissions:
            if target in path_ids:
                position = path_ids.index(target)
                circle_ids = path_ids[position:] + (target,)
                if circle_ids not in seen_circles:
                    seen_circles.add(circle_ids)
                    groups.append(
                        SuspiciousGroup.trusted(
                            path_dec[position:] + (decode[target],),
                            (decode[target],),
                            GroupKind.CIRCLE,
                        )
                    )
                continue
            supports = index.get(target)
            if not supports:
                continue
            trading_trail = path_dec + (decode[target],)
            for support in supports:
                groups.append(_trusted(trading_trail, support, _MATCHED))
        if truncated:
            break

    return trail_count, truncated, groups


def _selected_roots(
    csr: CSRGraph, plan: MiningPlan, comps: np.ndarray
) -> np.ndarray:
    """Influence roots (in-degree zero) of the selected components."""
    in_offs = as_int64(csr.in_adjacency(EColor.INFLUENCE)[0])
    selected = np.zeros(plan.n_components, dtype=bool)
    selected[comps] = True
    return np.flatnonzero((in_offs[1:] == in_offs[:-1]) & selected[plan.comp_id])


def _grown(buffer: np.ndarray, used: int, needed: int) -> np.ndarray:
    """A doubled copy of ``buffer`` with at least ``needed`` capacity."""
    capacity = max(len(buffer), 1)
    while capacity < needed:
        capacity *= 2
    fresh = np.empty(capacity, dtype=np.int64)
    fresh[:used] = buffer[:used]
    return fresh


def mine_frontier_compact(
    csr: CSRGraph, plan: MiningPlan, comps: np.ndarray
) -> CompactMine:
    """Batched frontier expansion of the patterns tree (acyclic comps).

    One level-synchronous sweep grows the DFS prefix forest of *every*
    selected component at once: each step gathers the influence
    successors of the whole frontier with a handful of vectorized
    ``repeat``/``cumsum`` operations, so the per-tree-node cost is a few
    array slots instead of a python stack frame.  Trading emissions are
    collected the same way as each level enters the tree.

    Only valid on acyclic components (no ``on_path`` guard is applied;
    influence DAGs cannot revisit a node).  The tree arrays are
    preallocated from the plan's path-count estimate — exact below the
    clip — with doubling as the fallback.
    """
    infl_offs = as_int64(csr.out_adjacency(EColor.INFLUENCE)[0])
    infl_tgts = as_int64(csr.out_adjacency(EColor.INFLUENCE)[1])
    intra_offs = plan.intra_offsets
    intra_tgts = plan.intra_targets
    roots = _selected_roots(csr, plan, comps)

    estimate = float(plan.est_tree[comps].sum())
    capacity = int(min(max(estimate, float(roots.size), 1.0), 2.0e8))
    node = np.empty(capacity, dtype=np.int64)
    parent = np.empty(capacity, dtype=np.int64)
    root = np.empty(capacity, dtype=np.int64)
    count = int(roots.size)
    node[:count] = roots
    parent[:count] = -1
    root[:count] = roots

    emit_tree_parts: list[np.ndarray] = []
    emit_target_parts: list[np.ndarray] = []
    append_emit_tree = emit_tree_parts.append
    append_emit_target = emit_target_parts.append
    np_repeat = np.repeat
    np_arange = np.arange
    np_cumsum = np.cumsum
    lo, hi = 0, count
    while lo < hi:
        level = node[lo:hi]
        tdeg = intra_offs[level + 1] - intra_offs[level]
        t_total = int(tdeg.sum())
        if t_total:
            within = np_arange(t_total) - np_repeat(np_cumsum(tdeg) - tdeg, tdeg)
            append_emit_tree(np_repeat(np_arange(lo, hi), tdeg))
            append_emit_target(intra_tgts[np_repeat(intra_offs[level], tdeg) + within])
        ideg = infl_offs[level + 1] - infl_offs[level]
        i_total = int(ideg.sum())
        if not i_total:
            lo = hi
            continue
        if count + i_total > capacity:
            node = _grown(node, count, count + i_total)
            parent = _grown(parent, count, count + i_total)
            root = _grown(root, count, count + i_total)
            capacity = len(node)
        rep = np_repeat(np_arange(lo, hi), ideg)
        within = np_arange(i_total) - np_repeat(np_cumsum(ideg) - ideg, ideg)
        node[count : count + i_total] = infl_tgts[np_repeat(infl_offs[level], ideg) + within]
        parent[count : count + i_total] = rep
        root[count : count + i_total] = root[rep]
        lo, hi = count, count + i_total
        count = hi

    # Rule 1 fires exactly at tree nodes with no influence successor and
    # no intra trading successor (acyclic walks never skip an arc).
    labels = node[:count]
    leaf = (infl_offs[labels + 1] == infl_offs[labels]) & (
        intra_offs[labels + 1] == intra_offs[labels]
    )
    rule1 = np.bincount(plan.comp_id[labels[leaf]], minlength=plan.n_components)
    if emit_tree_parts:
        emit_tree = np.concatenate(emit_tree_parts)
        emit_target = np.concatenate(emit_target_parts)
    else:
        emit_tree = np.zeros(0, dtype=np.int64)
        emit_target = np.zeros(0, dtype=np.int64)
    return CompactMine(
        parent=parent[:count].copy(),
        node=labels.copy(),
        root=root[:count].copy(),
        emit_tree=emit_tree,
        emit_target=emit_target,
        rule1_by_comp=rule1,
    )


def mine_stack_compact(
    csr: CSRGraph, plan: MiningPlan, comps: np.ndarray
) -> CompactMine:
    """Guarded stack DFS recording the compact tree (any components).

    The cyclic-safe twin of :func:`mine_frontier_compact`: the same
    walk as :func:`mine_frozen` (``on_path`` guard included) but
    recording ``parent``/``node``/``root`` rows and raw emissions
    instead of building groups.  Trading arcs are emitted when a frame
    is *pushed* rather than interleaved with its influence arcs — the
    path is identical at both moments, so the emission set (and the
    Rule-1 condition: no trading arc, no pushed child) is unchanged.
    """
    infl_offs = as_int64(csr.out_adjacency(EColor.INFLUENCE)[0]).tolist()
    infl_tgts = as_int64(csr.out_adjacency(EColor.INFLUENCE)[1]).tolist()
    intra_offs = plan.intra_offsets.tolist()
    intra_tgts = plan.intra_targets.tolist()
    comp_of = plan.comp_id.tolist()
    roots = _selected_roots(csr, plan, comps)

    node_rec: list[int] = []
    parent_rec: list[int] = []
    root_rec: list[int] = []
    emit_tree: list[int] = []
    emit_target: list[int] = []
    append_node = node_rec.append
    append_parent = parent_rec.append
    append_root = root_rec.append
    append_emit_tree = emit_tree.append
    append_emit_target = emit_target.append
    rule1 = np.zeros(plan.n_components, dtype=np.int64)

    for start in roots.tolist():
        fires = 0
        tree_idx = len(node_rec)
        append_node(start)
        append_parent(-1)
        append_root(start)
        e_lo = intra_offs[start]
        e_hi = intra_offs[start + 1]
        emitted = e_hi > e_lo
        while e_lo < e_hi:
            append_emit_tree(tree_idx)
            append_emit_target(intra_tgts[e_lo])
            e_lo += 1
        stack_node = [start]
        stack_tree = [tree_idx]
        stack_cursor = [infl_offs[start]]
        stack_end = [infl_offs[start + 1]]
        stack_emitted = [emitted]
        on_path = {start}
        while stack_node:
            i = stack_cursor[-1]
            if i == stack_end[-1]:
                if not stack_emitted[-1]:
                    fires += 1
                on_path.discard(stack_node.pop())
                stack_tree.pop()
                stack_cursor.pop()
                stack_end.pop()
                stack_emitted.pop()
                continue
            stack_cursor[-1] = i + 1
            succ = infl_tgts[i]
            if succ in on_path:
                # Malformed (cyclic) input guard, as in the faithful DFS.
                continue
            stack_emitted[-1] = True
            tree_idx = len(node_rec)
            append_node(succ)
            append_parent(stack_tree[-1])
            append_root(start)
            e_lo = intra_offs[succ]
            e_hi = intra_offs[succ + 1]
            emitted = e_hi > e_lo
            while e_lo < e_hi:
                append_emit_tree(tree_idx)
                append_emit_target(intra_tgts[e_lo])
                e_lo += 1
            stack_node.append(succ)
            stack_tree.append(tree_idx)
            stack_cursor.append(infl_offs[succ])
            stack_end.append(infl_offs[succ + 1])
            stack_emitted.append(emitted)
            on_path.add(succ)
        rule1[comp_of[start]] += fires

    return CompactMine(
        parent=np.asarray(parent_rec, dtype=np.int64),
        node=np.asarray(node_rec, dtype=np.int64),
        root=np.asarray(root_rec, dtype=np.int64),
        emit_tree=np.asarray(emit_tree, dtype=np.int64),
        emit_target=np.asarray(emit_target, dtype=np.int64),
        rule1_by_comp=rule1,
    )


def mine_components(
    csr: CSRGraph, plan: MiningPlan, comps: np.ndarray
) -> CompactMine:
    """Mine a set of components with the best kernel for each.

    Acyclic components with a large predicted tree take one shared
    frontier batch; everything else (cyclic, or too small to amortize
    the vectorization overhead) runs the stack kernel.
    """
    comps = np.asarray(comps, dtype=np.int64)
    if not comps.size:
        return CompactMine.empty(plan.n_components)
    frontier_ok = ~plan.cyclic[comps] & (plan.est_tree[comps] >= _FRONTIER_MIN_TREE)
    parts: list[CompactMine] = []
    if bool(frontier_ok.any()):
        parts.append(mine_frontier_compact(csr, plan, comps[frontier_ok]))
    if not bool(frontier_ok.all()):
        parts.append(mine_stack_compact(csr, plan, comps[~frontier_ok]))
    return CompactMine.merge(parts, plan.n_components)


def csr_detect(
    tpiin: TPIIN,
    *,
    max_trails_per_subtpiin: int | None = None,
    skip_trivial_subtpiins: bool = True,
    tracer: TracerLike = NULL_TRACER,
) -> DetectionResult:
    """Algorithm 1 over the CSR kernel; output equals the faithful run.

    Segmentation is fused with the freeze: components are bucketed
    straight out of the parent graph and handed to
    :meth:`CSRGraph.freeze_parts`, never materializing the per-component
    :class:`DiGraph` that :func:`~repro.mining.segmentation.segment`
    builds (which the CSR path would immediately re-read and discard).
    Component order, ``skip_trivial`` semantics, sub indices and the
    cross-component trade count all match the faithful segmentation.
    """
    graph = tpiin.graph
    with tracer.span("segment") as seg_span:
        components = weakly_connected_components(graph, EColor.INFLUENCE)
        component_of: dict[Node, int] = {}
        for ci, component in enumerate(components):
            for node in component:
                component_of[node] = ci

        influence_arcs: list[list[tuple[Node, Node, EColor]]] = [
            [] for _ in components
        ]
        for tail, head, _color in graph.arcs(EColor.INFLUENCE):
            influence_arcs[component_of[tail]].append((tail, head, EColor.INFLUENCE))
        trading_arcs: list[list[tuple[Node, Node, EColor]]] = [[] for _ in components]
        cross_count = 0
        for tail, head, _color in graph.arcs(EColor.TRADING):
            tail_component = component_of[tail]
            if tail_component == component_of[head]:
                trading_arcs[tail_component].append((tail, head, EColor.TRADING))
            else:
                cross_count += 1
        if tracer.enabled:
            seg_span.set(
                components=len(components), cross_component_trades=cross_count
            )

    groups: list[SuspiciousGroup] = []
    sub_results: list[SubTPIINResult] = []
    trail_total = 0
    truncated = False
    for ci, component in enumerate(components):
        if skip_trivial_subtpiins and not trading_arcs[ci]:
            continue
        with tracer.span(SUBTPIIN_SPAN) as sub_span:
            with tracer.span("freeze"):
                csr = CSRGraph.freeze_parts(
                    ((node, graph.node_color(node)) for node in component),
                    influence_arcs[ci] + trading_arcs[ci],
                    colors=(EColor.INFLUENCE, EColor.TRADING),
                )
            with tracer.span("mine"):
                trail_count, sub_truncated, sub_groups = mine_frozen(
                    csr, max_trails=max_trails_per_subtpiin
                )
            if tracer.enabled:
                sub_span.set(
                    index=len(sub_results),
                    nodes=len(csr),
                    trading_arcs=len(trading_arcs[ci]),
                    trails=trail_count,
                    groups=len(sub_groups),
                )
        truncated = truncated or sub_truncated
        trail_total += trail_count
        groups.extend(sub_groups)
        sub_results.append(
            SubTPIINResult(
                index=len(sub_results),
                node_count=len(csr),
                trading_arc_count=len(trading_arcs[ci]),
                pattern_trail_count=trail_count,
                groups=sub_groups,
            )
        )

    with tracer.span("scs_groups") as scs_span:
        scs_groups = scs_suspicious_groups(tpiin)
        if tracer.enabled:
            scs_span.set(groups=len(scs_groups))
    groups.extend(scs_groups)

    total_trading = tpiin.graph.number_of_arcs(EColor.TRADING) + len(
        tpiin.intra_scs_trades
    )
    return DetectionResult(
        groups=groups,
        total_trading_arcs=total_trading,
        cross_component_trades=cross_count,
        subtpiin_count=len(components),
        engine="csr",
        pattern_trail_count=trail_total,
        sub_results=sub_results,
        truncated=truncated,
    )
