"""Consolidated options for :func:`repro.mining.detect`.

The public detection API grew one keyword at a time — a string-typed
``engine``, per-engine tuning knobs, and (now) tracing.  This module
consolidates them:

* :class:`Engine` — the closed set of engine names, usable anywhere a
  plain string was accepted before (it *is* a ``str``);
* :class:`DetectOptions` — one frozen bag of every detection knob,
  constructed once and passed to ``detect(tpiin, options=...)`` (or to
  service/CLI layers that forward it).  Explicit ``detect`` keywords
  override the corresponding option field, so existing call sites keep
  working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Union

from repro.errors import MiningError
from repro.obs.tracing import NULL_TRACER, Tracer, TracerLike

__all__ = ["DetectOptions", "Engine", "TraceSpec"]


class Engine(str, Enum):
    """The detection engines (all produce identical group sets).

    Subclasses ``str`` so every call site that compared against
    ``"fast"`` (or stored the engine name in JSON) keeps working.
    """

    FAITHFUL = "faithful"
    FAST = "fast"
    CSR = "csr"
    PARALLEL = "parallel"
    INCREMENTAL = "incremental"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def coerce(cls, value: "str | Engine") -> "Engine":
        """``Engine`` from a name, with a helpful error on typos."""
        if isinstance(value, Engine):
            return value
        try:
            return cls(value)
        except ValueError:
            choices = ", ".join(engine.value for engine in cls)
            raise MiningError(
                f"unknown engine {value!r} (choices: {choices})"
            ) from None


#: What ``trace`` accepts: ``False`` (off), ``True`` (collect into a
#: fresh tracer, attached to the result), or a caller-owned tracer.
TraceSpec = Union[bool, TracerLike]


@dataclass(frozen=True, slots=True)
class DetectOptions:
    """Every knob of :func:`repro.mining.detect`, in one frozen value.

    ``engine`` accepts an :class:`Engine` or its string name (coerced on
    construction).  ``trace=True`` collects a span tree onto
    ``DetectionResult.trace``; passing a :class:`~repro.obs.Tracer`
    instead lets the caller nest the run under its own spans.
    """

    engine: Engine = Engine.FAITHFUL
    max_trails_per_subtpiin: int | None = None
    skip_trivial_subtpiins: bool = True
    processes: int | None = None
    collect_groups: bool = True
    trace: TraceSpec = False
    # Parallel engine: minimum total estimated mining work (tree nodes +
    # emissions) before a worker pool is spawned; below it the engine
    # mines in-process on the same compact kernels.  None = the
    # engine's built-in default.
    min_pool_work: int | None = None
    # Extra portfolio detectors (repro.detectors registry names, or
    # "all") to run alongside the IAT mining; their merged findings
    # report is attached to DetectionResult.findings.  None = IAT only.
    detectors: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "engine", Engine.coerce(self.engine))
        if isinstance(self.detectors, str):
            object.__setattr__(self, "detectors", (self.detectors,))
        elif self.detectors is not None:
            object.__setattr__(self, "detectors", tuple(self.detectors))
        if self.max_trails_per_subtpiin is not None and self.max_trails_per_subtpiin < 1:
            raise MiningError(
                f"max_trails_per_subtpiin must be >= 1, got {self.max_trails_per_subtpiin}"
            )
        if self.processes is not None and self.processes < 1:
            raise MiningError(f"processes must be >= 1, got {self.processes}")
        if self.min_pool_work is not None and self.min_pool_work < 0:
            raise MiningError(f"min_pool_work must be >= 0, got {self.min_pool_work}")

    def with_overrides(self, **overrides: object) -> "DetectOptions":
        """A copy with every non-``None`` override applied.

        This is the keywords-beat-options merge rule of ``detect``:
        ``None`` means "not supplied", so an explicit keyword always
        wins over the corresponding options field.
        """
        supplied = {key: value for key, value in overrides.items() if value is not None}
        if not supplied:
            return self
        return replace(self, **supplied)  # type: ignore[arg-type]

    def resolve_tracer(self) -> TracerLike:
        """The tracer this run reports to (fresh, caller-owned, or null)."""
        if self.trace is True:
            return Tracer()
        if self.trace is False or self.trace is None:
            return NULL_TRACER
        return self.trace
