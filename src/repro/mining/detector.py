"""Algorithm 1: end-to-end suspicious-group detection on a TPIIN.

``detect`` orchestrates the three-step approach of Section 4.3:

1. segment the TPIIN into subTPIINs (divide and conquer);
2. per subTPIIN, build the patterns tree and component pattern base
   (Algorithm 2);
3. match component patterns sharing an antecedent into suspicious
   groups, and add the intra-SCS trade groups.

Two engines implement identical semantics:

* ``"faithful"`` — the paper's algorithm literally: materializes the
  pattern base and matches it (this module);
* ``"fast"`` — an optimized equivalent using a packed root-ancestor
  index and per-root path caches (:mod:`repro.mining.fast`), used for
  the full-scale Table 1 sweep.

Their outputs are cross-validated by property tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import MiningError
from repro.fusion.tpiin import TPIIN
from repro.graph.digraph import Node
from repro.mining.groups import GroupKind, SuspiciousGroup
from repro.mining.matching import match_component_patterns
from repro.mining.patterns import build_patterns_tree
from repro.mining.scs_groups import scs_suspicious_groups
from repro.mining.segmentation import segment
from repro.model.colors import EColor

__all__ = ["DetectionResult", "SubTPIINResult", "detect"]


@dataclass(slots=True)
class SubTPIINResult:
    """Per-subTPIIN mining outcome (the paper's ``susGroup(i)`` content)."""

    index: int
    node_count: int
    trading_arc_count: int
    pattern_trail_count: int
    groups: list[SuspiciousGroup] = field(default_factory=list)

    @property
    def suspicious_arcs(self) -> set[tuple[Node, Node]]:
        return {g.trading_arc for g in self.groups}


@dataclass(slots=True)
class DetectionResult:
    """Aggregated outcome of Algorithm 1 over a whole TPIIN.

    The fast engine's count-only mode fills the ``*_override`` fields
    instead of materializing every group object; the count properties
    below fall back to them when ``groups`` is empty.
    """

    groups: list[SuspiciousGroup]
    total_trading_arcs: int
    cross_component_trades: int
    subtpiin_count: int
    engine: str
    pattern_trail_count: int | None = None
    sub_results: list[SubTPIINResult] = field(default_factory=list)
    # True when a max_trails cap silently stopped some pattern search:
    # every count in this result is then a lower bound, not a total.
    truncated: bool = False
    simple_count_override: int | None = None
    complex_count_override: int | None = None
    kind_counts_override: Counter[GroupKind] | None = None
    suspicious_arcs_override: set[tuple[Node, Node]] | None = None

    # ------------------------------------------------------------------
    @property
    def suspicious_trading_arcs(self) -> set[tuple[Node, Node]]:
        """Distinct trading arcs behind at least one group.

        Intra-SCS trades are reported in their original (pre-contraction)
        company ids, exactly as the fusion pipeline recorded them.
        """
        if self.suspicious_arcs_override is not None:
            return self.suspicious_arcs_override
        return {g.trading_arc for g in self.groups}

    @property
    def simple_group_count(self) -> int:
        """Simple groups (Definition 3), including circle and SCS groups."""
        if self.simple_count_override is not None:
            return self.simple_count_override
        return sum(1 for g in self.groups if g.is_simple)

    @property
    def complex_group_count(self) -> int:
        if self.complex_count_override is not None:
            return self.complex_count_override
        return sum(1 for g in self.groups if g.is_complex)

    @property
    def group_count(self) -> int:
        return self.simple_group_count + self.complex_group_count

    @property
    def suspicious_arc_count(self) -> int:
        return len(self.suspicious_trading_arcs)

    @property
    def suspicious_arc_share(self) -> float:
        """Suspicious share of all trading relationships (Table 1, last col)."""
        if self.total_trading_arcs == 0:
            return 0.0
        return self.suspicious_arc_count / self.total_trading_arcs

    def kind_counts(self) -> Counter[GroupKind]:
        if self.kind_counts_override is not None:
            return self.kind_counts_override
        return Counter(g.kind for g in self.groups)

    def groups_for_arc(self, arc: tuple[Node, Node]) -> list[SuspiciousGroup]:
        """Every group certifying one trading arc (the proof chains)."""
        return [g for g in self.groups if g.trading_arc == arc]

    def summary(self) -> str:
        kinds = self.kind_counts()
        text = (
            f"engine={self.engine} subTPIINs={self.subtpiin_count} "
            f"groups={self.group_count} "
            f"(complex={self.complex_group_count}, simple={self.simple_group_count}; "
            f"matched={kinds.get(GroupKind.MATCHED, 0)}, "
            f"circle={kinds.get(GroupKind.CIRCLE, 0)}, "
            f"scs={kinds.get(GroupKind.SCS, 0)}) "
            f"suspicious_arcs={self.suspicious_arc_count}/{self.total_trading_arcs} "
            f"({100.0 * self.suspicious_arc_share:.4f}%)"
        )
        if self.truncated:
            text += " [truncated: max_trails cap hit; counts are lower bounds]"
        return text

    def render_sub_report(self, *, max_rows: int = 20) -> str:
        """Per-subTPIIN table (faithful/parallel engines only).

        Shows the divide-and-conquer at work: each MWCS's size, pattern
        base, groups found and suspicious arcs, largest first.
        """
        if not self.sub_results:
            return "no per-subTPIIN data (engine did not segment)"
        # analysis imports mining at module scope; stay function-local.
        from repro.analysis.reporting import render_table  # reprolint: disable=R010

        ranked = sorted(self.sub_results, key=lambda s: -len(s.groups))
        rows = [
            [
                sub.index,
                sub.node_count,
                sub.trading_arc_count,
                sub.pattern_trail_count,
                len(sub.groups),
                len(sub.suspicious_arcs),
            ]
            for sub in ranked[:max_rows]
        ]
        table = render_table(
            ["subTPIIN", "nodes", "trades", "trails", "groups", "sus arcs"],
            rows,
        )
        if len(ranked) > max_rows:
            table += f"\n... and {len(ranked) - max_rows} more subTPIINs"
        return table

    # ------------------------------------------------------------------
    def write_files(self, directory: str | Path) -> list[Path]:
        """Write the paper's ``susGroup(i)`` / ``susTrade(i)`` output files.

        One pair of files per subTPIIN that produced any group (faithful
        engine), or a single aggregated pair (fast engine).  Returns the
        written paths.
        """
        # io.results_io type-imports DetectionResult; stay function-local.
        from repro.io.results_io import write_sus_files  # reprolint: disable=R010

        return write_sus_files(self, Path(directory))


def detect(
    tpiin: TPIIN,
    *,
    engine: str = "faithful",
    max_trails_per_subtpiin: int | None = None,
    skip_trivial_subtpiins: bool = True,
    processes: int | None = None,
) -> DetectionResult:
    """Detect all suspicious tax evasion groups in ``tpiin``.

    Parameters
    ----------
    engine:
        ``"faithful"`` runs the paper's Algorithm 1/2 literally;
        ``"fast"`` runs the optimized equivalent engine;
        ``"csr"`` runs the faithful pipeline over the frozen
        :class:`~repro.graph.csr.CSRGraph` kernel (same groups, much
        faster; see docs/PERFORMANCE.md);
        ``"parallel"`` fans the CSR kernel out across worker processes;
        ``"incremental"`` streams the trading arcs through
        :class:`~repro.mining.incremental.IncrementalDetector` (useful
        to validate the streaming path against the batch engines).
    max_trails_per_subtpiin:
        Faithful and csr engines only: optional cap on each pattern base
        as a safety valve; a capped run sets ``DetectionResult.truncated``
        and its counts are *lower bounds* (the paper's experiments run
        uncapped, as do ours).
    skip_trivial_subtpiins:
        Skip subTPIINs with no trading arc (pure optimization).
    processes:
        Parallel engine only: worker-process count (defaults to the
        machine's CPU count).
    """
    # The engine modules import DetectionResult from this module, so
    # their imports must stay function-local to break the cycle.
    if engine == "fast":
        from repro.mining.fast import fast_detect  # reprolint: disable=R010

        return fast_detect(tpiin)
    if engine == "csr":
        from repro.mining.csr_engine import csr_detect  # reprolint: disable=R010

        return csr_detect(
            tpiin,
            max_trails_per_subtpiin=max_trails_per_subtpiin,
            skip_trivial_subtpiins=skip_trivial_subtpiins,
        )
    if engine == "parallel":
        from repro.mining.parallel import parallel_detect  # reprolint: disable=R010

        return parallel_detect(tpiin, processes=processes)
    if engine == "incremental":
        from repro.mining.incremental import (  # reprolint: disable=R010
            IncrementalDetector,
        )

        return IncrementalDetector(tpiin).result()
    if engine != "faithful":
        raise MiningError(f"unknown engine {engine!r}")

    segmentation = segment(tpiin, skip_trivial=skip_trivial_subtpiins)
    groups: list[SuspiciousGroup] = []
    sub_results: list[SubTPIINResult] = []
    trail_total = 0
    truncated = False
    for sub in segmentation.subtpiins:
        tree = build_patterns_tree(
            sub.graph, max_trails=max_trails_per_subtpiin, build_tree=False
        )
        truncated = truncated or tree.truncated
        sub_groups = match_component_patterns(tree.trails)
        trail_total += len(tree.trails)
        groups.extend(sub_groups)
        sub_results.append(
            SubTPIINResult(
                index=sub.index,
                node_count=len(sub.nodes),
                trading_arc_count=sub.trading_arc_count,
                pattern_trail_count=len(tree.trails),
                groups=sub_groups,
            )
        )

    scs_groups = scs_suspicious_groups(tpiin)
    groups.extend(scs_groups)

    total_trading = tpiin.graph.number_of_arcs(EColor.TRADING) + len(
        tpiin.intra_scs_trades
    )
    return DetectionResult(
        groups=groups,
        total_trading_arcs=total_trading,
        cross_component_trades=len(segmentation.cross_component_trades),
        subtpiin_count=segmentation.total_components,
        engine="faithful",
        pattern_trail_count=trail_total,
        sub_results=sub_results,
        truncated=truncated,
    )
